//! Integration: full application pipelines — generator → formulation →
//! transform → array → verification — for each Table 1 row.

use systolic_dp::prelude::*;

/// Monadic-serial: each §2.2 application, node-value form, through
/// Design 3 with path recovery, verified by brute force.
#[test]
fn monadic_serial_applications() {
    let apps: Vec<(&str, NodeValueGraph)> = vec![
        ("traffic", generate::traffic_light(10, 5, 4)),
        ("voltage", generate::circuit_voltage(10, 5, 4)),
        ("fluid", generate::fluid_flow(10, 5, 4)),
        ("scheduling", generate::task_scheduling(10, 5, 4)),
    ];
    for (name, g) in apps {
        let res = Design3Array::new(4).run(&g);
        let ms = g.to_multistage();
        let (bf, _) = solve::brute_force(&ms);
        assert_eq!(res.cost, bf, "{name}");
        assert_eq!(solve::path_cost(&ms, &res.path), res.cost, "{name}");
    }
}

/// Polyadic-serial: the same multistage problem solved monadically
/// (string product) and polyadically (p-partition AND/OR graph and the
/// K-array schedule), with identical optima.
#[test]
fn polyadic_serial_route() {
    let m = 3usize;
    let n_mats = 8usize;
    let g = generate::random_uniform(21, n_mats + 1, m, 0, 60);

    // monadic route
    let monadic = Design1Array::new(m).run(g.matrix_string());

    // polyadic route: binary partition AND/OR graph
    let pg = build_partition_graph(n_mats, m, 2);
    let reduced = pg.evaluate_on(g.matrix_string());
    let poly_best = (0..m)
        .flat_map(|i| (0..m).map(move |j| (i, j)))
        .map(|(i, j)| reduced.get(i, j).0)
        .fold(Cost::INF, Cost::min);
    let mono_best = monadic.values.iter().copied().fold(Cost::INF, Cost::min);
    assert_eq!(poly_best, mono_best);

    // and the K-array schedule executes the same tree on host threads
    let (tree_prod, rounds) = dnc::ParallelExecutor::new(2).multiply_string(g.matrix_string());
    assert_eq!(tree_prod, reduced);
    assert_eq!(rounds, dnc::schedule(n_mats as u64, 2).rounds);
}

/// Monadic-nonserial: ternary-chain objective → grouping transform →
/// serial graph → Design 1, all agreeing with brute force.
#[test]
fn monadic_nonserial_route() {
    let domains: Vec<Vec<i64>> = (0..5).map(|i| vec![i, i + 2, 2 * i + 1]).collect();
    let chain = TernaryChain::uniform(domains, |a, b, c| {
        Cost::from((a + b - c).abs() + (a - b).abs())
    });
    let (bf, _) = chain.brute_force();
    let (elim, steps) = chain.eliminate();
    assert_eq!(elim, bf);
    assert_eq!(steps, chain.eq40_steps());

    let serial = chain.group_to_serial();
    let m = serial.stage_size(0);
    assert!(serial.is_uniform());
    let d1 = Design1Array::new(m).run(serial.matrix_string());
    let best = d1.values.iter().copied().fold(Cost::INF, Cost::min);
    assert_eq!(best, bf);
}

/// Polyadic-nonserial: matrix-chain ordering → serialized AND/OR graph →
/// pipelined array → dataflow execution of the winning tree.
#[test]
fn polyadic_nonserial_route() {
    use sdp_systolic::scheduler::{DagScheduler, DagTask};
    let dims = generate::random_chain_dims(33, 7, 2, 25);
    let sol = matrix_chain_order(&dims);

    let pl = simulate_chain_array(&dims, ChainMapping::Pipelined);
    assert_eq!(pl.cost, sol.cost);

    let (tree, root) = sol.multiply_tree(&dims);
    assert_eq!(root, tree.len() - 1);
    let tasks: Vec<DagTask> = tree
        .iter()
        .map(|&(l, r, flops)| DagTask {
            duration: flops,
            deps: [l, r].into_iter().flatten().collect(),
        })
        .collect();
    let s1 = DagScheduler.schedule(&tasks, 1);
    let s4 = DagScheduler.schedule(&tasks, 4);
    // 1-worker makespan = total optimal flops; more workers can't exceed it.
    assert_eq!(
        Cost::from(s1.makespan as i64),
        sol.cost,
        "serial dataflow makespan equals DP cost"
    );
    assert!(s4.makespan <= s1.makespan);
}

/// The optimal BST — the other §2.1 polyadic example — agrees with its
/// brute force and produces a valid root decomposition.
#[test]
fn optimal_bst_route() {
    let freq = [12u64, 3, 25, 7, 18, 4];
    let sol = optimal_bst(&freq);
    assert_eq!(sol.cost, systolic_dp::andor::chain::bst_brute_force(&freq));
    // root split indexes a key
    assert!(sol.split[0][freq.len() - 1] < freq.len());
}

/// Classification routing: the Table 1 engine names a module that
/// actually exists for every class.
#[test]
fn table1_routes_are_real() {
    for class in Formulation::ALL {
        let rec = table1(class);
        assert!(rec.implemented_by.contains("sdp_"), "{class}");
        assert!(!rec.method.is_empty());
    }
}
