//! Integration: the paper's headline numeric claims, each checked
//! against an executable artifact (not just the closed form).

use systolic_dp::prelude::*;

/// §3.2: "For the graph in Figure 1(b), the process is completed in 15
/// iterations" — Design 3 on a 4-stage, 3-value graph.
#[test]
fn design3_fig1b_fifteen_iterations() {
    let g = generate::node_value_random(
        0,
        4,
        3,
        Box::new(systolic_dp::multistage::node_value::AbsDiff),
        0,
        20,
    );
    let res = Design3Array::new(3).run(&g);
    assert_eq!(res.cycles, 15);
}

/// §3.2: "the total computational time is (N+1)m iterations".
#[test]
fn design3_general_timing() {
    for (n, m) in [(3usize, 2usize), (7, 4), (12, 6)] {
        let g = generate::node_value_random(
            1,
            n,
            m,
            Box::new(systolic_dp::multistage::node_value::SquaredDiff),
            -9,
            9,
        );
        let res = Design3Array::new(m).run(&g);
        assert_eq!(res.cycles, ((n + 1) * m) as u64, "n={n} m={m}");
    }
}

/// Eq. 9: PU of the matrix-string designs equals (N−2)/N + 1/(N·m).
#[test]
fn eq9_pu_formula() {
    for (stages, m) in [(10usize, 4u64), (20, 8), (50, 3)] {
        let g = generate::random_single_source_sink(3, stages, m as usize, 0, 9);
        let res = Design1Array::new(m as usize).run(g.matrix_string());
        let n = (stages - 1) as u64;
        let serial = solve::SerialCounts::matrix_string(n, m);
        let pu = res.paper_pu(serial, m);
        let eq9 = solve::SerialCounts::eq9_pu(n, m);
        assert!((pu - eq9).abs() < 1e-9, "stages={stages} m={m}");
    }
}

/// Proposition 2 / Eq. 42: the broadcast chain array solves N matrices
/// in exactly N steps, for every N.
#[test]
fn prop2_td_equals_n() {
    for n in 1..=100usize {
        let dims: Vec<u64> = (0..=n).map(|i| 1 + (i as u64 % 7)).collect();
        let res = simulate_chain_array(&dims, ChainMapping::Broadcast);
        assert_eq!(res.finish, n as u64, "n={n}");
    }
}

/// Proposition 3 / Eq. 43: the serialized pipeline takes exactly 2N.
#[test]
fn prop3_tp_equals_2n() {
    for n in 1..=100usize {
        let dims: Vec<u64> = (0..=n).map(|i| 1 + (i as u64 % 5)).collect();
        let res = simulate_chain_array(&dims, ChainMapping::Pipelined);
        assert_eq!(res.finish, 2 * n as u64, "n={n}");
    }
}

/// Theorem 2 / Eq. 32: measured node counts match the closed form, and
/// p = 2 minimizes u(p) for m ≥ 3.
#[test]
fn thm2_u_p() {
    use systolic_dp::andor::partition::u_p_closed_form;
    for (n, m, p) in [(8usize, 3u64, 2u64), (9, 3, 3), (16, 2, 4)] {
        let pg = build_partition_graph(n, m as usize, p as usize);
        assert_eq!(pg.node_count(), u_p_closed_form(n as u64, m, p));
    }
    for m in 3u64..7 {
        assert!(u_p_closed_form(64, m, 2) < u_p_closed_form(64, m, 4));
        assert!(u_p_closed_form(64, m, 4) < u_p_closed_form(64, m, 8));
    }
}

/// Theorem 1: the optimal K·T² granularity sits at Θ(N/log₂N) and the
/// achieved S·T² is within a constant factor of N·log₂N.
#[test]
fn thm1_granularity() {
    for n in [1024u64, 4096] {
        let (k_star, v_star) = dnc::optimal_granularity(n, n / 2);
        let ideal = n as f64 / (n as f64).log2();
        assert!((k_star as f64 / ideal) < 2.0 && (k_star as f64 / ideal) > 0.5);
        let ratio = v_star as f64 / (n as f64 * (n as f64).log2());
        assert!(ratio < 8.0, "n={n}: ratio {ratio}");
    }
}

/// Proposition 1: PU ordering and slow convergence toward 1/(1+c).
#[test]
fn prop1_pu_ordering() {
    let n = 1 << 18;
    let pu_half = dnc::pu_asymptotic(n, 0.5);
    let pu_one = dnc::pu_asymptotic(n, 1.0);
    let pu_four = dnc::pu_asymptotic(n, 4.0);
    assert!(pu_half > pu_one && pu_one > pu_four);
    assert!(pu_half > 2.0 / 3.0); // above its limit, approaching from above
    assert!(pu_four > 0.2 && pu_four < 0.35);
}

/// §3.2: the node-value formulation reduces input words by ~m×.
#[test]
fn io_reduction_claim() {
    let g = generate::node_value_random(
        5,
        20,
        10,
        Box::new(systolic_dp::multistage::node_value::AbsDiff),
        0,
        99,
    );
    let (node, edge) = g.io_words();
    assert_eq!(node, 200);
    assert_eq!(edge, 1900);
    let res = Design3Array::new(10).run(&g);
    assert_eq!(res.input_words, node as u64 + 1); // + the comparison token
}

/// §5 (serial-monadic): the capacity-indexed knapsack array finishes in
/// exactly `n + Σwᵢ + 2(C+1)` cycles — the item stream drains through
/// C+1 capacity cells with one extra hop per unit of weight.
#[test]
fn knapsack_array_cycles_match_closed_form() {
    for seed in 0..20u64 {
        let n = 1 + (seed as usize % 9);
        let capacity = seed % 13;
        let items: Vec<KnapsackItem> = (0..n)
            .map(|i| {
                let x = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(i as u64 * 0x45D9_F3B3);
                KnapsackItem::new(x % 7, (x >> 8) % 10)
            })
            .collect();
        let run = knapsack_array(&items, capacity);
        let weight_sum: u64 = items.iter().map(|it| it.weight).sum();
        assert_eq!(
            run.cycles,
            n as u64 + weight_sum + 2 * (capacity + 1),
            "seed {seed}"
        );
    }
    // Empty item lists build no array and spend no cycles.
    assert_eq!(knapsack_array(&[], 5).cycles, 0);
}

/// Fig. 2 structure: four matrices give six subchain (OR) processors —
/// "mapped directly into six processors connected by broadcast busses".
#[test]
fn fig2_six_processors() {
    let andor = systolic_dp::andor::chain::build_chain_andor(&[2, 3, 4, 5, 6]);
    use systolic_dp::andor::NodeKind;
    assert_eq!(andor.graph.count_kind(NodeKind::Or), 6);
}

/// §6.2: serialization makes the chain AND/OR-graph serial at the price
/// of dummy nodes ("additional delay and redundant hardware").
#[test]
fn serialization_tradeoff() {
    let andor = systolic_dp::andor::chain::build_chain_andor(&[2, 3, 4, 5, 6, 7, 8]);
    assert!(!andor.graph.is_serial());
    let ser = serialize(&andor.graph);
    assert!(ser.graph.is_serial());
    assert!(ser.dummies > 0);
    // Propositions 2 vs 3 quantify the delay: 2N vs N.
    let dims = [2u64, 3, 4, 5, 6, 7, 8];
    let direct = simulate_chain_array(&dims, ChainMapping::Broadcast).finish;
    let serial = simulate_chain_array(&dims, ChainMapping::Pipelined).finish;
    assert_eq!(serial, 2 * direct);
}
