//! Integration: every solution path in the workspace computes the same
//! optimum on shared random instances — systolic designs, sequential DP,
//! matrix string products, AND/OR partition graphs, and brute force.

use systolic_dp::prelude::*;

#[test]
fn five_way_agreement_on_single_source_sink_graphs() {
    for seed in 0..25 {
        let stages = 3 + (seed as usize % 7);
        let m = 1 + (seed as usize % 5);
        let g = generate::random_single_source_sink(seed, stages, m, 0, 40);

        let fwd = solve::forward_dp(&g).cost;
        let bwd = solve::backward_dp(&g).cost;
        let mat = g.optimal_cost();
        let d1 = Design1Array::new(m).run(g.matrix_string()).optimum();
        let d2 = Design2Array::new(m).run(g.matrix_string()).optimum();
        let (bf, _) = solve::brute_force(&g);

        assert_eq!(fwd, bwd, "seed {seed}");
        assert_eq!(fwd, mat, "seed {seed}");
        assert_eq!(fwd, d1, "seed {seed}");
        assert_eq!(fwd, d2, "seed {seed}");
        assert_eq!(fwd, bf, "seed {seed}");
    }
}

#[test]
fn node_value_pipeline_agrees_with_edge_cost_pipeline() {
    for seed in 0..15 {
        let n = 3 + (seed as usize % 6);
        let m = 2 + (seed as usize % 4);
        let nv = generate::node_value_random(
            seed,
            n,
            m,
            Box::new(systolic_dp::multistage::node_value::AbsDiff),
            -30,
            30,
        );
        let d3 = Design3Array::new(m).run(&nv);
        let ms = nv.to_multistage();
        // The materialized edge-cost graph through the other designs:
        let d1 = Design1Array::new(m).run(ms.matrix_string());
        let dp = solve::backward_dp(&ms);
        assert_eq!(d3.cost, dp.cost, "seed {seed}");
        assert_eq!(d1.optimum(), dp.cost, "seed {seed}");
        assert_eq!(solve::path_cost(&ms, &d3.path), d3.cost, "seed {seed}");
    }
}

#[test]
fn partition_graph_agrees_with_designs_on_uniform_strings() {
    for seed in 0..8 {
        let m = 2 + (seed as usize % 2);
        let g = generate::random_uniform(seed, 5, m, 0, 30); // 4 matrices
        let pg = build_partition_graph(4, m, 2);
        let reduced = pg.evaluate_on(g.matrix_string());
        let d1 = Design1Array::new(m).run(g.matrix_string());
        // d1 values are row minima of the reduced all-pairs matrix
        for (i, &v) in d1.values.iter().enumerate() {
            let row_min = (0..m)
                .map(|j| reduced.get(i, j).0)
                .fold(Cost::INF, Cost::min);
            assert_eq!(v, row_min, "seed {seed} row {i}");
        }
    }
}

#[test]
fn parallel_executor_agrees_with_everything() {
    for seed in 0..6 {
        let n = 4 + (seed as usize % 8);
        let m = 2 + (seed as usize % 3);
        let g = generate::random_uniform(seed, n + 1, m, 0, 50);
        let (tree, _) = dnc::ParallelExecutor::new(3).multiply_string(g.matrix_string());
        let fold = Matrix::string_product(g.matrix_string());
        assert_eq!(tree, fold, "seed {seed}");
    }
}

#[test]
fn chain_arrays_agree_with_andor_and_dp() {
    for seed in 0..10 {
        let n = 2 + (seed as usize % 9);
        let dims = generate::random_chain_dims(seed, n, 1, 30);
        let dp = matrix_chain_order(&dims).cost;
        let bc = simulate_chain_array(&dims, ChainMapping::Broadcast).cost;
        let pl = simulate_chain_array(&dims, ChainMapping::Pipelined).cost;
        let andor = systolic_dp::andor::chain::build_chain_andor(&dims);
        let graph_val = andor.graph.evaluate_node(andor.root);
        let ser = serialize(&andor.graph);
        let ser_val = ser.graph.evaluate(&|_| None)[ser.id_map[andor.root]];
        assert_eq!(dp, bc, "seed {seed}");
        assert_eq!(dp, pl, "seed {seed}");
        assert_eq!(dp, graph_val, "seed {seed}");
        assert_eq!(dp, ser_val, "seed {seed}");
    }
}

#[test]
fn banded_alignment_agrees_with_full_mesh_when_band_covers() {
    use systolic_dp::prelude::Scoring;
    for seed in 0..12u64 {
        let la = 1 + (seed as usize % 9);
        let lb = 1 + ((seed as usize / 2) % 9);
        let sym = |i: usize| {
            let x = seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(i as u64 * 0x45D9_F3B3);
            (x % 4) as u8
        };
        let a: Vec<u8> = (0..la).map(sym).collect();
        let b: Vec<u8> = (la..la + lb).map(sym).collect();
        let scoring = Scoring::simple(2, -1, 1);
        let full = sw_mesh(&a, &b, &scoring);
        // Any band ≥ max(|a|,|b|) − 1 covers every cell of the matrix,
        // so the banded mesh must reproduce the full run exactly.
        for extra in 0..2usize {
            let band = la.max(lb) - 1 + extra;
            let banded = sdp_core::align::sw_banded_mesh(&a, &b, band, &scoring);
            assert_eq!(
                (banded.score, banded.end),
                (full.score, full.end),
                "seed {seed} band {band}"
            );
        }
        // The traceback recovered from the full mesh re-scores to the
        // run's optimum.
        let (run, alignment) = sw_mesh_aligned(&a, &b, &scoring);
        if let Some(al) = alignment {
            assert_eq!(al.score, run.score, "seed {seed}");
        } else {
            assert_eq!(run.score, 0, "seed {seed}");
        }
    }
}

#[test]
fn sparse_graphs_with_unreachable_edges() {
    for seed in 0..10 {
        let g = generate::random_sparse(seed, 6, 4, 1, 20, 0.5);
        let dp = solve::forward_dp(&g).cost;
        let d1 = Design1Array::new(4).run(g.matrix_string());
        // multi-source/multi-sink: compare per-vertex vector minima
        let want = Matrix::string_product(g.matrix_string());
        for (i, &v) in d1.values.iter().enumerate() {
            let row_min = (0..4).map(|j| want.get(i, j).0).fold(Cost::INF, Cost::min);
            assert_eq!(v, row_min, "seed {seed} row {i}");
        }
        let overall = d1.values.iter().copied().fold(Cost::INF, Cost::min);
        assert_eq!(overall, dp, "seed {seed}");
    }
}
