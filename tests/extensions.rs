//! Integration: the extension modules compose with the original stack.

use sdp_core::chain_problem::{ChainProblem, MergeTree};
use sdp_core::edit_array::{edit_distance_mesh, edit_distance_seq};
use sdp_core::matmul_array::MatmulArray;
use sdp_core::nonserial_array::run_grouped;
use sdp_multistage::bnb;
use sdp_multistage::curve::{CurveConfig, SyntheticImage};
use systolic_dp::prelude::*;

/// Curve detection: sequential DP, Design 1, Design 2 (with path), and
/// branch-and-bound all agree on the same image.
#[test]
fn curve_detection_four_way_agreement() {
    let img = SyntheticImage::generate(5, 30, 8, 100, 40);
    let cfg = CurveConfig::default();
    let det = img.detect(cfg);
    let g = img.to_multistage(cfg);

    let d1 = Design1Array::new(8).run(g.matrix_string());
    let d2 = Design2Array::new(8).run(g.matrix_string());
    let bb = bnb::search(&g, bnb::BnbConfig::default());

    let best = |v: &[Cost]| v.iter().copied().fold(Cost::INF, Cost::min);
    assert_eq!(best(&d1.values), det.cost);
    assert_eq!(best(&d2.values), det.cost);
    assert_eq!(bb.cost, det.cost);
    // Design 2's recovered path is a valid optimal curve too.
    let path = d2.path.expect("finite optimum");
    assert_eq!(solve::path_cost(&g, &path), det.cost);
    for w in path.windows(2) {
        assert!(w[0].abs_diff(w[1]) <= cfg.max_step);
    }
}

/// The Kung mesh, the threaded executor, and the reference fold multiply
/// the same string identically; mesh cycles equal rounds × T₁.
#[test]
fn matmul_mesh_and_threads_and_fold_agree() {
    let g = generate::random_uniform(11, 9, 4, 0, 99); // 8 matrices
    let fold = Matrix::string_product(g.matrix_string());
    let (mesh_prod, mesh_cycles) = MatmulArray::multiply_string_dnc(g.matrix_string(), 3);
    let (thr_prod, rounds) = dnc::ParallelExecutor::new(3).multiply_string(g.matrix_string());
    assert_eq!(mesh_prod, fold);
    assert_eq!(thr_prod, fold);
    assert_eq!(mesh_cycles, rounds * MatmulArray::t1(4, 4, 4));
}

/// A merge-tree problem runs identically on the analytic chain array,
/// the clocked GKT triangle, and the sequential DP.
#[test]
fn merge_tree_three_models() {
    let freq = [9u64, 2, 17, 4, 11];
    let p = MergeTree::new(&freq);
    let dp = p.solve_dp();
    let bc = sdp_core::chain_array::simulate_chain_problem(&p, ChainMapping::Broadcast);
    let gk = GktArray::default().run_problem(&p);
    assert_eq!(bc.cost, dp);
    assert_eq!(gk.cost, dp);
    assert_eq!(bc.finish, freq.len() as u64); // T_d = N holds here too
}

/// Grouped nonserial execution agrees with elimination and brute force,
/// and exposes the §6.1 work/parallelism trade.
#[test]
fn grouped_nonserial_end_to_end() {
    let chain = TernaryChain::uniform(
        (0..6).map(|i| vec![i, i + 1, 2 * i]).collect(),
        |a, b, c| Cost::from((a - b).abs() * 2 + (b - c).abs()),
    );
    let run = run_grouped(&chain);
    let (bf, _) = chain.brute_force();
    assert_eq!(run.cost, bf);
    assert!(run.work_blowup() >= 1.0);
    assert!(run.speedup() >= 1.0);
}

/// Edit distance: the mesh agrees with the sequential oracle, including
/// on equal, disjoint, and prefix pairs.
#[test]
fn edit_distance_mesh_oracle() {
    let cases: &[(&[u8], &[u8])] = &[
        (b"abc", b"abc"),
        (b"abc", b"xyz"),
        (b"abc", b"abcdef"),
        (b"abcdef", b"abc"),
        (b"a", b""),
        (b"", b""),
    ];
    for (a, b) in cases {
        assert_eq!(
            edit_distance_mesh(a, b).distance,
            edit_distance_seq(a, b),
            "{a:?} vs {b:?}"
        );
    }
}

/// The secondary-optimization plan executes on real cost matrices with
/// exactly the predicted operation count and an unchanged product.
#[test]
fn reduction_plan_executes_faithfully() {
    let g = generate::random_uniform(21, 6, 5, 0, 30);
    let p = reduction::plan(&g);
    let (reduced, ops) = reduction::execute(&g, &p);
    assert_eq!(ops, p.optimal_ops);
    assert_eq!(reduced, Matrix::string_product(g.matrix_string()));
}

/// Top-down search over the chain AND/OR graph yields the DP value and a
/// consistent solution tree.
#[test]
fn topdown_solution_tree_on_chain() {
    let dims = generate::random_chain_dims(9, 6, 2, 25);
    let c = systolic_dp::andor::chain::build_chain_andor(&dims);
    let td = topdown::search(&c.graph, c.root, &|_| None);
    assert_eq!(td.cost, matrix_chain_order(&dims).cost);
    let tree = td.solution_tree(&c.graph, c.root);
    assert!(tree.contains(&c.root));
}
