//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset of proptest the workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`prop_oneof!`], [`strategy::Just`],
//! [`collection::vec`], [`option::weighted`], and the `prop_assert*`
//! macros.  Sampling is deterministic per test (seeded from the test
//! name); there is no shrinking — a failing case panics with its values
//! via the assertion message.
//!
//! Two upstream behaviours are kept so CI can budget and replay runs:
//!
//! * `PROPTEST_CASES` overrides the default case count
//!   ([`test_runner::Config::default`]), so a CI job can pin a fixed
//!   sweep budget without editing each suite.
//! * A `<test_file>.proptest-regressions` sibling file (upstream's `cc
//!   <seed>` format) is loaded before the random loop and each committed
//!   seed is replayed first; when a random case fails, its seed is
//!   printed in the same `cc` format for committing.

#![forbid(unsafe_code)]

pub mod rng {
    //! The deterministic generator behind every strategy.

    /// SplitMix64 test generator, seeded from the test-function name so
    /// each property gets a stable, distinct sample sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator seeded from an arbitrary label (FNV-1a hash).
        pub fn deterministic(label: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Generator resumed from a raw state — the replay half of the
        /// regression-seed protocol (see [`crate::regressions`]).
        pub fn from_state(state: u64) -> TestRng {
            TestRng { state }
        }

        /// The current raw state.  Captured immediately before a case's
        /// arguments are sampled, it identifies that case exactly:
        /// `from_state(state)` regenerates the same arguments.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Boxes a strategy as a trait object (used by [`prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union over `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i64, u64, i32, u32, usize, i16, u16, i8, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A.0);
    impl_tuple!(A.0, B.1);
    impl_tuple!(A.0, B.1, C.2);
    impl_tuple!(A.0, B.1, C.2, D.3);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Anything usable as a vector-length specification.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and length spec `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`: a vector strategy.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy producing `Some` with the given probability.
    pub struct WeightedOption<S> {
        p_some: f64,
        inner: S,
    }

    /// `proptest::option::weighted`: `Some(value)` with probability
    /// `p_some`, else `None`.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> WeightedOption<S> {
        assert!((0.0..=1.0).contains(&p_some));
        WeightedOption { p_some, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p_some {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Test execution configuration.

    /// How many cases each property runs (subset of proptest's config).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` samples per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 256 cases, overridable via the `PROPTEST_CASES` environment
        /// variable (upstream proptest's knob; CI uses it to pin a fixed
        /// conformance budget).  Unparseable or zero values fall back to
        /// the default.
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&c| c > 0)
                .unwrap_or(256);
            Config { cases }
        }
    }
}

pub mod regressions {
    //! Committed-counterexample replay.
    //!
    //! Upstream proptest persists failing seeds to a sibling
    //! `<test_file>.proptest-regressions` file as `cc <hex-seed> # note`
    //! lines.  This stand-in reads the same format: every committed seed
    //! is replayed (one case each) before any random sampling, so a
    //! counterexample found once keeps failing until fixed, on every
    //! machine, regardless of `PROPTEST_CASES`.
    //!
    //! Seeds written by this crate are 16 hex digits (a raw
    //! [`TestRng`](crate::rng::TestRng) state).  Upstream's 64-digit
    //! seeds are accepted too — they are folded to 64 bits, which keeps
    //! the replay deterministic even though the upstream byte-for-byte
    //! sample sequence cannot be reproduced.

    use std::path::{Path, PathBuf};

    /// Locates the regression file for `source_file` (a `file!()` path,
    /// relative to the workspace root) by resolving it against
    /// `manifest_dir` and each of its ancestors.  Returns `None` when no
    /// file has been committed.
    pub fn find_file(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
        let rel = Path::new(source_file).with_extension("proptest-regressions");
        if rel.as_os_str().is_empty() {
            return None;
        }
        let mut dir = Some(Path::new(manifest_dir));
        while let Some(d) = dir {
            let candidate = d.join(&rel);
            if candidate.is_file() {
                return Some(candidate);
            }
            dir = d.parent();
        }
        None
    }

    /// Parses `cc <hex> …` lines into replay seeds; comments and
    /// malformed lines are ignored.  Hex strings longer than 16 digits
    /// are folded by XOR of 16-digit chunks.
    pub fn parse(content: &str) -> Vec<u64> {
        content
            .lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let hex: &str = rest
                    .split(|c: char| !c.is_ascii_hexdigit())
                    .next()
                    .filter(|h| !h.is_empty())?;
                let mut seed = 0u64;
                for chunk in hex.as_bytes().chunks(16) {
                    let s = std::str::from_utf8(chunk).ok()?;
                    seed ^= u64::from_str_radix(s, 16).ok()?;
                }
                Some(seed)
            })
            .collect()
    }

    /// The committed seeds for `source_file` (empty when none exist).
    pub fn seeds(manifest_dir: &str, source_file: &str) -> Vec<u64> {
        find_file(manifest_dir, source_file)
            .and_then(|p| std::fs::read_to_string(p).ok())
            .map(|c| parse(&c))
            .unwrap_or_default()
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn` samples its arguments from the
/// given strategies and runs the body for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Committed counterexamples replay before any novel cases.
            for __seed in $crate::regressions::seeds(
                env!("CARGO_MANIFEST_DIR"), file!()
            ) {
                let mut rng = $crate::rng::TestRng::from_state(__seed);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
            let mut rng = $crate::rng::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                let __seed = rng.state();
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {} of {}; to replay, add \
                         this line to {}.proptest-regressions:\ncc {:016x} # {}",
                        stringify!($name),
                        __case + 1,
                        config.cases,
                        file!().trim_end_matches(".rs"),
                        __seed,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics with both values).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($w as u32, $crate::strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($s))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_sample() {
        let mut rng = crate::rng::TestRng::deterministic("smoke");
        let s = (0i64..10, 1usize..4).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v < 13);
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let mut rng = crate::rng::TestRng::deterministic("weights");
        let s = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let ones: u32 = (0..1000).map(|_| s.sample(&mut rng) as u32).sum();
        assert!((820..980).contains(&ones), "ones {ones}");
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = crate::rng::TestRng::deterministic("vec");
        let s = crate::collection::vec(crate::option::weighted(0.5, 0u64..10), 0..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b >= a);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn regression_seed_parsing() {
        let content = "# comment\ncc 00000000000000ff # shrinks to x = 1\n\
                       cc deadbeef\nnot a seed\ncc zz\n";
        assert_eq!(crate::regressions::parse(content), vec![0xff, 0xdead_beef]);
    }

    #[test]
    fn upstream_256_bit_seeds_fold_to_64() {
        let content =
            "cc 84b2a169d8645ca30c2631fdf65df0a723ddf1ec273ee4a930b61a9a8de7475b # shrinks";
        let folded = 0x84b2_a169_d864_5ca3u64
            ^ 0x0c26_31fd_f65d_f0a7
            ^ 0x23dd_f1ec_273e_e4a9
            ^ 0x30b6_1a9a_8de7_475b;
        assert_eq!(crate::regressions::parse(content), vec![folded]);
    }

    #[test]
    fn seed_replay_reproduces_samples() {
        let mut a = crate::rng::TestRng::deterministic("replay");
        let strat = (0i64..1000, 0i64..1000);
        let _burn = strat.sample(&mut a);
        let seed = a.state();
        let first = strat.sample(&mut a);
        let mut b = crate::rng::TestRng::from_state(seed);
        assert_eq!(strat.sample(&mut b), first);
    }

    #[test]
    fn missing_regression_file_is_empty() {
        assert!(crate::regressions::seeds(env!("CARGO_MANIFEST_DIR"), "src/no_such.rs").is_empty());
    }
}
