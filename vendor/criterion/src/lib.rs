//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the small benchmarking surface the workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.  It measures wall-clock means over a fixed number of samples
//! and prints one line per benchmark — no statistics engine, no HTML
//! reports, but enough to compare hot paths release-to-release.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from the standard library.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayable parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// Runs the closure under test repeatedly and records elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    fn run_samples<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        // One warm-up pass, then `sample_size` timed samples of a few
        // iterations each; report the best mean (least interference).
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut best = Duration::MAX;
        b.iters = 3;
        for _ in 0..self.sample_size {
            f(&mut b);
            let per_iter = b.elapsed / b.iters as u32;
            best = best.min(per_iter);
        }
        println!("bench {}/{id}: {best:?}/iter", self.name);
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_samples(id, f);
        self
    }

    /// Benchmarks a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_samples(&id.full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
