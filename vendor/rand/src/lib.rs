//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API surface the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, and [`Rng::gen_bool`].  The generator is a
//! SplitMix64 — deterministic, fast, and statistically adequate for
//! workload generation (the only use here).  Sequences differ from the
//! real `rand` crate's `StdRng`; all workspace tests are seed-relative
//! and self-consistent, so only determinism matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// Ranges that can be sampled from (subset of
/// `rand::distributions::uniform::SampleRange`).
///
/// The blanket impls over `SampleUniform` mirror the real crate's
/// structure — one generic impl per range shape — which is what lets
/// integer-literal ranges unify with the surrounding expression type.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 high bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i64, u64, i32, u32, usize, i16, u16, i8, u8);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        f64::sample_half_open(lo, hi, rng)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-advance once so seed 0 does not start at state 0.
            let mut rng = StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
