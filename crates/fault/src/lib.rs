//! Fault injection, detection, and recovery for the systolic stack.
//!
//! The paper's figures of merit (PU, S·T², the Eq. 29 schedule length)
//! assume every PE, latch, and bus fires perfectly every cycle.  This
//! crate turns the simulator into an instrument for the opposite case:
//!
//! * [`FaultPlan`] — a deterministic, seed-driven list of failures
//!   (transient bit flips, stuck-at PE outputs, dropped/corrupted bus
//!   words, lost token rotations, worker deaths);
//! * [`FaultInjector`] — the hook trait the `sdp-systolic` engine
//!   consults on its hot paths, with a zero-overhead [`NoFaults`]
//!   default mirroring `sdp-trace`'s `TraceSink`/`NullSink` pattern
//!   (`const ENABLED` folds the hooks away at compile time);
//! * [`PlanInjector`] — the stateful injector that replays a
//!   [`FaultPlan`] against a run;
//! * [`recover`] — detection/recovery combinators: recompute-on-mismatch
//!   (catches transients) and triple-modular-redundancy voting (catches
//!   any single faulty replica), both panic-safe, reporting
//!   [`RecoveryStats`];
//! * [`ChaosPlan`] / [`ServeChaos`] — the same idea one level up:
//!   deterministic, seed-driven failures for the *serving* path
//!   (engine panics and stalls, torn socket writes, connection drops),
//!   behind a zero-overhead no-op default;
//! * [`SdpError`] — the typed error returned by the workspace's public
//!   API boundaries instead of panicking on malformed input.
//!
//! Injected and detected faults surface as `sdp_trace::Event`
//! (`FaultInjected`, `FaultDetected`, `TaskReassigned`, `PeRemapped`),
//! so recovery is visible in the same VCD/Chrome exports as the
//! fault-free micro-architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod inject;
pub mod plan;
pub mod recover;

pub use chaos::{
    ChaosDomain, ChaosEvent, ChaosPlan, ChaosRates, DispatchAction, ReplyAction, ServeChaos,
    CHAOS_KINDS,
};
pub use error::SdpError;
pub use inject::{BusFault, FaultInjector, FaultyWord, NoFaults, PeFault, PlanInjector};
pub use plan::{Fault, FaultDomain, FaultPlan, FaultRates};
pub use recover::{recompute_on_mismatch, tmr, tmr_vote, RecoveryStats};
pub use sdp_trace::FaultKind;
