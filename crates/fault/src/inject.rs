//! The injector hook trait the simulation engine consults.
//!
//! Mirrors the `TraceSink`/`NullSink` pattern from `sdp-trace`: engine
//! hot loops guard every hook behind `if F::ENABLED { ... }`, and
//! [`NoFaults`] sets `ENABLED = false`, so the fault-free path compiles
//! to exactly the code it had before fault injection existed.
//!
//! The injector returns *actions* ([`PeFault`], [`BusFault`]) rather
//! than touching words itself; the engine applies them through the
//! [`FaultyWord`] trait at the site where the concrete word type is
//! known.  This keeps the trait object-simple and lets designs whose
//! words carry routing state (e.g. Design 3's tagged items) corrupt
//! only the payload, never the flow control.

use crate::plan::{Fault, FaultPlan};
use sdp_semiring::{Cost, MaxPlus, MinPlus};
use sdp_trace::FaultKind;

/// A corruption to apply to one PE output word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeFault {
    /// Flip one payload bit.
    FlipBit(u32),
    /// Replace the payload with a stuck value.
    StuckAt(i64),
}

impl PeFault {
    /// The trace-level class of this action.
    pub fn kind(self) -> FaultKind {
        match self {
            PeFault::FlipBit(_) => FaultKind::TransientFlip,
            PeFault::StuckAt(_) => FaultKind::StuckAt,
        }
    }
}

/// A failure to apply to one bus word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusFault {
    /// The word never arrives (and the token does not advance).
    Drop,
    /// The word arrives with one payload bit flipped.
    FlipBit(u32),
}

impl BusFault {
    /// The trace-level class of this action.
    pub fn kind(self) -> FaultKind {
        match self {
            BusFault::Drop => FaultKind::DroppedBusWord,
            BusFault::FlipBit(_) => FaultKind::CorruptBusWord,
        }
    }
}

/// Decides, site by site, which failures fire during a run.
///
/// All hooks have no-op defaults so targeted injectors override only
/// the class they care about.  Ordinals follow [`Fault`]'s conventions:
/// `cycle` is the array clock, `word` counts bus words driven,
/// `rotation` counts token advances, `task` counts scheduled tasks.
pub trait FaultInjector {
    /// Whether this injector can fire at all.  `false` lets the engine
    /// fold every hook (and its argument construction) away.
    const ENABLED: bool = true;

    /// Corruption for the word PE `pe` emits this `cycle` (the engine
    /// only asks when the PE actually emitted a word).
    fn pe_fault(&mut self, pe: u32, cycle: u64) -> Option<PeFault> {
        let _ = (pe, cycle);
        None
    }

    /// Failure for the `word`-th word driven on the shared bus.
    fn bus_fault(&mut self, word: u64) -> Option<BusFault> {
        let _ = word;
        None
    }

    /// True when the `rotation`-th token advance is lost.
    fn token_lost(&mut self, rotation: u64) -> bool {
        let _ = rotation;
        false
    }

    /// True when the worker running scheduled task `task` dies.
    fn worker_dies(&mut self, task: u64) -> bool {
        let _ = task;
        false
    }
}

/// The zero-overhead default: no faults, hooks compile away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    const ENABLED: bool = false;
}

/// Forwarding through a mutable reference, so call sites can pass
/// `&mut injector` without consuming it.
impl<F: FaultInjector> FaultInjector for &mut F {
    const ENABLED: bool = F::ENABLED;

    #[inline]
    fn pe_fault(&mut self, pe: u32, cycle: u64) -> Option<PeFault> {
        (**self).pe_fault(pe, cycle)
    }

    #[inline]
    fn bus_fault(&mut self, word: u64) -> Option<BusFault> {
        (**self).bus_fault(word)
    }

    #[inline]
    fn token_lost(&mut self, rotation: u64) -> bool {
        (**self).token_lost(rotation)
    }

    #[inline]
    fn worker_dies(&mut self, task: u64) -> bool {
        (**self).worker_dies(task)
    }
}

/// Replays a [`FaultPlan`] against one run.
///
/// One-shot faults (transient flips, bus faults, token losses, worker
/// kills) are consumed when they fire and stay fired for the lifetime
/// of the injector — rerunning a computation through the *same*
/// injector sees a clean pass, which is exactly what lets
/// recompute-on-mismatch recover from transients.  `StuckAt` is
/// permanent and keeps firing; only TMR or spare remapping recovers it.
#[derive(Clone, Debug)]
pub struct PlanInjector {
    plan: FaultPlan,
    fired: Vec<bool>,
}

impl PlanInjector {
    /// An injector that will replay `plan`.
    pub fn new(plan: FaultPlan) -> PlanInjector {
        let n = plan.len();
        PlanInjector {
            plan,
            fired: vec![false; n],
        }
    }

    /// Faults that have fired so far, in plan order.
    pub fn fired(&self) -> Vec<Fault> {
        self.plan
            .faults()
            .iter()
            .zip(&self.fired)
            .filter_map(|(f, &hit)| hit.then_some(*f))
            .collect()
    }

    /// Re-arms every one-shot fault (for replaying the plan against a
    /// fresh run rather than modelling a persistent machine).
    pub fn rearm(&mut self) {
        self.fired.iter_mut().for_each(|f| *f = false);
    }
}

impl FaultInjector for PlanInjector {
    fn pe_fault(&mut self, pe: u32, cycle: u64) -> Option<PeFault> {
        for (i, fault) in self.plan.faults().iter().enumerate() {
            match *fault {
                Fault::TransientFlip {
                    pe: p,
                    cycle: c,
                    bit,
                } if p == pe && cycle >= c && !self.fired[i] => {
                    self.fired[i] = true;
                    return Some(PeFault::FlipBit(bit));
                }
                Fault::StuckAt {
                    pe: p,
                    cycle: c,
                    value,
                } if p == pe && cycle >= c => {
                    self.fired[i] = true;
                    return Some(PeFault::StuckAt(value));
                }
                _ => {}
            }
        }
        None
    }

    fn bus_fault(&mut self, word: u64) -> Option<BusFault> {
        for (i, fault) in self.plan.faults().iter().enumerate() {
            match *fault {
                Fault::DropBusWord { word: w } if w == word && !self.fired[i] => {
                    self.fired[i] = true;
                    return Some(BusFault::Drop);
                }
                Fault::CorruptBusWord { word: w, bit } if w == word && !self.fired[i] => {
                    self.fired[i] = true;
                    return Some(BusFault::FlipBit(bit));
                }
                _ => {}
            }
        }
        None
    }

    fn token_lost(&mut self, rotation: u64) -> bool {
        for (i, fault) in self.plan.faults().iter().enumerate() {
            if let Fault::LoseTokenRotation { rotation: r } = *fault {
                if r == rotation && !self.fired[i] {
                    self.fired[i] = true;
                    return true;
                }
            }
        }
        false
    }

    fn worker_dies(&mut self, task: u64) -> bool {
        for (i, fault) in self.plan.faults().iter().enumerate() {
            if let Fault::KillWorker { task: t } = *fault {
                if t == task && !self.fired[i] {
                    self.fired[i] = true;
                    return true;
                }
            }
        }
        false
    }
}

/// A word the engine knows how to corrupt.
///
/// Implementations corrupt the *payload* only: words that piggyback
/// routing or control state (tags, path registers) keep that state
/// intact so a fault produces a wrong answer, not a wedged pipeline —
/// matching the classical stuck-at model where the datapath latch
/// fails but the control plane keeps clocking.
pub trait FaultyWord: Copy {
    /// Flip one payload bit.
    fn flip_bit(self, bit: u32) -> Self;

    /// Replace the payload with a stuck value.
    fn stuck_at(self, value: i64) -> Self;

    /// Apply a PE fault action.
    #[inline]
    fn apply(self, fault: PeFault) -> Self {
        match fault {
            PeFault::FlipBit(bit) => self.flip_bit(bit),
            PeFault::StuckAt(value) => self.stuck_at(value),
        }
    }
}

impl FaultyWord for i64 {
    fn flip_bit(self, bit: u32) -> i64 {
        self ^ (1i64 << (bit % 63))
    }

    fn stuck_at(self, value: i64) -> i64 {
        value
    }
}

impl FaultyWord for u64 {
    fn flip_bit(self, bit: u32) -> u64 {
        self ^ (1u64 << (bit % 64))
    }

    fn stuck_at(self, value: i64) -> u64 {
        value as u64
    }
}

impl FaultyWord for u32 {
    fn flip_bit(self, bit: u32) -> u32 {
        self ^ (1u32 << (bit % 32))
    }

    fn stuck_at(self, value: i64) -> u32 {
        value as u32
    }
}

impl FaultyWord for Cost {
    fn flip_bit(self, bit: u32) -> Cost {
        // Saturate so a flipped bit can never forge the reserved INF.
        Cost::saturating_from(self.raw() ^ (1i64 << (bit % 63)))
    }

    fn stuck_at(self, value: i64) -> Cost {
        Cost::saturating_from(value)
    }
}

impl FaultyWord for MinPlus {
    fn flip_bit(self, bit: u32) -> MinPlus {
        MinPlus(self.0.flip_bit(bit))
    }

    fn stuck_at(self, value: i64) -> MinPlus {
        MinPlus(self.0.stuck_at(value))
    }
}

impl FaultyWord for MaxPlus {
    fn flip_bit(self, bit: u32) -> MaxPlus {
        MaxPlus(self.0.flip_bit(bit))
    }

    fn stuck_at(self, value: i64) -> MaxPlus {
        MaxPlus(self.0.stuck_at(value))
    }
}

/// Pairs corrupt the first element (payload) and keep the second
/// (piggybacked routing/auxiliary state) intact.
impl<A: FaultyWord, B: Copy> FaultyWord for (A, B) {
    fn flip_bit(self, bit: u32) -> (A, B) {
        (self.0.flip_bit(bit), self.1)
    }

    fn stuck_at(self, value: i64) -> (A, B) {
        (self.0.stuck_at(value), self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_disabled_and_inert() {
        const { assert!(!NoFaults::ENABLED) };
        const { assert!(!<&mut NoFaults as FaultInjector>::ENABLED) };
        let mut inj = NoFaults;
        assert_eq!(inj.pe_fault(0, 0), None);
        assert_eq!(inj.bus_fault(0), None);
        assert!(!inj.token_lost(0));
        assert!(!inj.worker_dies(0));
    }

    #[test]
    fn transient_fires_once_at_or_after_cycle() {
        let plan = FaultPlan::new().with(Fault::TransientFlip {
            pe: 1,
            cycle: 5,
            bit: 3,
        });
        let mut inj = PlanInjector::new(plan);
        assert_eq!(inj.pe_fault(1, 4), None); // too early
        assert_eq!(inj.pe_fault(0, 6), None); // wrong PE
        assert_eq!(inj.pe_fault(1, 6), Some(PeFault::FlipBit(3)));
        assert_eq!(inj.pe_fault(1, 7), None); // consumed
        assert_eq!(inj.fired().len(), 1);
        inj.rearm();
        assert_eq!(inj.pe_fault(1, 5), Some(PeFault::FlipBit(3)));
    }

    #[test]
    fn stuck_at_persists() {
        let plan = FaultPlan::new().with(Fault::StuckAt {
            pe: 0,
            cycle: 2,
            value: 99,
        });
        let mut inj = PlanInjector::new(plan);
        assert_eq!(inj.pe_fault(0, 1), None);
        assert_eq!(inj.pe_fault(0, 2), Some(PeFault::StuckAt(99)));
        assert_eq!(inj.pe_fault(0, 50), Some(PeFault::StuckAt(99)));
    }

    #[test]
    fn bus_token_and_worker_faults_fire_once() {
        let plan = FaultPlan::new()
            .with(Fault::DropBusWord { word: 2 })
            .with(Fault::CorruptBusWord { word: 4, bit: 1 })
            .with(Fault::LoseTokenRotation { rotation: 3 })
            .with(Fault::KillWorker { task: 1 });
        let mut inj = PlanInjector::new(plan);
        assert_eq!(inj.bus_fault(1), None);
        assert_eq!(inj.bus_fault(2), Some(BusFault::Drop));
        assert_eq!(inj.bus_fault(2), None);
        assert_eq!(inj.bus_fault(4), Some(BusFault::FlipBit(1)));
        assert!(!inj.token_lost(2));
        assert!(inj.token_lost(3));
        assert!(!inj.token_lost(3));
        assert!(inj.worker_dies(1));
        assert!(!inj.worker_dies(1));
    }

    #[test]
    fn faulty_words_corrupt_payload_only() {
        assert_eq!(5i64.flip_bit(1), 7);
        assert_eq!(5i64.stuck_at(42), 42);
        assert_eq!((5u64, 9u64).flip_bit(1), (7, 9));
        assert_eq!((5u64, 9u64).stuck_at(1), (1, 9));
        let c = Cost::from(5).flip_bit(1);
        assert_eq!(c, Cost::from(7));
        // Flipping the top bit of INF saturates instead of forging INF.
        assert!(Cost::INF.flip_bit(0).is_finite());
        assert_eq!(
            MinPlus::from(5).apply(PeFault::StuckAt(3)),
            MinPlus::from(3)
        );
    }
}
