//! Serving-level chaos: deterministic, seed-driven failure injection
//! for the request path.
//!
//! [`FaultPlan`](crate::FaultPlan) aims failures at the simulated
//! *hardware* (PEs, buses, tokens).  A [`ChaosPlan`] aims them one
//! level up, at the *serving* layer: engine dispatches that panic or
//! stall, replies that are torn across multiple socket writes, and
//! connections that drop right before a reply is delivered.  Like
//! fault plans, chaos plans are plain data drawn from a seeded
//! generator — the same `(seed, rates, domain)` triple always yields
//! the same plan, which is what lets the E26 chaos experiment be
//! golden-diffed and lets any failing seed be replayed exactly.
//!
//! The runtime half, [`ServeChaos`], converts a plan into per-site
//! decisions: the server asks [`ServeChaos::on_dispatch`] once per
//! engine dispatch and [`ServeChaos::on_reply`] once per compute reply,
//! each call consuming one ordinal from an atomic counter.  A server
//! configured without chaos never constructs one of these, so the
//! default cost is a single `Option` check per site.
//!
//! Which *request* a given ordinal lands on depends on thread
//! interleaving; the serving invariant — every accepted request yields
//! exactly one reply or one typed error — must therefore hold for
//! every placement, and that is precisely what the chaos proptest and
//! E26 check.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::SplitMix64;

/// One serving-level failure to inject.
///
/// `dispatch` counts engine-bucket dispatches and `reply` counts
/// compute replies, both 0-based ordinals within one server run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The `dispatch`-th engine dispatch panics instead of computing.
    EnginePanic {
        /// Dispatch ordinal (0-based, counted per server run).
        dispatch: u64,
    },
    /// The `dispatch`-th engine dispatch stalls for `ms` milliseconds
    /// before computing (a slow engine, not a dead one).
    EngineStall {
        /// Dispatch ordinal (0-based, counted per server run).
        dispatch: u64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// The `reply`-th compute reply is written in two flushed segments
    /// (a torn write: the line is still complete, just not atomic).
    TornWrite {
        /// Reply ordinal (0-based, counted per server run).
        reply: u64,
    },
    /// The connection carrying the `reply`-th compute reply is closed
    /// instead of delivering it; the client sees EOF.
    ConnectionDrop {
        /// Reply ordinal (0-based, counted per server run).
        reply: u64,
    },
}

/// Per-class event counts for [`ChaosPlan::random`].
///
/// Counts, not probabilities, for the same reason as
/// [`FaultRates`](crate::FaultRates): a fixed count keeps the plan
/// exactly reproducible for a given seed regardless of run length.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosRates {
    /// Engine dispatches to panic.
    pub engine_panics: u32,
    /// Engine dispatches to stall.
    pub engine_stalls: u32,
    /// Compute replies to tear across two writes.
    pub torn_writes: u32,
    /// Compute replies whose connection is dropped.
    pub connection_drops: u32,
}

/// The extent of one server run, used to place randomly drawn events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosDomain {
    /// Dispatch-ordinal horizon (0 disables dispatch events).
    pub dispatches: u64,
    /// Reply-ordinal horizon (0 disables reply events).
    pub replies: u64,
    /// Stall durations are drawn from `1..=max_stall_ms`.
    pub max_stall_ms: u64,
}

/// A deterministic list of serving-level failures for one server run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// The empty plan: injecting it is the identity.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Builds a plan from an explicit event list.
    pub fn from_events(events: Vec<ChaosEvent>) -> ChaosPlan {
        ChaosPlan { events }
    }

    /// Adds one event (builder style).
    #[must_use]
    pub fn with(mut self, event: ChaosEvent) -> ChaosPlan {
        self.events.push(event);
        self
    }

    /// Adds one event in place.
    pub fn push(&mut self, event: ChaosEvent) {
        self.events.push(event);
    }

    /// The planned events, in plan order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Number of planned events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are planned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a plan from a seeded generator: `rates` events of each
    /// class, placed uniformly over `domain`.  The same `(seed, rates,
    /// domain)` triple always yields the same plan.
    pub fn random(seed: u64, rates: ChaosRates, domain: ChaosDomain) -> ChaosPlan {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        if domain.dispatches > 0 {
            for _ in 0..rates.engine_panics {
                events.push(ChaosEvent::EnginePanic {
                    dispatch: rng.below(domain.dispatches),
                });
            }
            for _ in 0..rates.engine_stalls {
                events.push(ChaosEvent::EngineStall {
                    dispatch: rng.below(domain.dispatches),
                    ms: rng.below(domain.max_stall_ms.max(1)) + 1,
                });
            }
        }
        if domain.replies > 0 {
            for _ in 0..rates.torn_writes {
                events.push(ChaosEvent::TornWrite {
                    reply: rng.below(domain.replies),
                });
            }
            for _ in 0..rates.connection_drops {
                events.push(ChaosEvent::ConnectionDrop {
                    reply: rng.below(domain.replies),
                });
            }
        }
        ChaosPlan { events }
    }
}

/// What the server should do at one engine dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchAction {
    /// Run the engine normally.
    Run,
    /// Panic instead of computing (the dispatcher's `catch_unwind`
    /// turns this into `TaskPanicked` for every rider of the bucket).
    Panic,
    /// Sleep for `ms` milliseconds, then run the engine normally.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// What the connection thread should do with one compute reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyAction {
    /// Write the reply normally.
    Deliver,
    /// Write the reply in two flushed segments.
    Tear,
    /// Close the connection without writing the reply.
    Drop,
}

/// Names for the injected-event counters, in the order
/// [`ServeChaos::injected_counts`] reports them.
pub const CHAOS_KINDS: [&str; 4] = [
    "engine_panic",
    "engine_stall",
    "torn_write",
    "connection_drop",
];

const K_PANIC: usize = 0;
const K_STALL: usize = 1;
const K_TORN: usize = 2;
const K_DROP: usize = 3;

/// The runtime half of a [`ChaosPlan`]: hands out per-site decisions
/// as the server consumes dispatch and reply ordinals.
///
/// Thread-safe; ordinal counters are atomic so concurrent connection
/// threads and the dispatcher can consult it without locking.  When an
/// ordinal carries both a panic and a stall, the panic wins; when a
/// reply carries both a drop and a torn write, the drop wins.
#[derive(Debug, Default)]
pub struct ServeChaos {
    panics: Vec<u64>,
    stalls: Vec<(u64, u64)>,
    torn: Vec<u64>,
    drops: Vec<u64>,
    dispatch_ctr: AtomicU64,
    reply_ctr: AtomicU64,
    injected: [AtomicU64; 4],
}

impl ServeChaos {
    /// Compiles a plan into its runtime form.
    pub fn new(plan: &ChaosPlan) -> ServeChaos {
        let mut chaos = ServeChaos::default();
        for event in plan.events() {
            match *event {
                ChaosEvent::EnginePanic { dispatch } => chaos.panics.push(dispatch),
                ChaosEvent::EngineStall { dispatch, ms } => chaos.stalls.push((dispatch, ms)),
                ChaosEvent::TornWrite { reply } => chaos.torn.push(reply),
                ChaosEvent::ConnectionDrop { reply } => chaos.drops.push(reply),
            }
        }
        chaos
    }

    /// Consumes the next dispatch ordinal and reports what to do.
    pub fn on_dispatch(&self) -> DispatchAction {
        let n = self.dispatch_ctr.fetch_add(1, Ordering::Relaxed);
        if self.panics.contains(&n) {
            self.injected[K_PANIC].fetch_add(1, Ordering::Relaxed);
            return DispatchAction::Panic;
        }
        if let Some(&(_, ms)) = self.stalls.iter().find(|&&(d, _)| d == n) {
            self.injected[K_STALL].fetch_add(1, Ordering::Relaxed);
            return DispatchAction::Stall { ms };
        }
        DispatchAction::Run
    }

    /// Consumes the next reply ordinal and reports what to do.
    pub fn on_reply(&self) -> ReplyAction {
        let n = self.reply_ctr.fetch_add(1, Ordering::Relaxed);
        if self.drops.contains(&n) {
            self.injected[K_DROP].fetch_add(1, Ordering::Relaxed);
            return ReplyAction::Drop;
        }
        if self.torn.contains(&n) {
            self.injected[K_TORN].fetch_add(1, Ordering::Relaxed);
            return ReplyAction::Tear;
        }
        ReplyAction::Deliver
    }

    /// Dispatch ordinals consumed so far.
    pub fn dispatches_seen(&self) -> u64 {
        self.dispatch_ctr.load(Ordering::Relaxed)
    }

    /// Reply ordinals consumed so far.
    pub fn replies_seen(&self) -> u64 {
        self.reply_ctr.load(Ordering::Relaxed)
    }

    /// Events that actually fired, as `(kind, count)` pairs in
    /// [`CHAOS_KINDS`] order.
    pub fn injected_counts(&self) -> [(&'static str, u64); 4] {
        [
            (
                CHAOS_KINDS[0],
                self.injected[K_PANIC].load(Ordering::Relaxed),
            ),
            (
                CHAOS_KINDS[1],
                self.injected[K_STALL].load(Ordering::Relaxed),
            ),
            (
                CHAOS_KINDS[2],
                self.injected[K_TORN].load(Ordering::Relaxed),
            ),
            (
                CHAOS_KINDS[3],
                self.injected[K_DROP].load(Ordering::Relaxed),
            ),
        ]
    }

    /// Connection drops that actually fired (the count client-side EOF
    /// outcomes must match exactly under the serving invariant).
    pub fn drops_injected(&self) -> u64 {
        self.injected[K_DROP].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_inert() {
        let plan = ChaosPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        let chaos = ServeChaos::new(&plan);
        for _ in 0..16 {
            assert_eq!(chaos.on_dispatch(), DispatchAction::Run);
            assert_eq!(chaos.on_reply(), ReplyAction::Deliver);
        }
        assert!(chaos.injected_counts().iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let rates = ChaosRates {
            engine_panics: 2,
            engine_stalls: 2,
            torn_writes: 3,
            connection_drops: 2,
        };
        let domain = ChaosDomain {
            dispatches: 32,
            replies: 64,
            max_stall_ms: 25,
        };
        let a = ChaosPlan::random(42, rates, domain);
        let b = ChaosPlan::random(42, rates, domain);
        let c = ChaosPlan::random(43, rates, domain);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn random_respects_zeroed_domain_axes() {
        let rates = ChaosRates {
            engine_panics: 3,
            torn_writes: 3,
            ..ChaosRates::default()
        };
        let domain = ChaosDomain {
            dispatches: 8,
            replies: 0,
            max_stall_ms: 10,
        };
        let plan = ChaosPlan::random(7, rates, domain);
        assert_eq!(plan.len(), 3);
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e, ChaosEvent::EnginePanic { .. })));
    }

    #[test]
    fn stall_durations_stay_in_bounds() {
        let rates = ChaosRates {
            engine_stalls: 50,
            ..ChaosRates::default()
        };
        let domain = ChaosDomain {
            dispatches: 100,
            replies: 0,
            max_stall_ms: 25,
        };
        let plan = ChaosPlan::random(11, rates, domain);
        for event in plan.events() {
            match *event {
                ChaosEvent::EngineStall { ms, .. } => assert!((1..=25).contains(&ms)),
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn ordinals_fire_exactly_once_each() {
        let plan = ChaosPlan::new()
            .with(ChaosEvent::EnginePanic { dispatch: 1 })
            .with(ChaosEvent::EngineStall { dispatch: 3, ms: 5 })
            .with(ChaosEvent::ConnectionDrop { reply: 0 })
            .with(ChaosEvent::TornWrite { reply: 2 });
        let chaos = ServeChaos::new(&plan);
        let dispatches: Vec<DispatchAction> = (0..5).map(|_| chaos.on_dispatch()).collect();
        assert_eq!(
            dispatches,
            vec![
                DispatchAction::Run,
                DispatchAction::Panic,
                DispatchAction::Run,
                DispatchAction::Stall { ms: 5 },
                DispatchAction::Run,
            ]
        );
        let replies: Vec<ReplyAction> = (0..4).map(|_| chaos.on_reply()).collect();
        assert_eq!(
            replies,
            vec![
                ReplyAction::Drop,
                ReplyAction::Deliver,
                ReplyAction::Tear,
                ReplyAction::Deliver,
            ]
        );
        assert_eq!(chaos.dispatches_seen(), 5);
        assert_eq!(chaos.replies_seen(), 4);
        assert_eq!(chaos.drops_injected(), 1);
        let counts = chaos.injected_counts();
        assert_eq!(counts[0], ("engine_panic", 1));
        assert_eq!(counts[1], ("engine_stall", 1));
        assert_eq!(counts[2], ("torn_write", 1));
        assert_eq!(counts[3], ("connection_drop", 1));
    }

    #[test]
    fn panic_beats_stall_and_drop_beats_tear_on_shared_ordinals() {
        let plan = ChaosPlan::new()
            .with(ChaosEvent::EngineStall { dispatch: 0, ms: 9 })
            .with(ChaosEvent::EnginePanic { dispatch: 0 })
            .with(ChaosEvent::TornWrite { reply: 0 })
            .with(ChaosEvent::ConnectionDrop { reply: 0 });
        let chaos = ServeChaos::new(&plan);
        assert_eq!(chaos.on_dispatch(), DispatchAction::Panic);
        assert_eq!(chaos.on_reply(), ReplyAction::Drop);
    }
}
