//! The workspace-wide typed error.
//!
//! Public API boundaries across the stack return `Result<_, SdpError>`
//! from their `try_*` entry points; the panicking convenience wrappers
//! format these errors, so the messages here deliberately contain the
//! exact phrases the original `assert!` sites used (and that the
//! `#[should_panic(expected = ...)]` regression tests pin).

use std::fmt;

/// A typed error for malformed inputs and failed recovery across the
/// systolic stack.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdpError {
    /// A linear array was built with zero PEs.
    EmptyArray,
    /// A mesh was built with a zero dimension.
    MeshDims {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// A mesh was given the wrong number of PEs for its shape.
    PeCount {
        /// `rows * cols`.
        expected: usize,
        /// PEs actually supplied.
        got: usize,
    },
    /// A token bus was built with zero stations.
    EmptyBus,
    /// A design driver was given an empty matrix string.
    EmptyMatrixString,
    /// A matrix string has fewer matrices than the formulation needs.
    StringTooShort {
        /// Matrices supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// An interior matrix of the string is not square of the common size.
    NotSquare {
        /// Index of the offending matrix in the string.
        index: usize,
        /// Expected side `m`.
        m: usize,
    },
    /// A matrix product was requested with mismatched inner dimensions.
    InnerDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A multistage-graph stage has the wrong number of node values.
    WrongStageWidth {
        /// Stage index.
        stage: usize,
        /// Expected width `m`.
        m: usize,
        /// Values actually supplied.
        got: usize,
    },
    /// A DAG schedule was requested for a cyclic dependency graph.
    CyclicDag,
    /// A DAG task references a dependency index outside the task list.
    DepOutOfRange {
        /// Task holding the bad dependency.
        task: usize,
        /// The out-of-range dependency index.
        dep: usize,
        /// Number of tasks in the list.
        len: usize,
    },
    /// A scheduler was given zero matrices.
    NoMatrices,
    /// A scheduler was given zero arrays.
    NoArrays,
    /// A random-generation cost range is empty (`lo > hi`).
    EmptyRange {
        /// Lower bound supplied.
        lo: i64,
        /// Upper bound supplied.
        hi: i64,
    },
    /// A numeric parameter is below its documented minimum.
    BadParameter {
        /// Parameter name as it appears in the API.
        name: &'static str,
        /// Value supplied.
        got: u64,
        /// Minimum accepted value.
        min: u64,
    },
    /// A worker task panicked (or was killed by fault injection) and
    /// could not be recovered within the retry budget.
    TaskPanicked {
        /// Task index that kept failing.
        task: u64,
        /// Recovery attempts that were made before giving up.
        attempts: u32,
    },
    /// An instance of a batched run has a different shape from the
    /// batch's first instance (batched pipelining requires uniform
    /// shapes so every instance follows the same schedule).
    BatchShapeMismatch {
        /// Index of the offending instance.
        index: usize,
    },
    /// A batched run was given zero instances.
    EmptyBatch,
    /// An alignment operand contains a symbol outside the scoring
    /// scheme's alphabet.
    SymbolOutOfRange {
        /// Byte offset of the offending symbol within its operand.
        index: usize,
        /// The symbol itself.
        symbol: u8,
        /// Alphabet size the scoring matrix covers (symbols `0..alphabet`).
        alphabet: u8,
    },
    /// Redundant replicas disagreed with no majority to vote with.
    NoMajority,
    /// Recompute-on-mismatch never saw two consecutive agreeing runs
    /// within its retry budget.
    RecoveryExhausted {
        /// Total runs performed.
        attempts: u32,
    },
    /// A serving request could not be decoded (bad JSON, missing or
    /// ill-typed fields, unknown request kind).
    MalformedRequest {
        /// Human-readable decode failure.
        reason: String,
    },
    /// A serving request line exceeded the configured payload limit.
    PayloadTooLarge {
        /// Bytes received before the server gave up.
        bytes: usize,
        /// Configured per-request limit.
        limit: usize,
    },
    /// The admission queue is full; the request was rejected for
    /// backpressure rather than queued unboundedly.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown,
    /// A request's deadline expired before an engine produced its
    /// answer; the job was discarded without burning engine work.
    DeadlineExceeded {
        /// Milliseconds the request had waited when it was expired.
        waited_ms: u64,
        /// The deadline the request carried (client-supplied or the
        /// server default).
        deadline_ms: u64,
    },
    /// The admission queue is above its shed threshold; the request was
    /// shed pre-emptively so queued work keeps meeting its deadlines.
    Overloaded {
        /// Suggested client back-off before retrying.
        retry_after_ms: u64,
    },
    /// The circuit breaker for this engine class is open (the engine
    /// has been failing) and no degraded fallback applied.
    CircuitOpen {
        /// Milliseconds until the breaker will admit a probe.
        retry_after_ms: u64,
    },
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SdpError::EmptyArray => write!(f, "a systolic array needs at least one PE"),
            SdpError::MeshDims { rows, cols } => {
                write!(f, "mesh dimensions must be positive (got {rows}x{cols})")
            }
            SdpError::PeCount { expected, got } => {
                write!(f, "need rows*cols PEs (expected {expected}, got {got})")
            }
            SdpError::EmptyBus => write!(f, "bus needs at least one station"),
            SdpError::EmptyMatrixString => write!(f, "empty matrix string"),
            SdpError::StringTooShort { got, need } => {
                write!(f, "matrix string too short (got {got}, need at least {need})")
            }
            SdpError::NotSquare { index, m } => {
                write!(f, "interior matrices must be m x m (matrix {index}, m = {m})")
            }
            SdpError::InnerDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "inner dimensions must agree (left has {left_cols} cols, right has {right_rows} rows)"
            ),
            SdpError::WrongStageWidth { stage, m, got } => {
                write!(f, "stage {stage} must have m = {m} values (got {got})")
            }
            SdpError::CyclicDag => write!(f, "cyclic dependency graph"),
            SdpError::DepOutOfRange { task, dep, len } => write!(
                f,
                "dependency index out of range (task {task} depends on {dep}, list has {len})"
            ),
            SdpError::NoMatrices => write!(f, "need at least one matrix"),
            SdpError::NoArrays => write!(f, "need at least one array"),
            SdpError::EmptyRange { lo, hi } => {
                write!(f, "cost range is empty (lo = {lo} > hi = {hi})")
            }
            SdpError::BadParameter { name, got, min } => {
                write!(f, "parameter {name} must be at least {min} (got {got})")
            }
            SdpError::TaskPanicked { task, attempts } => {
                write!(f, "task {task} panicked and stayed faulty after {attempts} attempts")
            }
            SdpError::BatchShapeMismatch { index } => {
                write!(f, "batch instance {index} has a different shape from instance 0")
            }
            SdpError::EmptyBatch => write!(f, "batch needs at least one instance"),
            SdpError::SymbolOutOfRange {
                index,
                symbol,
                alphabet,
            } => write!(
                f,
                "symbol {symbol} at offset {index} is outside the scoring alphabet (size {alphabet})"
            ),
            SdpError::NoMajority => write!(f, "redundant replicas disagree with no majority"),
            SdpError::RecoveryExhausted { attempts } => {
                write!(f, "recovery exhausted after {attempts} attempts")
            }
            SdpError::MalformedRequest { ref reason } => {
                write!(f, "malformed request: {reason}")
            }
            SdpError::PayloadTooLarge { bytes, limit } => {
                write!(f, "payload too large ({bytes} bytes, limit {limit})")
            }
            SdpError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth})")
            }
            SdpError::ShuttingDown => write!(f, "server is shutting down"),
            SdpError::DeadlineExceeded {
                waited_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded (waited {waited_ms} ms, deadline {deadline_ms} ms)"
            ),
            SdpError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            SdpError::CircuitOpen { retry_after_ms } => {
                write!(f, "engine circuit open, retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for SdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_preserve_legacy_panic_phrases() {
        // The panicking wrappers format these errors; the substrings
        // below are pinned by pre-existing #[should_panic] tests.
        let cases: Vec<(SdpError, &str)> = vec![
            (SdpError::EmptyArray, "at least one PE"),
            (
                SdpError::MeshDims { rows: 0, cols: 3 },
                "mesh dimensions must be positive",
            ),
            (
                SdpError::PeCount {
                    expected: 4,
                    got: 1,
                },
                "rows*cols",
            ),
            (SdpError::EmptyBus, "at least one station"),
            (SdpError::EmptyMatrixString, "empty matrix string"),
            (SdpError::StringTooShort { got: 1, need: 2 }, "too short"),
            (SdpError::NotSquare { index: 1, m: 3 }, "m x m"),
            (
                SdpError::InnerDimMismatch {
                    left_cols: 2,
                    right_rows: 3,
                },
                "inner dimensions",
            ),
            (
                SdpError::WrongStageWidth {
                    stage: 1,
                    m: 3,
                    got: 2,
                },
                "must have m",
            ),
            (SdpError::CyclicDag, "cyclic"),
            (SdpError::NoMatrices, "need at least one matrix"),
            (SdpError::NoArrays, "need at least one array"),
        ];
        for (err, phrase) in cases {
            let msg = err.to_string();
            assert!(msg.contains(phrase), "{msg:?} should contain {phrase:?}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(SdpError::CyclicDag);
        assert_eq!(err.to_string(), "cyclic dependency graph");
    }
}
