//! Deterministic, seed-driven fault plans.
//!
//! A [`FaultPlan`] is an explicit list of failures to inject into a run.
//! Plans are plain data: the same plan replayed against the same
//! simulation produces bit-identical behaviour, which is what makes
//! degradation sweeps and golden-file CI checks possible.  Plans are
//! either built fault-by-fault (for targeted tests) or drawn from a
//! seeded generator ([`FaultPlan::random`]) for rate sweeps.

use sdp_trace::FaultKind;

/// One failure to inject, in 1985 VLSI terms.
///
/// Indices are *ordinals within one run*: `cycle` counts array clock
/// cycles, `word` counts bus words driven, `rotation` counts token
/// advances, `task` counts scheduled tasks — all from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Flip `bit` of the first word PE `pe` emits at or after `cycle`
    /// (a transient alpha-particle upset; fires exactly once).
    TransientFlip {
        /// Target PE index.
        pe: u32,
        /// Earliest cycle the flip may fire.
        cycle: u64,
        /// Bit position to flip in the word's payload.
        bit: u32,
    },
    /// From `cycle` on, every word PE `pe` emits has its payload stuck
    /// at `value` (a permanent stuck-at fault in the output latch).
    StuckAt {
        /// Target PE index.
        pe: u32,
        /// First cycle the latch is stuck.
        cycle: u64,
        /// The value the latch is stuck at.
        value: i64,
    },
    /// The `word`-th word driven on the shared bus never arrives.
    DropBusWord {
        /// Bus-word ordinal (0-based, counted per run).
        word: u64,
    },
    /// The `word`-th bus word is delivered with `bit` flipped.
    CorruptBusWord {
        /// Bus-word ordinal (0-based, counted per run).
        word: u64,
        /// Bit position to flip in the word's payload.
        bit: u32,
    },
    /// The `rotation`-th token advance is lost: the word is delivered
    /// but the circulating token stays put.
    LoseTokenRotation {
        /// Token-rotation ordinal (0-based, counted per run).
        rotation: u64,
    },
    /// The worker executing scheduled task `task` dies (panics) instead
    /// of producing its result.
    KillWorker {
        /// Global task ordinal (0-based, counted per run).
        task: u64,
    },
}

impl Fault {
    /// The trace-level class of this fault.
    pub fn kind(self) -> FaultKind {
        match self {
            Fault::TransientFlip { .. } => FaultKind::TransientFlip,
            Fault::StuckAt { .. } => FaultKind::StuckAt,
            Fault::DropBusWord { .. } => FaultKind::DroppedBusWord,
            Fault::CorruptBusWord { .. } => FaultKind::CorruptBusWord,
            Fault::LoseTokenRotation { .. } => FaultKind::LostToken,
            Fault::KillWorker { .. } => FaultKind::WorkerDeath,
        }
    }
}

/// The extent of one run, used to place randomly drawn faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDomain {
    /// Number of PEs fault sites may target.
    pub pes: u32,
    /// Clock-cycle horizon of the run.
    pub cycles: u64,
    /// Expected number of bus words (0 disables bus faults).
    pub bus_words: u64,
    /// Expected number of token rotations (0 disables token faults).
    pub rotations: u64,
    /// Expected number of scheduled tasks (0 disables worker faults).
    pub tasks: u64,
}

/// Per-class fault counts for [`FaultPlan::random`].
///
/// Counts, not probabilities: a degradation sweep asks for "3 transient
/// flips and 1 stuck PE over this run", which keeps plans exactly
/// reproducible for a given seed regardless of run length.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Transient single-bit flips to place.
    pub transient_flips: u32,
    /// Stuck-at PE faults to place.
    pub stuck_at: u32,
    /// Bus words to drop.
    pub dropped_bus_words: u32,
    /// Bus words to corrupt.
    pub corrupt_bus_words: u32,
    /// Token rotations to lose.
    pub lost_tokens: u32,
    /// Workers to kill.
    pub worker_deaths: u32,
}

/// A deterministic list of failures to inject into one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: injecting it is the identity (property-tested).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit fault list.
    pub fn from_faults(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Adds one fault in place.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The planned faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Draws a plan from a seeded generator: `rates` faults of each
    /// class, placed uniformly over `domain`.  The same `(seed, rates,
    /// domain)` triple always yields the same plan — this is what the
    /// `degradation` experiment and its golden-file CI check rely on.
    pub fn random(seed: u64, rates: FaultRates, domain: FaultDomain) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::new();
        if domain.pes > 0 && domain.cycles > 0 {
            for _ in 0..rates.transient_flips {
                faults.push(Fault::TransientFlip {
                    pe: rng.below(domain.pes as u64) as u32,
                    cycle: rng.below(domain.cycles),
                    bit: rng.below(16) as u32,
                });
            }
            for _ in 0..rates.stuck_at {
                faults.push(Fault::StuckAt {
                    pe: rng.below(domain.pes as u64) as u32,
                    cycle: rng.below(domain.cycles),
                    value: rng.below(1 << 10) as i64,
                });
            }
        }
        if domain.bus_words > 0 {
            for _ in 0..rates.dropped_bus_words {
                faults.push(Fault::DropBusWord {
                    word: rng.below(domain.bus_words),
                });
            }
            for _ in 0..rates.corrupt_bus_words {
                faults.push(Fault::CorruptBusWord {
                    word: rng.below(domain.bus_words),
                    bit: rng.below(16) as u32,
                });
            }
        }
        if domain.rotations > 0 {
            for _ in 0..rates.lost_tokens {
                faults.push(Fault::LoseTokenRotation {
                    rotation: rng.below(domain.rotations),
                });
            }
        }
        if domain.tasks > 0 {
            for _ in 0..rates.worker_deaths {
                faults.push(Fault::KillWorker {
                    task: rng.below(domain.tasks),
                });
            }
        }
        FaultPlan { faults }
    }
}

/// SplitMix64: the minimal deterministic generator used for fault
/// placement (seeds map to the same plan on every platform).  Shared
/// with the serving-level chaos planner in [`crate::chaos`].
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (bound > 0).
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.faults(), &[]);
    }

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .with(Fault::DropBusWord { word: 3 })
            .with(Fault::KillWorker { task: 1 });
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.faults()[0], Fault::DropBusWord { word: 3 });
        assert_eq!(plan.faults()[1].kind(), sdp_trace::FaultKind::WorkerDeath);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let rates = FaultRates {
            transient_flips: 2,
            stuck_at: 1,
            dropped_bus_words: 1,
            corrupt_bus_words: 1,
            lost_tokens: 1,
            worker_deaths: 1,
        };
        let domain = FaultDomain {
            pes: 8,
            cycles: 100,
            bus_words: 50,
            rotations: 50,
            tasks: 10,
        };
        let a = FaultPlan::random(42, rates, domain);
        let b = FaultPlan::random(42, rates, domain);
        let c = FaultPlan::random(43, rates, domain);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn random_respects_zeroed_domain_axes() {
        let rates = FaultRates {
            transient_flips: 5,
            dropped_bus_words: 5,
            worker_deaths: 5,
            ..FaultRates::default()
        };
        let domain = FaultDomain {
            pes: 4,
            cycles: 10,
            ..FaultDomain::default()
        };
        let plan = FaultPlan::random(7, rates, domain);
        // Bus and task axes are disabled; only PE faults appear.
        assert_eq!(plan.len(), 5);
        assert!(plan
            .faults()
            .iter()
            .all(|f| matches!(f, Fault::TransientFlip { .. })));
    }
}
