//! Detection and recovery combinators.
//!
//! Two classical schemes, both panic-safe (a replica that dies counts
//! as a faulty replica, it does not take the host down):
//!
//! * [`recompute_on_mismatch`] — duplex execution with retry.  Two runs
//!   are compared; on mismatch the computation is re-run until two
//!   *consecutive* runs agree.  Catches transient upsets (a one-shot
//!   fault fires in one run and not the next) but, like any duplex
//!   scheme, cannot out-vote a fault that corrupts every run the same
//!   way.
//! * [`tmr`] — triple modular redundancy.  Three replicas run and the
//!   majority value wins, so any *single* faulty replica — including a
//!   permanent stuck-at — is masked.
//!
//! Both report what happened through [`RecoveryStats`], the same struct
//! the fault-tolerant `ParallelExecutor` fills in, so degradation
//! experiments read one shape everywhere.

use crate::error::SdpError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What detection and recovery cost during one protected computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Complete runs (replicas or attempts) executed.
    pub runs: u32,
    /// Result comparisons that disagreed (each is a detected fault).
    pub mismatches: u32,
    /// Replica runs that panicked and were contained.
    pub panics_caught: u32,
    /// Extra runs beyond the fault-free minimum.
    pub retries: u32,
    /// Tasks re-executed on another worker after a death.
    pub reassignments: u32,
    /// Worker deaths observed (injected or real panics).
    pub worker_deaths: u32,
    /// Scheduler rounds a fault-free run would have needed (Eq. 29).
    pub baseline_rounds: u64,
    /// Scheduler rounds actually executed.
    pub actual_rounds: u64,
    /// Extra clock cycles spent relative to the fault-free run
    /// (e.g. the longer pipeline through a spare column).
    pub extra_cycles: u64,
}

impl RecoveryStats {
    /// Schedule-length inflation vs. the fault-free bound
    /// (`actual_rounds / baseline_rounds`; 1.0 when nothing failed or
    /// no rounds were tracked).
    pub fn schedule_inflation(&self) -> f64 {
        if self.baseline_rounds == 0 {
            1.0
        } else {
            self.actual_rounds as f64 / self.baseline_rounds as f64
        }
    }

    /// True when any fault was detected or contained.
    pub fn any_faults(&self) -> bool {
        self.mismatches > 0
            || self.panics_caught > 0
            || self.worker_deaths > 0
            || self.reassignments > 0
    }
}

/// Majority vote over three replica results.
///
/// Returns the value at least two replicas agree on, or
/// [`SdpError::NoMajority`] when all three differ.
pub fn tmr_vote<T: PartialEq>(a: T, b: T, c: T) -> Result<T, SdpError> {
    if a == b || a == c {
        Ok(a)
    } else if b == c {
        Ok(b)
    } else {
        Err(SdpError::NoMajority)
    }
}

/// Triple-modular-redundancy execution: runs `run(0)`, `run(1)`,
/// `run(2)` (each contained by `catch_unwind`) and majority-votes the
/// results.  Any single faulty replica — wrong value or outright panic
/// — is masked; the replica index lets callers wire fault injection
/// into exactly one replica.
pub fn tmr<T: PartialEq + Clone>(
    mut run: impl FnMut(u32) -> T,
) -> (Result<T, SdpError>, RecoveryStats) {
    let mut stats = RecoveryStats::default();
    let mut results: Vec<Option<T>> = Vec::with_capacity(3);
    for replica in 0..3u32 {
        stats.runs += 1;
        match catch_unwind(AssertUnwindSafe(|| run(replica))) {
            Ok(v) => results.push(Some(v)),
            Err(_) => {
                stats.panics_caught += 1;
                results.push(None);
            }
        }
    }
    let ok: Vec<&T> = results.iter().flatten().collect();
    let disagreement = ok.windows(2).any(|w| w[0] != w[1]);
    if disagreement || stats.panics_caught > 0 {
        stats.mismatches += 1;
    }
    // Majority among the surviving replicas.
    let winner = ok
        .iter()
        .find(|candidate| ok.iter().filter(|other| other == candidate).count() >= 2)
        .map(|v| (*v).clone());
    (winner.ok_or(SdpError::NoMajority), stats)
}

/// Duplex execution with bounded retry: re-runs `run` until two
/// consecutive attempts agree, up to `2 + max_retries` total runs.
/// A panicking attempt is contained and treated as a mismatch.
///
/// The attempt index is passed to `run` so callers can inject faults
/// into chosen attempts.  Returns
/// [`SdpError::RecoveryExhausted`] when agreement is never reached.
pub fn recompute_on_mismatch<T: PartialEq>(
    max_retries: u32,
    mut run: impl FnMut(u32) -> T,
) -> (Result<T, SdpError>, RecoveryStats) {
    let mut stats = RecoveryStats::default();
    let budget = 2 + max_retries;
    let mut prev: Option<T> = None;
    for attempt in 0..budget {
        stats.runs += 1;
        if attempt >= 2 {
            stats.retries += 1;
        }
        let current = match catch_unwind(AssertUnwindSafe(|| run(attempt))) {
            Ok(v) => Some(v),
            Err(_) => {
                stats.panics_caught += 1;
                None
            }
        };
        // Matching by value makes the invariant type-level: the
        // agreement arm owns `c`, so "two consecutive runs agree but
        // there is no result to return" cannot even be written.
        prev = match (prev, current) {
            (Some(p), Some(c)) if p == c => {
                return (Ok(c), stats);
            }
            (None, Some(c)) => Some(c),
            (_, current) => {
                // Disagreement with the previous attempt (or a panic):
                // a fault was detected; keep the newest result.
                stats.mismatches += 1;
                current
            }
        };
    }
    (
        Err(SdpError::RecoveryExhausted {
            attempts: stats.runs,
        }),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_masks_one_bad_replica() {
        assert_eq!(tmr_vote(7, 7, 9), Ok(7));
        assert_eq!(tmr_vote(9, 7, 7), Ok(7));
        assert_eq!(tmr_vote(7, 9, 7), Ok(7));
        assert_eq!(tmr_vote(1, 2, 3), Err(SdpError::NoMajority));
    }

    #[test]
    fn tmr_masks_wrong_value_and_panic() {
        let (v, s) = tmr(|replica| if replica == 1 { 999 } else { 42 });
        assert_eq!(v, Ok(42));
        assert_eq!(s.runs, 3);
        assert_eq!(s.mismatches, 1);

        let (v, s) = tmr(|replica| {
            if replica == 2 {
                panic!("injected death");
            }
            42
        });
        assert_eq!(v, Ok(42));
        assert_eq!(s.panics_caught, 1);
    }

    #[test]
    fn tmr_clean_run_has_no_mismatches() {
        let (v, s) = tmr(|_| 5u64);
        assert_eq!(v, Ok(5));
        assert_eq!(s.mismatches, 0);
        assert!(!s.any_faults());
    }

    #[test]
    fn recompute_recovers_transient() {
        // Attempt 0 is corrupted; attempts 1 and 2 agree.
        let (v, s) = recompute_on_mismatch(2, |attempt| if attempt == 0 { 13 } else { 42 });
        assert_eq!(v, Ok(42));
        assert_eq!(s.runs, 3);
        assert_eq!(s.mismatches, 1);
        assert_eq!(s.retries, 1);
    }

    #[test]
    fn recompute_clean_run_stops_at_two() {
        let (v, s) = recompute_on_mismatch(5, |_| 1u8);
        assert_eq!(v, Ok(1));
        assert_eq!(s.runs, 2);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn recompute_contains_panics() {
        let (v, s) = recompute_on_mismatch(2, |attempt| {
            if attempt == 0 {
                panic!("injected death");
            }
            7
        });
        assert_eq!(v, Ok(7));
        assert_eq!(s.panics_caught, 1);
    }

    #[test]
    fn recompute_exhausts_on_persistent_disagreement() {
        let (v, s) = recompute_on_mismatch(1, |attempt| attempt);
        assert_eq!(v, Err(SdpError::RecoveryExhausted { attempts: 3 }));
        assert_eq!(s.runs, 3);
    }

    #[test]
    fn recompute_exhausts_at_zero_retry_budget() {
        // The tightest budget: two runs, no retries.  Disagreement must
        // surface as the typed error, never as a panic.
        let (v, s) = recompute_on_mismatch(0, |attempt| attempt);
        assert_eq!(v, Err(SdpError::RecoveryExhausted { attempts: 2 }));
        assert_eq!(s.runs, 2);
        assert_eq!(s.retries, 0);
        assert_eq!(s.mismatches, 1);
    }

    #[test]
    fn recompute_agreement_on_final_allowed_attempt_succeeds() {
        // Budget 2 + 1 = 3 runs; attempts 1 and 2 agree, so the very
        // last permitted run converts an about-to-exhaust loop into Ok.
        let (v, s) = recompute_on_mismatch(1, |attempt| if attempt == 0 { 99 } else { 7 });
        assert_eq!(v, Ok(7));
        assert_eq!(s.runs, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.mismatches, 1);
    }

    #[test]
    fn recompute_all_panicking_attempts_exhaust_with_typed_error() {
        let (v, s) = recompute_on_mismatch(1, |_| -> u32 { panic!("every attempt dies") });
        assert_eq!(v, Err(SdpError::RecoveryExhausted { attempts: 3 }));
        assert_eq!(s.panics_caught, 3);
        assert_eq!(s.mismatches, 3);
    }

    #[test]
    fn inflation_is_ratio_of_rounds() {
        let s = RecoveryStats {
            baseline_rounds: 4,
            actual_rounds: 6,
            ..RecoveryStats::default()
        };
        assert!((s.schedule_inflation() - 1.5).abs() < 1e-12);
        assert!((RecoveryStats::default().schedule_inflation() - 1.0).abs() < 1e-12);
    }
}
