//! AND/OR-side conformance hooks: the chain DP, the generated AND/OR
//! graphs, and the BST instance are checked against the oracle's
//! interval DP and its from-scratch AND/OR evaluation semantics.

use proptest::proptest;
use proptest::rng::TestRng;
use proptest::strategy::Strategy;
use sdp_oracle::strategies::ChainDimsStrategy;
use sdp_oracle::{diff, reference};

struct FreqStrategy;
impl Strategy for FreqStrategy {
    type Value = Vec<u64>;
    fn sample(&self, rng: &mut TestRng) -> Vec<u64> {
        let n = 1 + rng.below(7) as usize;
        (0..n).map(|_| 1 + rng.below(10)).collect()
    }
}

proptest! {
    #[test]
    fn chains_match_oracle_on_sampled_dims(dims in ChainDimsStrategy) {
        diff::check_chain("andor sampled", &dims);
    }

    #[test]
    fn bst_matches_oracle_on_sampled_freqs(freq in FreqStrategy) {
        diff::check_bst("andor sampled", &freq);
    }

    #[test]
    fn andor_evaluation_matches_oracle_semantics(dims in ChainDimsStrategy) {
        let chain = sdp_andor::chain::build_chain_andor(&dims);
        let got = chain.graph.evaluate_node(chain.root);
        assert!(reference::weq(
            reference::andor_eval_ref(&chain.graph, chain.root),
            got
        ));
    }
}
