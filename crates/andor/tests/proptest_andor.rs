//! Property tests for AND/OR graph construction and transforms.

use proptest::prelude::*;
use sdp_andor::chain::{build_chain_andor, chain_brute_force, matrix_chain_order};
use sdp_andor::nonserial::TernaryChain;
use sdp_andor::partition::{build_partition_graph, u_p_closed_form};
use sdp_andor::serialize::serialize;
use sdp_multistage::solve;
use sdp_semiring::{Cost, Matrix, MinPlus};

fn dims_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..20, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_dp_matches_brute_force(dims in dims_strategy()) {
        prop_assert_eq!(matrix_chain_order(&dims).cost, chain_brute_force(&dims));
    }

    #[test]
    fn chain_andor_evaluates_to_dp_cost(dims in dims_strategy()) {
        let c = build_chain_andor(&dims);
        prop_assert_eq!(
            c.graph.evaluate_node(c.root),
            matrix_chain_order(&dims).cost
        );
    }

    #[test]
    fn serialization_preserves_root_value(dims in dims_strategy()) {
        let c = build_chain_andor(&dims);
        let want = c.graph.evaluate_node(c.root);
        let s = serialize(&c.graph);
        prop_assert!(s.graph.is_serial());
        prop_assert_eq!(s.graph.evaluate(&|_| None)[s.id_map[c.root]], want);
    }

    #[test]
    fn multiply_tree_total_flops_equals_cost(dims in dims_strategy()) {
        let s = matrix_chain_order(&dims);
        if dims.len() > 2 {
            let (tasks, _) = s.multiply_tree(&dims);
            let total: u64 = tasks.iter().map(|t| t.2).sum();
            prop_assert_eq!(Cost::from(total as i64), s.cost);
            prop_assert_eq!(tasks.len(), dims.len() - 2);
        }
    }

    #[test]
    fn partition_graph_count_matches_eq32(
        q in 1u32..4, m in 1usize..4, p in 2usize..4
    ) {
        let n = p.pow(q);
        if n <= 16 && m.pow(p as u32 + 1) * n <= 4000 {
            let pg = build_partition_graph(n, m, p);
            prop_assert_eq!(
                pg.node_count(),
                u_p_closed_form(n as u64, m as u64, p as u64)
            );
        }
    }

    #[test]
    fn partition_evaluation_equals_string_product(
        q in 1u32..4, m in 1usize..4, seed in 0u64..100
    ) {
        let n = 2usize.pow(q);
        let pg = build_partition_graph(n, m, 2);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 40) as i64
        };
        let mats: Vec<Matrix<MinPlus>> = (0..n)
            .map(|_| Matrix::from_fn(m, m, |_, _| MinPlus::from(next())))
            .collect();
        prop_assert_eq!(pg.evaluate_on(&mats), Matrix::string_product(&mats));
    }

    #[test]
    fn ternary_elimination_equals_brute_force(
        sizes in proptest::collection::vec(1usize..4, 3..6),
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 30) % 13) as i64
        };
        let domains: Vec<Vec<i64>> = sizes
            .iter()
            .map(|&s| (0..s).map(|_| next()).collect())
            .collect();
        let t = TernaryChain::uniform(domains, |a, b, c| {
            Cost::from((a - b).abs() + (b + c).abs())
        });
        let (bf, _) = t.brute_force();
        let (elim, steps) = t.eliminate();
        prop_assert_eq!(elim, bf);
        prop_assert_eq!(steps, t.eq40_steps());
    }

    #[test]
    fn grouping_transform_equals_elimination(
        sizes in proptest::collection::vec(1usize..4, 3..6),
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_add(3);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((state >> 31) % 9) as i64
        };
        let domains: Vec<Vec<i64>> = sizes
            .iter()
            .map(|&s| (0..s).map(|_| next()).collect())
            .collect();
        let t = TernaryChain::uniform(domains, |a, b, c| {
            Cost::from((a * b - c).abs())
        });
        let serial = t.group_to_serial();
        let dp = solve::forward_dp(&serial);
        let (elim, _) = t.eliminate();
        prop_assert_eq!(dp.cost, elim);
    }
}
