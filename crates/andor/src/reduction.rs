//! Optimal stage-reduction ordering for *irregular* multistage graphs —
//! the "secondary optimization problem" (§4 end, §5 end; the paper's
//! references \[4\], \[6\]).
//!
//! When stage widths differ, the order in which intermediate stages are
//! eliminated (equivalently: the order in which the cost matrices are
//! multiplied) changes the operation count.  Finding the best order *is*
//! the matrix-chain problem over the stage widths: eliminating stages of
//! an `(S)`-stage graph with widths `m₀ … m_{S−1}` costs exactly what
//! multiplying matrices with dimensions `m₀×m₁, m₁×m₂, …` costs.  This
//! module ties the two together: it computes the optimal order, executes
//! the reduction over the actual min-plus matrices in that order, and
//! quantifies the saving against the naive left-to-right sweep — plus the
//! Theorem 2 corollary that pairwise (2-arc) elimination beats any wider
//! grouping.

use crate::chain::{matrix_chain_order, ChainSolution};
use sdp_multistage::MultistageGraph;
use sdp_semiring::{Matrix, MinPlus};

/// The reduction plan for an irregular multistage graph.
#[derive(Clone, Debug)]
pub struct ReductionPlan {
    /// The underlying chain solution over the stage widths.
    pub chain: ChainSolution,
    /// Scalar-operation count of the optimal order.
    pub optimal_ops: u64,
    /// Scalar-operation count of the naive left-to-right order.
    pub naive_ops: u64,
}

impl ReductionPlan {
    /// The saving factor `naive / optimal` (≥ 1).
    pub fn saving(&self) -> f64 {
        if self.optimal_ops == 0 {
            1.0
        } else {
            self.naive_ops as f64 / self.optimal_ops as f64
        }
    }
}

/// Computes the optimal reduction plan for `g`'s stage widths.
pub fn plan(g: &MultistageGraph) -> ReductionPlan {
    let widths: Vec<u64> = (0..g.num_stages())
        .map(|s| g.stage_size(s) as u64)
        .collect();
    plan_for_widths(&widths)
}

/// Computes the plan directly from stage widths `m₀ … m_{S−1}`.
pub fn plan_for_widths(widths: &[u64]) -> ReductionPlan {
    assert!(widths.len() >= 2, "need at least two stages");
    let chain = matrix_chain_order(widths);
    let optimal_ops = chain.cost.finite().expect("finite chain cost") as u64;
    // naive: (((M1 M2) M3) ...) left fold
    let mut naive_ops = 0u64;
    for j in 2..widths.len() {
        naive_ops += widths[0] * widths[j - 1] * widths[j];
    }
    ReductionPlan {
        chain,
        optimal_ops,
        naive_ops,
    }
}

/// Executes the reduction of `g` to a single cost matrix following the
/// plan's optimal order; also returns the scalar-operation count actually
/// spent, which must equal [`ReductionPlan::optimal_ops`].
pub fn execute(g: &MultistageGraph, p: &ReductionPlan) -> (Matrix<MinPlus>, u64) {
    fn rec(
        mats: &[Matrix<MinPlus>],
        split: &[Vec<usize>],
        i: usize,
        j: usize,
        ops: &mut u64,
    ) -> Matrix<MinPlus> {
        if i == j {
            return mats[i].clone();
        }
        let k = split[i][j];
        let l = rec(mats, split, i, k, ops);
        let r = rec(mats, split, k + 1, j, ops);
        *ops += (l.rows() * l.cols() * r.cols()) as u64;
        l.mul(&r)
    }
    let mats = g.matrix_string();
    assert_eq!(mats.len(), p.chain.n, "plan built for a different graph");
    let mut ops = 0u64;
    let result = rec(mats, &p.chain.split, 0, mats.len() - 1, &mut ops);
    (result, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_semiring::Cost;

    /// An irregular graph with stage widths chosen so the naive order is
    /// clearly suboptimal (big middle stage).
    fn irregular(widths: &[usize]) -> MultistageGraph {
        let mats = widths
            .windows(2)
            .enumerate()
            .map(|(s, w)| {
                Matrix::from_fn(w[0], w[1], |i, j| {
                    MinPlus(Cost::from(((s + 1) * (i + 2) + 3 * j) as i64 % 17))
                })
            })
            .collect();
        MultistageGraph::new(mats)
    }

    #[test]
    fn executed_ops_match_plan() {
        for widths in [&[2usize, 8, 3, 9, 2][..], &[5, 1, 5, 1, 5], &[3, 3, 3]] {
            let g = irregular(widths);
            let p = plan(&g);
            let (_, ops) = execute(&g, &p);
            assert_eq!(ops, p.optimal_ops, "{widths:?}");
        }
    }

    #[test]
    fn optimal_order_preserves_the_product() {
        let g = irregular(&[2, 8, 3, 9, 2]);
        let p = plan(&g);
        let (reduced, _) = execute(&g, &p);
        assert_eq!(reduced, Matrix::string_product(g.matrix_string()));
    }

    #[test]
    fn saving_exists_for_skewed_widths() {
        // widths 1,100,1,100,1: naive folds left cheaply (1x100 * 100x1
        // first is actually good) — craft the reverse: big first.
        let p = plan_for_widths(&[100, 2, 100, 2, 100]);
        assert!(p.saving() >= 1.0);
        let q = plan_for_widths(&[2, 100, 2, 100, 2]);
        assert!(q.optimal_ops <= q.naive_ops);
    }

    #[test]
    fn uniform_widths_are_order_insensitive_in_ops() {
        // all m×m: every order costs (S-2)·m³.
        let p = plan_for_widths(&[4, 4, 4, 4, 4]);
        assert_eq!(p.optimal_ops, p.naive_ops);
        assert_eq!(p.optimal_ops, 3 * 64);
    }

    #[test]
    fn known_chain_instance() {
        let p = plan_for_widths(&[30, 35, 15, 5, 10, 20, 25]);
        assert_eq!(p.optimal_ops, 15125);
        assert_eq!(
            p.naive_ops,
            30 * 35 * 15 + 30 * 15 * 5 + 30 * 5 * 10 + 30 * 10 * 20 + 30 * 20 * 25
        );
        // naive = 40500, optimal = 15125 -> ~2.68x saving
        assert!(p.saving() > 2.5);
    }

    #[test]
    fn two_stage_graph_needs_no_ops() {
        let p = plan_for_widths(&[3, 7]);
        assert_eq!(p.optimal_ops, 0);
        assert_eq!(p.naive_ops, 0);
        assert_eq!(p.saving(), 1.0);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn plan_graph_mismatch_rejected() {
        let g1 = irregular(&[2, 3, 2]);
        let g2 = irregular(&[2, 3, 4, 2]);
        let p = plan(&g1);
        let _ = execute(&g2, &p);
    }
}
