//! Polyadic-nonserial exemplars: matrix-chain ordering (Eq. 6, Fig. 2)
//! and the optimal binary search tree.
//!
//! Finding the minimum-cost order of multiplying a string of matrices is
//! the paper's running example of a polyadic-**nonserial** formulation:
//! its AND/OR-graph (Fig. 2) necessarily has arcs that skip levels.  The
//! same problem is also the *secondary optimization problem* of §4 — once
//! solved, the multiply tree can be executed as a dataflow graph.

use crate::graph::{AndOrGraph, NodeId};
use sdp_fault::SdpError;
use sdp_semiring::Cost;

/// Saturating `r_{i-1}·r_k·r_j` as a finite [`Cost`] — chain products of
/// large dimensions can exceed the i64 range, and a wrapped cast would
/// silently corrupt the minimization.
fn triple_product_cost(a: u64, b: u64, c: u64) -> Cost {
    Cost::saturating_from_u64(a.saturating_mul(b).saturating_mul(c))
}

/// One node of the multiply tree: `(left_child, right_child, flops)`,
/// where children index into the task list and `None` marks a leaf
/// (input matrix) operand.
pub type MultiplyTask = (Option<usize>, Option<usize>, u64);

/// Solution of a chain-structured polyadic DP.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainSolution {
    /// Optimal total cost (`m_{1,N}` in Eq. 6).
    pub cost: Cost,
    /// `split[i][j]` = the `k` splitting `[i..=j]` optimally (i < j).
    pub split: Vec<Vec<usize>>,
    /// Number of matrices (or keys) `N`.
    pub n: usize,
}

impl ChainSolution {
    /// Reconstructs the optimal parenthesization as a nested string,
    /// e.g. `((M1 M2) (M3 M4))`.
    ///
    /// Only valid for solutions with *exclusive* chain splits
    /// (`split[i][j] < j`), i.e. those from [`matrix_chain_order`];
    /// [`optimal_bst`] solutions use inclusive root indices and are
    /// rejected with a panic rather than looping forever.
    pub fn parenthesization(&self) -> String {
        fn rec(split: &[Vec<usize>], i: usize, j: usize, out: &mut String) {
            if i == j {
                out.push_str(&format!("M{}", i + 1));
                return;
            }
            let k = split[i][j];
            assert!(
                (i..j).contains(&k),
                "split[{i}][{j}] = {k} is not an exclusive chain split; \
                 BST root tables cannot be parenthesized this way"
            );
            out.push('(');
            rec(split, i, k, out);
            out.push(' ');
            rec(split, k + 1, j, out);
            out.push(')');
        }
        let mut s = String::new();
        rec(&self.split, 0, self.n - 1, &mut s);
        s
    }

    /// The multiply tree as a dependency DAG in post-order:
    /// returns `(tasks, root)`, where each task is
    /// `(left_child, right_child, flops)` with children indices into the
    /// task list (`None` = leaf matrix).  Used to execute the chain as a
    /// dataflow graph (§4 end).
    ///
    /// Panics for `n = 1` (a single matrix needs no multiplication and
    /// has no task to point a root at) and for BST-style inclusive split
    /// tables.
    pub fn multiply_tree(&self, dims: &[u64]) -> (Vec<MultiplyTask>, usize) {
        assert_eq!(dims.len(), self.n + 1);
        assert!(
            self.n >= 2,
            "multiply_tree needs at least two matrices (n = {})",
            self.n
        );
        let mut tasks = Vec::new();
        let root = self.emit(dims, 0, self.n - 1, &mut tasks);
        (tasks, root.expect("n >= 2 produces at least one task"))
    }

    fn emit(
        &self,
        dims: &[u64],
        i: usize,
        j: usize,
        tasks: &mut Vec<MultiplyTask>,
    ) -> Option<usize> {
        if i == j {
            return None; // leaf matrix, no work
        }
        let k = self.split[i][j];
        assert!(
            (i..j).contains(&k),
            "split[{i}][{j}] = {k} is not an exclusive chain split"
        );
        let l = self.emit(dims, i, k, tasks);
        let r = self.emit(dims, k + 1, j, tasks);
        let flops = dims[i]
            .saturating_mul(dims[k + 1])
            .saturating_mul(dims[j + 1]);
        tasks.push((l, r, flops));
        Some(tasks.len() - 1)
    }
}

/// Matrix-chain order DP (Eq. 6): `dims` is `r₀ … r_N`, so matrix `Mᵢ`
/// is `r_{i-1} × r_i`; returns the optimal scalar-multiplication count and
/// split table.
///
/// ```
/// use sdp_andor::chain::matrix_chain_order;
/// let sol = matrix_chain_order(&[30, 35, 15, 5, 10, 20, 25]);
/// assert_eq!(sol.cost, sdp_semiring::Cost::from(15125));
/// assert_eq!(sol.parenthesization(), "((M1 (M2 M3)) ((M4 M5) M6))");
/// ```
pub fn matrix_chain_order(dims: &[u64]) -> ChainSolution {
    assert!(dims.len() >= 2, "need at least one matrix");
    assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
    let n = dims.len() - 1;
    let mut cost = vec![vec![Cost::ZERO; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut best = Cost::INF;
            let mut arg = i;
            for k in i..j {
                let c = cost[i][k]
                    + cost[k + 1][j]
                    + triple_product_cost(dims[i], dims[k + 1], dims[j + 1]);
                if c < best {
                    best = c;
                    arg = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = arg;
        }
    }
    ChainSolution {
        cost: cost[0][n - 1],
        split,
        n,
    }
}

/// Non-panicking [`matrix_chain_order`]: `dims` must hold at least two
/// entries (one matrix) and every dimension must be positive.
pub fn try_matrix_chain_order(dims: &[u64]) -> Result<ChainSolution, SdpError> {
    if dims.len() < 2 {
        return Err(SdpError::BadParameter {
            name: "dims.len()",
            got: dims.len() as u64,
            min: 2,
        });
    }
    if let Some(&bad) = dims.iter().find(|&&d| d == 0) {
        return Err(SdpError::BadParameter {
            name: "dims[i]",
            got: bad,
            min: 1,
        });
    }
    Ok(matrix_chain_order(dims))
}

/// Brute-force chain cost by enumerating all parenthesizations
/// (Catalan-many; oracle for small `n`).
pub fn chain_brute_force(dims: &[u64]) -> Cost {
    fn rec(dims: &[u64], i: usize, j: usize) -> Cost {
        if i == j {
            return Cost::ZERO;
        }
        let mut best = Cost::INF;
        for k in i..j {
            let c = rec(dims, i, k)
                + rec(dims, k + 1, j)
                + triple_product_cost(dims[i], dims[k + 1], dims[j + 1]);
            best = best.min(c);
        }
        best
    }
    assert!(dims.len() >= 2);
    rec(dims, 0, dims.len() - 2)
}

/// The AND/OR-graph of the matrix-chain problem (Fig. 2 for `n = 4`):
/// one OR-node per subchain `m_{i,j}` (i < j), whose children are AND-nodes
/// (one per split `k`) carrying local cost `r_{i-1}·r_k·r_j`, each pointing
/// at the operand subchains.  Leaves are the trivial `m_{i,i} = 0`.
///
/// Returns the graph and the OR/leaf id of each subchain `[i][j]`.
pub struct ChainAndOr {
    /// The underlying AND/OR graph.
    pub graph: AndOrGraph,
    /// `ids[i][j]` = node id of subchain `m_{i+1, j+1}` (0-based).
    pub ids: Vec<Vec<Option<NodeId>>>,
    /// Root id (`m_{1,N}`).
    pub root: NodeId,
}

/// Builds the Fig. 2 AND/OR graph for `dims` (`r₀ … r_N`).
///
/// Levels: subchain length ℓ occupies OR-level `2(ℓ−1)` with its AND
/// children at level `2(ℓ−1) − 1`; leaves sit at level 0.  Arcs from an
/// AND-node to a short subchain (e.g. `m_{4,4}` from the top in Fig. 2)
/// skip levels — this graph is *nonserial*, which
/// [`crate::serialize::serialize`] repairs.
pub fn build_chain_andor(dims: &[u64]) -> ChainAndOr {
    assert!(dims.len() >= 2);
    let n = dims.len() - 1;
    let mut g = AndOrGraph::new();
    let mut ids: Vec<Vec<Option<NodeId>>> = vec![vec![None; n]; n];
    for (i, row) in ids.iter_mut().enumerate() {
        row[i] = Some(g.add_leaf(0, Cost::ZERO));
    }
    for len in 2..=n {
        let or_level = 2 * (len - 1);
        let and_level = or_level - 1;
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut alts = Vec::with_capacity(len - 1);
            for k in i..j {
                let local = triple_product_cost(dims[i], dims[k + 1], dims[j + 1]);
                let l = ids[i][k].unwrap();
                let r = ids[k + 1][j].unwrap();
                alts.push(g.add_and(and_level, vec![l, r], local));
            }
            ids[i][j] = Some(g.add_or(or_level, alts));
        }
    }
    let root = ids[0][n - 1].unwrap();
    ChainAndOr {
        graph: g,
        ids,
        root,
    }
}

/// Non-panicking [`optimal_bst`]: `freq` must name at least one key.
pub fn try_optimal_bst(freq: &[u64]) -> Result<ChainSolution, SdpError> {
    if freq.is_empty() {
        return Err(SdpError::BadParameter {
            name: "freq.len()",
            got: 0,
            min: 1,
        });
    }
    Ok(optimal_bst(freq))
}

/// Optimal binary search tree DP (the other polyadic problem the paper
/// names in §2.1): `freq[i]` is the access frequency of key `i`; returns
/// the minimal weighted comparison cost and the root-split table.
pub fn optimal_bst(freq: &[u64]) -> ChainSolution {
    assert!(!freq.is_empty(), "need at least one key");
    let n = freq.len();
    // prefix sums for O(1) range weight
    let mut pre = vec![0u64; n + 1];
    for (i, &f) in freq.iter().enumerate() {
        pre[i + 1] = pre[i] + f;
    }
    let weight = |i: usize, j: usize| (pre[j + 1] - pre[i]) as i64;
    let mut cost = vec![vec![Cost::ZERO; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for i in 0..n {
        cost[i][i] = Cost::from(freq[i] as i64);
        split[i][i] = i;
    }
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut best = Cost::INF;
            let mut arg = i;
            for r in i..=j {
                let left = if r > i { cost[i][r - 1] } else { Cost::ZERO };
                let right = if r < j { cost[r + 1][j] } else { Cost::ZERO };
                let c = left + right + Cost::from(weight(i, j));
                if c < best {
                    best = c;
                    arg = r;
                }
            }
            cost[i][j] = best;
            split[i][j] = arg;
        }
    }
    ChainSolution {
        cost: cost[0][n - 1],
        split,
        n,
    }
}

/// Brute-force optimal BST (oracle for small `n`).
pub fn bst_brute_force(freq: &[u64]) -> Cost {
    fn rec(freq: &[u64], i: usize, j: usize) -> Cost {
        if i > j {
            return Cost::ZERO;
        }
        let w: i64 = freq[i..=j].iter().map(|&f| f as i64).sum();
        let mut best = Cost::INF;
        for r in i..=j {
            let left = if r > i {
                rec(freq, i, r - 1)
            } else {
                Cost::ZERO
            };
            let right = rec(freq, r + 1, j);
            best = best.min(left + right + Cost::from(w));
        }
        best
    }
    rec(freq, 0, freq.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn clrs_example() {
        // Classic CLRS instance: dims 30,35,15,5,10,20,25 -> 15125.
        let s = matrix_chain_order(&[30, 35, 15, 5, 10, 20, 25]);
        assert_eq!(s.cost, Cost::from(15125));
        assert_eq!(s.parenthesization(), "((M1 (M2 M3)) ((M4 M5) M6))");
    }

    #[test]
    fn single_matrix_costs_zero() {
        let s = matrix_chain_order(&[7, 3]);
        assert_eq!(s.cost, Cost::ZERO);
        assert_eq!(s.parenthesization(), "M1");
    }

    #[test]
    fn two_matrices_forced_order() {
        let s = matrix_chain_order(&[2, 3, 4]);
        assert_eq!(s.cost, Cost::from(24));
    }

    #[test]
    fn dp_matches_brute_force() {
        let cases: &[&[u64]] = &[
            &[5, 4, 6, 2, 7],
            &[10, 20, 30, 40, 30],
            &[1, 2, 3, 4, 5, 6],
            &[40, 20, 30, 10, 30],
        ];
        for dims in cases {
            assert_eq!(
                matrix_chain_order(dims).cost,
                chain_brute_force(dims),
                "{dims:?}"
            );
        }
    }

    #[test]
    fn fig2_structure_n4() {
        // Fig. 2: four matrices -> 6 OR-class nodes (2 leaves-of-length-1
        // excluded): OR nodes for (1,2),(2,3),(3,4),(1,3),(2,4),(1,4).
        let c = build_chain_andor(&[2, 3, 4, 5, 6]);
        assert_eq!(c.graph.count_kind(NodeKind::Leaf), 4); // m_{i,i}
        assert_eq!(c.graph.count_kind(NodeKind::Or), 6);
        // AND nodes: one per (i,j,k): lengths 2,2,2 (1 split each) +
        // lengths 3,3 (2 splits each) + length 4 (3 splits) = 3+4+3 = 10.
        assert_eq!(c.graph.count_kind(NodeKind::And), 10);
        // The top OR has 3 AND alternatives ("achieved in three ways").
        assert_eq!(c.graph.node(c.root).children.len(), 3);
    }

    #[test]
    fn fig2_graph_is_nonserial() {
        let c = build_chain_andor(&[2, 3, 4, 5, 6]);
        assert!(!c.graph.is_serial());
        assert!(!c.graph.nonserial_arcs().is_empty());
    }

    #[test]
    fn andor_evaluation_equals_dp() {
        for dims in [
            vec![30, 35, 15, 5, 10, 20, 25],
            vec![5, 4, 6, 2, 7],
            vec![2, 3, 4],
            vec![3, 7],
        ] {
            let c = build_chain_andor(&dims);
            let val = c.graph.evaluate_node(c.root);
            assert_eq!(val, matrix_chain_order(&dims).cost, "{dims:?}");
        }
    }

    #[test]
    fn multiply_tree_flops_sum_to_cost() {
        let dims = [30u64, 35, 15, 5, 10, 20, 25];
        let s = matrix_chain_order(&dims);
        let (tasks, root) = s.multiply_tree(&dims);
        assert_eq!(tasks.len(), 6 - 1);
        assert_eq!(root, tasks.len() - 1);
        let total: u64 = tasks.iter().map(|t| t.2).sum();
        assert_eq!(Cost::from(total as i64), s.cost);
    }

    #[test]
    fn bst_small_known() {
        // freq {34, 8, 50}: optimal BST rooted at key 2 (0-indexed)?
        // cost = 34*2 + 8*3 + 50*1 ... enumerate via brute force instead.
        let freq = [34u64, 8, 50];
        assert_eq!(optimal_bst(&freq).cost, bst_brute_force(&freq));
    }

    #[test]
    fn bst_matches_brute_force_many() {
        let cases: &[&[u64]] = &[
            &[1],
            &[3, 1],
            &[25, 10, 20],
            &[4, 2, 6, 3],
            &[10, 10, 10, 10, 10],
            &[1, 100, 1, 100, 1],
        ];
        for freq in cases {
            assert_eq!(optimal_bst(freq).cost, bst_brute_force(freq), "{freq:?}");
        }
    }

    #[test]
    fn bst_single_key() {
        let s = optimal_bst(&[42]);
        assert_eq!(s.cost, Cost::from(42));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = matrix_chain_order(&[3, 0, 2]);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert_eq!(
            try_matrix_chain_order(&[30, 35, 15, 5, 10, 20, 25]).unwrap(),
            matrix_chain_order(&[30, 35, 15, 5, 10, 20, 25])
        );
        assert_eq!(
            try_matrix_chain_order(&[3, 0, 2]),
            Err(SdpError::BadParameter {
                name: "dims[i]",
                got: 0,
                min: 1
            })
        );
        assert_eq!(
            try_matrix_chain_order(&[7]),
            Err(SdpError::BadParameter {
                name: "dims.len()",
                got: 1,
                min: 2
            })
        );
        assert_eq!(
            try_optimal_bst(&[4, 2, 6]).unwrap(),
            optimal_bst(&[4, 2, 6])
        );
        assert_eq!(
            try_optimal_bst(&[]),
            Err(SdpError::BadParameter {
                name: "freq.len()",
                got: 0,
                min: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "exclusive chain split")]
    fn bst_split_table_rejected_by_parenthesization() {
        // optimal_bst stores inclusive root indices; using them as chain
        // splits must fail loudly instead of recursing forever.
        let sol = optimal_bst(&[1, 100]);
        let _ = sol.parenthesization();
    }

    #[test]
    #[should_panic(expected = "at least two matrices")]
    fn multiply_tree_single_matrix_rejected() {
        let _ = matrix_chain_order(&[7, 3]).multiply_tree(&[7, 3]);
    }

    #[test]
    fn huge_dimensions_saturate_instead_of_wrapping() {
        // 2.1e6^3 overflows i64; the cost must clamp at MAX_FINITE, not
        // wrap negative and corrupt the minimization.
        let big = 2_100_000u64;
        let sol = matrix_chain_order(&[big, big, big, big]);
        assert!(sol.cost > Cost::ZERO);
        assert!(sol.cost.is_finite());
        assert_eq!(sol.cost, Cost::MAX_FINITE);
    }
}
