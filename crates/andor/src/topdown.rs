//! Top-down AND/OR-graph search with memoization.
//!
//! §5 cites Martelli–Montanari's top-down and bottom-up search algorithms
//! for additive AND/OR graphs and Nilsson's `AO*`.  The bottom-up
//! breadth-first evaluator lives in [`crate::graph`]; this module is the
//! *top-down* counterpart: start from a goal node, recursively expand
//! children, memoize solved subproblems (the Principle of Optimality),
//! and — unlike the bottom-up sweep — **only touch nodes reachable from
//! the goal**.  It also extracts the minimal-cost *solution tree* (the
//! chosen alternative at every OR-node), which is how the optimal policy
//! itself is read out of a polyadic DP.

use crate::graph::{AndOrGraph, NodeId, NodeKind};
use sdp_semiring::Cost;

/// The outcome of a top-down search.
#[derive(Clone, Debug, PartialEq)]
pub struct TopDownSolution {
    /// Value of the goal node.
    pub cost: Cost,
    /// Nodes actually expanded (memoized once each).
    pub expanded: usize,
    /// For each expanded OR-node: the child chosen by the minimal-cost
    /// solution tree (`None` when every alternative is `INF`).
    pub choice: Vec<Option<NodeId>>,
    /// Per-node memoized values (`INF` for unexpanded nodes).
    pub value: Vec<Cost>,
}

impl TopDownSolution {
    /// Walks the solution tree from `goal`, returning the node ids of the
    /// minimal-cost solution tree in preorder (AND-nodes include all
    /// children; OR-nodes only the chosen alternative).
    pub fn solution_tree(&self, g: &AndOrGraph, goal: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![goal];
        while let Some(id) = stack.pop() {
            out.push(id);
            match g.node(id).kind {
                NodeKind::Leaf => {}
                NodeKind::And => stack.extend(g.node(id).children.iter().copied()),
                NodeKind::Or => {
                    if let Some(c) = self.choice[id] {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }
}

/// Searches `g` top-down from `goal` with memoization.
///
/// `leaf_override` may substitute leaf values exactly as in
/// [`AndOrGraph::evaluate`]; results agree with the bottom-up sweep on
/// the reachable subgraph.
pub fn search(
    g: &AndOrGraph,
    goal: NodeId,
    leaf_override: &dyn Fn(NodeId) -> Option<Cost>,
) -> TopDownSolution {
    let mut value = vec![Cost::INF; g.len()];
    let mut solved = vec![false; g.len()];
    let mut choice: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut expanded = 0usize;

    // Explicit stack to avoid recursion limits on deep graphs.
    // Frame = (node, children_resolved?).
    let mut stack: Vec<(NodeId, bool)> = vec![(goal, false)];
    while let Some((id, ready)) = stack.pop() {
        if solved[id] {
            continue;
        }
        let node = g.node(id);
        if !ready {
            match node.kind {
                NodeKind::Leaf => {
                    value[id] = leaf_override(id).unwrap_or(node.leaf_value);
                    solved[id] = true;
                    expanded += 1;
                }
                _ => {
                    stack.push((id, true));
                    for &c in &node.children {
                        if !solved[c] {
                            stack.push((c, false));
                        }
                    }
                }
            }
        } else {
            expanded += 1;
            match node.kind {
                NodeKind::Leaf => unreachable!("leaves resolve immediately"),
                NodeKind::And => {
                    value[id] = node
                        .children
                        .iter()
                        .map(|&c| value[c])
                        .fold(node.local_cost, |a, b| a + b);
                }
                NodeKind::Or => {
                    let mut best = Cost::INF;
                    let mut arg = None;
                    for &c in &node.children {
                        if value[c] < best {
                            best = value[c];
                            arg = Some(c);
                        }
                    }
                    value[id] = best;
                    choice[id] = arg;
                }
            }
            solved[id] = true;
        }
    }
    TopDownSolution {
        cost: value[goal],
        expanded,
        choice,
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{build_chain_andor, matrix_chain_order};
    use crate::partition::build_partition_graph;

    #[test]
    fn agrees_with_bottom_up_on_chain_graphs() {
        for dims in [
            vec![30u64, 35, 15, 5, 10, 20, 25],
            vec![5, 4, 6, 2, 7],
            vec![2, 3, 4],
        ] {
            let c = build_chain_andor(&dims);
            let bu = c.graph.evaluate_node(c.root);
            let td = search(&c.graph, c.root, &|_| None);
            assert_eq!(td.cost, bu, "{dims:?}");
        }
    }

    #[test]
    fn expands_only_reachable_nodes() {
        // Searching one root of a partition graph must not expand nodes
        // private to other (i, j) roots' subtrees beyond shared ones.
        let pg = build_partition_graph(4, 2, 2);
        let goal = pg.roots[0][0];
        let td = search(&pg.graph, goal, &|_| None);
        assert!(td.expanded < pg.graph.len(), "expanded everything");
        assert!(td.expanded > 0);
    }

    #[test]
    fn solution_tree_is_consistent() {
        let dims = [30u64, 35, 15, 5, 10, 20, 25];
        let c = build_chain_andor(&dims);
        let td = search(&c.graph, c.root, &|_| None);
        let tree = td.solution_tree(&c.graph, c.root);
        // Tree contains the goal, and every OR choice's value matches.
        assert_eq!(tree[0], c.root);
        for &id in &tree {
            if let Some(ch) = td.choice[id] {
                assert_eq!(td.value[id], td.value[ch]);
            }
        }
        // Re-derive the cost by summing local costs of AND nodes in the
        // solution tree (leaves are zero for the chain problem).
        use crate::graph::NodeKind;
        let local_sum: Cost = tree
            .iter()
            .filter(|&&id| c.graph.node(id).kind == NodeKind::And)
            .map(|&id| c.graph.node(id).local_cost)
            .sum();
        assert_eq!(local_sum, matrix_chain_order(&dims).cost);
    }

    #[test]
    fn leaf_override_respected() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(5));
        let b = g.add_leaf(0, Cost::from(9));
        let root = g.add_or(1, vec![a, b]);
        let td = search(&g, root, &|id| (id == a).then(|| Cost::from(100)));
        assert_eq!(td.cost, Cost::from(9));
        assert_eq!(td.choice[root], Some(b));
    }

    #[test]
    fn all_inf_alternatives_yield_none_choice() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::INF);
        let root = g.add_or(1, vec![a]);
        let td = search(&g, root, &|_| None);
        assert_eq!(td.cost, Cost::INF);
        assert_eq!(td.choice[root], None);
    }

    #[test]
    fn shared_subproblems_expand_once() {
        // Diamond: two AND parents over the same OR child.
        let mut g = AndOrGraph::new();
        let x = g.add_leaf(0, Cost::from(3));
        let shared = g.add_or(1, vec![x]);
        let p1 = g.add_and(2, vec![shared], Cost::from(1));
        let p2 = g.add_and(2, vec![shared], Cost::from(2));
        let root = g.add_or(3, vec![p1, p2]);
        let td = search(&g, root, &|_| None);
        assert_eq!(td.cost, Cost::from(4));
        // nodes: x, shared, p1, p2, root = 5 expansions exactly
        assert_eq!(td.expanded, 5);
    }
}
