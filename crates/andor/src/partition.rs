//! Regular `p`-partition AND/OR graphs for polyadic-serial DP (§5).
//!
//! An `(N+1)`-stage graph (`N = p^Q` cost matrices, `m` nodes per stage)
//! is reduced to a single stage by repeatedly collapsing groups of `p`
//! consecutive cost matrices into one.  Each collapse is an AND/OR layer:
//! for every output pair `(i, j)` there is one OR-node with `m^{p-1}`
//! branches (one per combination of intermediate vertices), each an
//! AND-node with `p` branches summing the group's sub-costs (Fig. 7).
//!
//! Theorem 2 proves the binary partition `p = 2` minimizes the total node
//! count `u(p)` (Eq. 32); [`u_p_closed_form`] is that formula and
//! [`PartitionGraph`] lets tests confirm the constructed graph matches it
//! exactly.

use crate::graph::{AndOrGraph, NodeId, NodeKind};
use sdp_semiring::{Cost, Matrix, MinPlus};

/// A materialized `p`-partition AND/OR graph over a string of `n`
/// `m × m` matrices.
pub struct PartitionGraph {
    /// The underlying AND/OR graph.
    pub graph: AndOrGraph,
    /// Leaf ids: `leaves[t][i][j]` is the leaf carrying `M_t[i][j]`.
    pub leaves: Vec<Vec<Vec<NodeId>>>,
    /// OR-node ids of the final reduced matrix: `roots[i][j]`.
    pub roots: Vec<Vec<NodeId>>,
    /// Parameters `(n, m, p)`.
    pub params: (usize, usize, usize),
}

/// Builds the regular `p`-partition AND/OR graph.  Requires `n` to be a
/// power of `p` (the paper's `N = p^Q`), `m ≥ 1`, `p ≥ 2`.
///
/// ```
/// use sdp_andor::partition::{build_partition_graph, u_p_closed_form};
/// let pg = build_partition_graph(4, 2, 2);
/// // The constructed graph's size matches Theorem 2's Eq. 32 exactly.
/// assert_eq!(pg.node_count(), u_p_closed_form(4, 2, 2));
/// ```
pub fn build_partition_graph(n: usize, m: usize, p: usize) -> PartitionGraph {
    assert!(p >= 2, "partition factor must be >= 2");
    assert!(m >= 1, "need at least one vertex per stage");
    assert!(is_power_of(n, p), "n = {n} must be a power of p = {p}");
    let mut g = AndOrGraph::new();

    // Level 0: one leaf per matrix element.
    let leaves: Vec<Vec<Vec<NodeId>>> = (0..n)
        .map(|_| {
            (0..m)
                .map(|_| (0..m).map(|_| g.add_leaf(0, Cost::ZERO)).collect())
                .collect()
        })
        .collect();

    // current[t][i][j] = node id of element (i,j) of the t-th live matrix
    let mut current: Vec<Vec<Vec<NodeId>>> = leaves.clone();
    let mut level = 0usize;
    while current.len() > 1 {
        let and_level = level + 1;
        let or_level = level + 2;
        let mut next = Vec::with_capacity(current.len() / p);
        for group in current.chunks(p) {
            debug_assert_eq!(group.len(), p);
            let mut out = vec![vec![0 as NodeId; m]; m];
            for (i, row) in out.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    // Enumerate all m^(p-1) intermediate-vertex combos.
                    let mut ors = Vec::with_capacity(m.pow(p as u32 - 1));
                    let mut combo = vec![0usize; p - 1];
                    loop {
                        // children: group[0][i][k0], group[1][k0][k1], …,
                        // group[p-1][k_{p-2}][j]
                        let mut children = Vec::with_capacity(p);
                        let mut prev = i;
                        for (t, &k) in combo.iter().enumerate() {
                            children.push(group[t][prev][k]);
                            prev = k;
                        }
                        children.push(group[p - 1][prev][j]);
                        ors.push(g.add_and(and_level, children, Cost::ZERO));
                        // advance combo counter
                        let mut c = 0;
                        loop {
                            if c == combo.len() {
                                break;
                            }
                            combo[c] += 1;
                            if combo[c] < m {
                                break;
                            }
                            combo[c] = 0;
                            c += 1;
                        }
                        if c == combo.len() {
                            break;
                        }
                    }
                    *slot = g.add_or(or_level, ors);
                }
            }
            next.push(out);
        }
        current = next;
        level = or_level;
    }

    PartitionGraph {
        roots: current.pop().unwrap(),
        graph: g,
        leaves,
        params: (n, m, p),
    }
}

fn is_power_of(mut n: usize, p: usize) -> bool {
    if n == 0 {
        return false;
    }
    while n.is_multiple_of(p) {
        n /= p;
    }
    n == 1
}

impl PartitionGraph {
    /// Evaluates the graph on concrete cost matrices (must match `(n, m)`),
    /// returning the reduced `m × m` optimal-cost matrix — equal to the
    /// min-plus string product of the inputs.
    pub fn evaluate_on(&self, mats: &[Matrix<MinPlus>]) -> Matrix<MinPlus> {
        let (n, m, _) = self.params;
        assert_eq!(mats.len(), n, "need exactly n matrices");
        for mat in mats {
            assert_eq!((mat.rows(), mat.cols()), (m, m), "matrices must be m x m");
        }
        // leaf id -> value lookup table
        let mut leaf_val = vec![None; self.graph.len()];
        for (t, grid) in self.leaves.iter().enumerate() {
            for (i, row) in grid.iter().enumerate() {
                for (j, &id) in row.iter().enumerate() {
                    leaf_val[id] = Some(mats[t].get(i, j).0);
                }
            }
        }
        let values = self.graph.evaluate(&|id| leaf_val[id]);
        Matrix::from_fn(m, m, |i, j| MinPlus(values[self.roots[i][j]]))
    }

    /// Measured total node count (leaves + AND + OR), the quantity `u(p)`
    /// of Theorem 2 (the paper counts level-0 inputs among the OR-nodes).
    pub fn node_count(&self) -> u64 {
        self.graph.len() as u64
    }

    /// Measured AND-node count.
    pub fn and_count(&self) -> u64 {
        self.graph.count_kind(NodeKind::And) as u64
    }

    /// Measured OR-node count *including* level-0 leaves, matching the
    /// paper's convention.
    pub fn or_count_with_leaves(&self) -> u64 {
        (self.graph.count_kind(NodeKind::Or) + self.graph.count_kind(NodeKind::Leaf)) as u64
    }
}

/// Theorem 2's closed form (Eq. 32):
///
/// `u(p) = (N−1)/(p−1) · m^{p+1} + (N·p−1)/(p−1) · m²`
///
/// Requires `n` to be a power of `p`.  Saturates on overflow.
pub fn u_p_closed_form(n: u64, m: u64, p: u64) -> u64 {
    assert!(p >= 2);
    let and_nodes = ((n - 1) / (p - 1)).saturating_mul(m.saturating_pow(p as u32 + 1));
    let or_nodes = ((n * p - 1) / (p - 1)).saturating_mul(m * m);
    and_nodes.saturating_add(or_nodes)
}

/// Comparison counts for reducing four stages (sizes `m₁ … m₄`) to two,
/// from the irregular-partition argument at the end of §5:
/// with a 3-arc AND-node, `m₁·m₂·m₃·m₄` comparisons are needed.
pub fn comparisons_3arc(m1: u64, m2: u64, m3: u64, m4: u64) -> u64 {
    m1 * m2 * m3 * m4
}

/// Binary elimination, stage 2 first: `m₁·m₃·(m₂ + m₄)` comparisons.
pub fn comparisons_2arc_stage2_first(m1: u64, m2: u64, m3: u64, m4: u64) -> u64 {
    m1 * m3 * (m2 + m4)
}

/// Binary elimination, stage 3 first: `m₂·m₄·(m₁ + m₃)` comparisons.
pub fn comparisons_2arc_stage3_first(m1: u64, m2: u64, m3: u64, m4: u64) -> u64 {
    m2 * m4 * (m1 + m3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_semiring::Matrix;

    fn rand_mats(seed: u64, n: usize, m: usize) -> Vec<Matrix<MinPlus>> {
        // simple LCG to avoid a rand dependency in unit tests
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 50) as i64
        };
        (0..n)
            .map(|_| Matrix::from_fn(m, m, |_, _| MinPlus::from(next())))
            .collect()
    }

    #[test]
    fn fig7_shape_m2_p2_n2() {
        // Reduction of a 3-stage graph (2 matrices) with m=2, p=2 — the
        // Fig. 7 example.  Leaves: 2·m² = 8; AND: m³ = 8; OR: m² = 4.
        let pg = build_partition_graph(2, 2, 2);
        assert_eq!(pg.graph.count_kind(NodeKind::Leaf), 8);
        assert_eq!(pg.and_count(), 8);
        assert_eq!(pg.graph.count_kind(NodeKind::Or), 4);
        // every AND node has p = 2 arcs; every OR node has m^{p-1} = 2
        for id in 0..pg.graph.len() {
            let n = pg.graph.node(id);
            match n.kind {
                NodeKind::And => assert_eq!(n.children.len(), 2),
                NodeKind::Or => assert_eq!(n.children.len(), 2),
                NodeKind::Leaf => {}
            }
        }
    }

    #[test]
    fn evaluation_equals_string_product() {
        for (n, m, p) in [
            (2, 2, 2),
            (4, 2, 2),
            (4, 3, 2),
            (8, 2, 2),
            (9, 2, 3),
            (4, 2, 4),
        ] {
            let pg = build_partition_graph(n, m, p);
            let mats = rand_mats((n * m * p) as u64, n, m);
            let got = pg.evaluate_on(&mats);
            let want = Matrix::string_product(&mats);
            assert_eq!(got, want, "n={n} m={m} p={p}");
        }
    }

    #[test]
    fn node_count_matches_eq32() {
        for (n, m, p) in [
            (2usize, 2usize, 2usize),
            (4, 2, 2),
            (8, 2, 2),
            (4, 3, 2),
            (9, 2, 3),
            (9, 3, 3),
            (16, 2, 4),
        ] {
            let pg = build_partition_graph(n, m, p);
            let measured = pg.node_count();
            let closed = u_p_closed_form(n as u64, m as u64, p as u64);
            assert_eq!(measured, closed, "n={n} m={m} p={p}");
        }
    }

    #[test]
    fn and_or_split_matches_paper_counts() {
        // N=4, m=2, p=2: AND = (N-1)/(p-1)·m³ = 3·8 = 24;
        // OR (incl leaves) = (N·p-1)/(p-1)·m² = 7·4 = 28.
        let pg = build_partition_graph(4, 2, 2);
        assert_eq!(pg.and_count(), 24);
        assert_eq!(pg.or_count_with_leaves(), 28);
    }

    #[test]
    fn binary_partition_minimizes_u() {
        // Theorem 2: u(p) is nondecreasing in p, strictly for m >= 3
        // (the paper's derivative condition: m >= 3 with p >= 2, or
        // m >= 2 with p >= 3).  At m = 2, u(2) == u(4) exactly.
        for m in 2u64..6 {
            let u2 = u_p_closed_form(64, m, 2);
            let u4 = u_p_closed_form(64, m, 4);
            let u8 = u_p_closed_form(64, m, 8);
            if m >= 3 {
                assert!(u2 < u4, "m={m}: u(2)={u2} !< u(4)={u4}");
            } else {
                assert!(u2 <= u4, "m={m}: u(2)={u2} > u(4)={u4}");
            }
            assert!(u4 < u8, "m={m}: u(4)={u4} !< u(8)={u8}");
        }
    }

    #[test]
    fn height_is_2_log_p_n() {
        let pg = build_partition_graph(8, 2, 2);
        assert_eq!(pg.graph.height(), 2 * 3); // 2·log2(8)
        let pg = build_partition_graph(9, 2, 3);
        assert_eq!(pg.graph.height(), 2 * 2); // 2·log3(9)
    }

    #[test]
    fn graph_is_serial_by_construction() {
        let pg = build_partition_graph(4, 2, 2);
        assert!(pg.graph.is_serial());
    }

    #[test]
    fn irregular_3arc_always_worse() {
        // §5 end: 3-arc needs more comparisons whenever all m_i >= 2.
        for m1 in 2u64..5 {
            for m2 in 2u64..5 {
                for m3 in 2u64..5 {
                    for m4 in 2u64..5 {
                        let three = comparisons_3arc(m1, m2, m3, m4);
                        let two = comparisons_2arc_stage2_first(m1, m2, m3, m4)
                            .min(comparisons_2arc_stage3_first(m1, m2, m3, m4));
                        assert!(
                            three >= two,
                            "({m1},{m2},{m3},{m4}): 3-arc {three} < 2-arc {two}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of")]
    fn non_power_rejected() {
        let _ = build_partition_graph(6, 2, 4);
    }

    #[test]
    fn single_matrix_chain_p2() {
        // n = 1 is p^0; graph is just the leaves (no reduction needed).
        let pg = build_partition_graph(1, 3, 2);
        assert_eq!(pg.and_count(), 0);
        let mats = rand_mats(5, 1, 3);
        assert_eq!(pg.evaluate_on(&mats), mats[0].clone());
    }
}
