//! AND/OR-graph representations of dynamic programming.
//!
//! Gensi–Montanari–Martelli showed (the paper's reference \[10\], \[21\]) that
//! a polyadic DP formulation is the search for a minimum-cost solution tree
//! in an AND/OR-graph: AND-nodes are subproblem *sums*, OR-nodes are
//! alternative *selections* (comparisons).  This crate builds those graphs
//! and the transformations the paper uses:
//!
//! * [`graph`] — the AND/OR graph data model with bottom-up breadth-first
//!   evaluation and seriality checks;
//! * [`partition`] — the regular `p`-partition AND/OR-graph of a multistage
//!   graph (§5, Fig. 7) and the node-count analysis of Theorem 2 (Eq. 32);
//! * [`chain`] — matrix-chain ordering (Eq. 6, Fig. 2) and the optimal
//!   binary search tree, the two polyadic-nonserial exemplars;
//! * [`nonserial`] — general nonserial objectives over discrete variables,
//!   interaction graphs, brute-force oracle, and the monadic-nonserial →
//!   serial transform by variable grouping (§6.1, Eqs. 36–41);
//! * [`serialize`] — the dummy-node transform that makes every arc connect
//!   adjacent levels (§6.2, Fig. 8), enabling planar systolic mapping;
//! * [`topdown`] — memoized top-down AND/OR search (Martelli–Montanari /
//!   AO*-style), the dual of the bottom-up evaluator, with solution-tree
//!   extraction;
//! * [`reduction`] — the "secondary optimization problem": the optimal
//!   stage-elimination order for irregular multistage graphs, solved as a
//!   matrix-chain problem over the stage widths (§4 end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod graph;
pub mod nonserial;
pub mod partition;
pub mod reduction;
pub mod serialize;
pub mod topdown;

pub use chain::{matrix_chain_order, optimal_bst, ChainSolution};
pub use graph::{AndOrGraph, NodeId, NodeKind};
pub use partition::{build_partition_graph, u_p_closed_form, PartitionGraph};
