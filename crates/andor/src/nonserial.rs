//! Nonserial optimization problems and the §6.1 serialization transform.
//!
//! A nonserial objective `f(X) = ⊕ᵢ gᵢ(Xⁱ)` (Eq. 5) lets terms share
//! variables arbitrarily.  The paper's recipe for the *monadic*-nonserial
//! case is to **group** primary variables into compound stage variables
//! until the interaction becomes serial (Eqs. 36–41), then solve on the
//! standard multistage machinery.  This module implements:
//!
//! * [`NonserialProblem`] — discrete variables, cost terms, interaction
//!   graph, seriality test, and a brute-force oracle;
//! * [`TernaryChain`] — the paper's worked example
//!   `Σ gᵢ(vᵢ, vᵢ₊₁, vᵢ₊₂)` (Eq. 36) with step-by-step variable
//!   elimination (Eq. 38), the step count of Eq. 40, and the grouping
//!   transform to an equivalent serial [`MultistageGraph`] (Eq. 41).

use sdp_multistage::MultistageGraph;
use sdp_semiring::{Cost, Matrix, MinPlus};
use std::collections::BTreeSet;

/// A boxed cost function over a term's scoped variable values.
pub type TermFn = Box<dyn Fn(&[i64]) -> Cost + Send + Sync>;

/// A boxed ternary cost function `g(vᵢ, vᵢ₊₁, vᵢ₊₂)`.
pub type TernaryFn = Box<dyn Fn(i64, i64, i64) -> Cost + Send + Sync>;

/// A cost term over a subset of variables.
pub struct Term {
    /// Indices of the variables in this term's scope, in argument order.
    pub vars: Vec<usize>,
    /// The term's cost as a function of the scoped variables' values.
    pub f: TermFn,
}

impl Term {
    /// Convenience constructor.
    pub fn new(vars: Vec<usize>, f: impl Fn(&[i64]) -> Cost + Send + Sync + 'static) -> Term {
        assert!(!vars.is_empty(), "a term needs at least one variable");
        Term {
            vars,
            f: Box::new(f),
        }
    }

    /// Evaluates the term under a full assignment.
    pub fn eval(&self, assignment: &[i64]) -> Cost {
        let args: Vec<i64> = self.vars.iter().map(|&v| assignment[v]).collect();
        (self.f)(&args)
    }
}

/// A discrete nonserial optimization problem (Eq. 5 with `⊕ = +`).
pub struct NonserialProblem {
    /// `domains[i]` = the quantized values variable `i` may take.
    pub domains: Vec<Vec<i64>>,
    /// The additive cost terms.
    pub terms: Vec<Term>,
}

impl NonserialProblem {
    /// Builds a problem; every variable must have a non-empty domain and
    /// every term must reference valid variables.
    pub fn new(domains: Vec<Vec<i64>>, terms: Vec<Term>) -> NonserialProblem {
        assert!(!domains.is_empty(), "need at least one variable");
        assert!(domains.iter().all(|d| !d.is_empty()), "empty domain");
        for t in &terms {
            assert!(
                t.vars.iter().all(|&v| v < domains.len()),
                "term references unknown variable"
            );
        }
        NonserialProblem { domains, terms }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Total objective under a full assignment.
    pub fn objective(&self, assignment: &[i64]) -> Cost {
        assert_eq!(assignment.len(), self.num_vars());
        self.terms.iter().map(|t| t.eval(assignment)).sum()
    }

    /// The interaction-graph edges: `{i, j}` whenever two variables share
    /// a term (§2.2's definition).
    pub fn interaction_edges(&self) -> BTreeSet<(usize, usize)> {
        interaction_edges(
            &self
                .terms
                .iter()
                .map(|t| t.vars.clone())
                .collect::<Vec<_>>(),
        )
    }

    /// True when the interaction graph is a simple path `0−1−…−(n−1)`,
    /// i.e. the problem is serial in the paper's sense.
    pub fn is_serial(&self) -> bool {
        is_serial_structure(self.num_vars(), &self.interaction_edges())
    }

    /// Exhaustive search (oracle): the optimal cost and one optimal
    /// assignment.  Exponential in the number of variables.
    pub fn brute_force(&self) -> (Cost, Vec<i64>) {
        let n = self.num_vars();
        let mut idx = vec![0usize; n];
        let mut best = (Cost::INF, vec![]);
        loop {
            let assignment: Vec<i64> = idx
                .iter()
                .enumerate()
                .map(|(v, &i)| self.domains[v][i])
                .collect();
            let c = self.objective(&assignment);
            if c < best.0 {
                best = (c, assignment);
            }
            // advance mixed-radix counter
            let mut k = 0;
            loop {
                if k == n {
                    return best;
                }
                idx[k] += 1;
                if idx[k] < self.domains[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

/// Interaction-graph edges induced by a set of term scopes.
pub fn interaction_edges(scopes: &[Vec<usize>]) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    for vars in scopes {
        for (a, &u) in vars.iter().enumerate() {
            for &v in &vars[a + 1..] {
                if u != v {
                    edges.insert((u.min(v), u.max(v)));
                }
            }
        }
    }
    edges
}

/// True when `edges` form exactly the path `0−1−…−(n−1)`.
pub fn is_serial_structure(n: usize, edges: &BTreeSet<(usize, usize)>) -> bool {
    if n == 1 {
        return true;
    }
    let want: BTreeSet<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    *edges == want
}

/// The §6.1 worked example: `f(V) = Σ_{i=1}^{N-2} gᵢ(vᵢ, vᵢ₊₁, vᵢ₊₂)`
/// (Eq. 36) — monadic-nonserial because each variable appears in up to
/// three terms.
pub struct TernaryChain {
    /// Per-variable quantized domains.
    pub domains: Vec<Vec<i64>>,
    /// `g[i]` is the term over `(vᵢ, vᵢ₊₁, vᵢ₊₂)` (0-based).
    pub g: Vec<TernaryFn>,
}

impl TernaryChain {
    /// Builds a ternary chain over `domains` with terms `g`.
    /// Needs `domains.len() >= 3` and `g.len() == domains.len() - 2`.
    pub fn new(domains: Vec<Vec<i64>>, g: Vec<TernaryFn>) -> TernaryChain {
        assert!(domains.len() >= 3, "ternary chain needs >= 3 variables");
        assert_eq!(g.len(), domains.len() - 2, "need N-2 terms");
        assert!(domains.iter().all(|d| !d.is_empty()), "empty domain");
        TernaryChain { domains, g }
    }

    /// A uniform chain where every term is the same function.
    pub fn uniform(
        domains: Vec<Vec<i64>>,
        g: impl Fn(i64, i64, i64) -> Cost + Send + Sync + Clone + 'static,
    ) -> TernaryChain {
        let n = domains.len();
        assert!(n >= 3);
        let terms: Vec<TernaryFn> = (0..n - 2)
            .map(|_| {
                let g = g.clone();
                Box::new(g) as TernaryFn
            })
            .collect();
        TernaryChain::new(domains, terms)
    }

    /// The term scopes, for interaction-graph and seriality analysis.
    pub fn scopes(&self) -> Vec<Vec<usize>> {
        (0..self.g.len()).map(|i| vec![i, i + 1, i + 2]).collect()
    }

    /// Interaction-graph edges of the chain (always contains the skip
    /// pairs `(i, i+2)`, which is why the formulation is nonserial).
    pub fn interaction_edges(&self) -> BTreeSet<(usize, usize)> {
        interaction_edges(&self.scopes())
    }

    /// Objective under a full assignment.
    pub fn objective(&self, a: &[i64]) -> Cost {
        assert_eq!(a.len(), self.domains.len());
        self.g
            .iter()
            .enumerate()
            .map(|(i, g)| g(a[i], a[i + 1], a[i + 2]))
            .sum()
    }

    /// Brute-force optimum (oracle).
    pub fn brute_force(&self) -> (Cost, Vec<i64>) {
        let n = self.domains.len();
        let mut idx = vec![0usize; n];
        let mut best = (Cost::INF, vec![]);
        loop {
            let assignment: Vec<i64> = idx
                .iter()
                .enumerate()
                .map(|(v, &i)| self.domains[v][i])
                .collect();
            let c = self.objective(&assignment);
            if c < best.0 {
                best = (c, assignment);
            }
            let mut k = 0;
            loop {
                if k == n {
                    return best;
                }
                idx[k] += 1;
                if idx[k] < self.domains[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    /// Step-by-step variable elimination (Eq. 38): eliminates
    /// `V₁, V₂, …` in order, maintaining `h_k(v_{k+1}, v_{k+2})`.
    /// Returns the optimum and the number of elementary steps performed
    /// (one step = one `f`-evaluation + add + compare), which must equal
    /// the closed form of Eq. 40.
    pub fn eliminate(&self) -> (Cost, u64) {
        let n = self.domains.len();
        let mut steps = 0u64;
        // h(v_{k+1}, v_{k+2}) table; initially h_1 after eliminating V_1.
        let m1 = self.domains[1].len();
        let m2 = self.domains[2].len();
        let mut h = vec![vec![Cost::INF; m2]; m1];
        for (j1, &v1) in self.domains[1].iter().enumerate() {
            for (j2, &v2) in self.domains[2].iter().enumerate() {
                let mut best = Cost::INF;
                for &v0 in &self.domains[0] {
                    steps += 1;
                    best = best.min(self.g[0](v0, v1, v2));
                }
                h[j1][j2] = best;
            }
        }
        // eliminate V_k for k = 2 .. n-2 (0-based: 1..n-2)
        for k in 1..n - 2 {
            let ma = self.domains[k + 1].len();
            let mb = self.domains[k + 2].len();
            let mut nh = vec![vec![Cost::INF; mb]; ma];
            for (ja, &va) in self.domains[k + 1].iter().enumerate() {
                for (jb, &vb) in self.domains[k + 2].iter().enumerate() {
                    let mut best = Cost::INF;
                    for (jk, &vk) in self.domains[k].iter().enumerate() {
                        steps += 1;
                        best = best.min(h[jk][ja] + self.g[k](vk, va, vb));
                    }
                    nh[ja][jb] = best;
                }
            }
            h = nh;
        }
        // final comparison over all h(v_{N-1}, v_N)
        let mut best = Cost::INF;
        for row in &h {
            for &c in row {
                steps += 1;
                best = best.min(c);
            }
        }
        (best, steps)
    }

    /// The closed-form step count of Eq. 40:
    /// `Σ_{k=1}^{N-2} mₖ·mₖ₊₁·mₖ₊₂ + m_{N-1}·m_N`.
    pub fn eq40_steps(&self) -> u64 {
        let m: Vec<u64> = self.domains.iter().map(|d| d.len() as u64).collect();
        let n = m.len();
        let sum: u64 = (0..n - 2).map(|k| m[k] * m[k + 1] * m[k + 2]).sum();
        sum + m[n - 2] * m[n - 1]
    }

    /// The grouping transform of Eq. 41: compound variables
    /// `V'ᵢ = (Vᵢ, Vᵢ₊₁)` become the stages of a serial multistage graph
    /// whose edges connect only *consistent* compound states (shared
    /// middle variable equal) with cost `gᵢ(vᵢ, vᵢ₊₁, vᵢ₊₂)`;
    /// inconsistent pairs get `INF`.
    pub fn group_to_serial(&self) -> MultistageGraph {
        let n = self.domains.len();
        let stage_states: Vec<Vec<(i64, i64)>> = (0..n - 1)
            .map(|i| {
                let mut v = Vec::new();
                for &a in &self.domains[i] {
                    for &b in &self.domains[i + 1] {
                        v.push((a, b));
                    }
                }
                v
            })
            .collect();
        let mats = (0..n - 2)
            .map(|i| {
                let from = &stage_states[i];
                let to = &stage_states[i + 1];
                Matrix::from_fn(from.len(), to.len(), |a, b| {
                    let (_, v_mid) = from[a];
                    let (v_mid2, v_next) = to[b];
                    if v_mid == v_mid2 {
                        MinPlus(self.g[i](from[a].0, v_mid, v_next))
                    } else {
                        MinPlus(Cost::INF)
                    }
                })
            })
            .collect();
        MultistageGraph::new(mats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_multistage::solve;

    fn chain3x3() -> TernaryChain {
        TernaryChain::uniform(
            vec![vec![0, 2, 5], vec![1, 3, 4], vec![0, 6, 7], vec![2, 3, 9]],
            |a, b, c| Cost::from((a - b).abs() + (b - c).abs()),
        )
    }

    #[test]
    fn objective_sums_terms() {
        let t = chain3x3();
        // g(0,1,0) + g(1,0,2) = (1+1) + (1+2) = 5
        assert_eq!(t.objective(&[0, 1, 0, 2]), Cost::from(5));
    }

    #[test]
    fn elimination_matches_brute_force() {
        let t = chain3x3();
        let (bf, _) = t.brute_force();
        let (elim, _) = t.eliminate();
        assert_eq!(elim, bf);
    }

    #[test]
    fn step_count_matches_eq40() {
        let t = chain3x3();
        let (_, steps) = t.eliminate();
        assert_eq!(steps, t.eq40_steps());
        // m = [3,3,3,3]: 2 terms of 27 + 9 final = 63
        assert_eq!(steps, 63);
    }

    #[test]
    fn mixed_domain_sizes_step_count() {
        let t = TernaryChain::uniform(
            vec![
                vec![0, 1],
                vec![0, 1, 2],
                vec![0],
                vec![1, 5],
                vec![2, 4, 6],
            ],
            |a, b, c| Cost::from(a + b + c),
        );
        let (cost, steps) = t.eliminate();
        assert_eq!(steps, t.eq40_steps());
        // eq40: 2·3·1 + 3·1·2 + 1·2·3 + 2·3 = 6 + 6 + 6 + 6 = 24
        assert_eq!(steps, 24);
        let (bf, _) = t.brute_force();
        assert_eq!(cost, bf);
    }

    #[test]
    fn grouping_transform_equals_brute_force() {
        let t = chain3x3();
        let g = t.group_to_serial();
        let dp = solve::forward_dp(&g);
        let (bf, _) = t.brute_force();
        assert_eq!(dp.cost, bf);
    }

    #[test]
    fn grouped_graph_dimensions() {
        let t = chain3x3();
        let g = t.group_to_serial();
        // N=4 variables -> 3 compound stages of 3*3 = 9 states.
        assert_eq!(g.num_stages(), 3);
        assert_eq!(g.stage_size(0), 9);
        assert_eq!(g.stage_size(2), 9);
    }

    #[test]
    fn ternary_chain_is_nonserial_but_grouped_is_serial() {
        let t = chain3x3();
        let edges = t.interaction_edges();
        assert!(!is_serial_structure(t.domains.len(), &edges));
        // interaction edges include the skip pair (0,2)
        assert!(edges.contains(&(0, 2)));
    }

    #[test]
    fn pairwise_problem_is_serial() {
        let p = NonserialProblem::new(
            vec![vec![0, 1]; 4],
            (0..3)
                .map(|i| Term::new(vec![i, i + 1], |a| Cost::from(a[0] + a[1])))
                .collect(),
        );
        assert!(p.is_serial());
    }

    #[test]
    fn generic_brute_force_agrees_with_objective() {
        let p = NonserialProblem::new(
            vec![vec![0, 3], vec![1, 2], vec![0, 5]],
            vec![
                Term::new(vec![0, 1, 2], |a| Cost::from(a[0] * a[1] + a[2])),
                Term::new(vec![0, 2], |a| Cost::from((a[0] - a[1]).abs())),
            ],
        );
        let (best, assignment) = p.brute_force();
        assert_eq!(p.objective(&assignment), best);
        // not serial: term over 3 vars and a skip edge
        assert!(!p.is_serial());
    }

    #[test]
    fn single_variable_problem() {
        let p = NonserialProblem::new(
            vec![vec![4, 1, 7]],
            vec![Term::new(vec![0], |a| Cost::from(a[0]))],
        );
        let (best, a) = p.brute_force();
        assert_eq!(best, Cost::from(1));
        assert_eq!(a, vec![1]);
        assert!(p.is_serial());
    }

    #[test]
    #[should_panic(expected = "N-2 terms")]
    fn wrong_term_count_rejected() {
        let _ = TernaryChain::new(vec![vec![0], vec![0], vec![0]], vec![]);
    }

    #[test]
    fn grouped_graph_has_inf_for_inconsistent_pairs() {
        let t = chain3x3();
        let g = t.group_to_serial();
        // state (a=0, mid=1) in stage 0 vs (mid'=3, next) in stage 1:
        // indices: stage0 state 0 = (0,1); stage1 state 3 = (3,0) -> INF
        assert!(g.edge_cost(0, 0, 3).is_inf());
        // consistent: stage1 state 0..2 have mid'=1 -> finite
        assert!(g.edge_cost(0, 0, 0).is_finite());
    }
}
