//! The dummy-node serialization transform (§6.2, Fig. 8).
//!
//! A polyadic-nonserial AND/OR-graph has arcs that skip levels (e.g. the
//! arc from a second-level AND-node to `m_{4,4}` at the bottom of Fig. 2),
//! which prevents a direct mapping onto a systolic array with
//! nearest-level interconnects.  The paper's fix: "Suppose that an OR-node
//! and its immediate parent are not located in adjacent levels, then the
//! OR-node is connected to its parent via other intermediate nodes in
//! adjacent levels" — pass-through *dummy* nodes (the dotted lines of
//! Fig. 8).  The transformed graph computes the same values but every arc
//! spans exactly one level, at the price of extra hardware and delay,
//! which this module quantifies.

use crate::graph::{AndOrGraph, NodeId, NodeKind};
use sdp_semiring::Cost;

/// Result of serializing an AND/OR graph.
pub struct SerializedGraph {
    /// The serial graph (every arc connects adjacent levels).
    pub graph: AndOrGraph,
    /// Maps each original node id to its id in the new graph.
    pub id_map: Vec<NodeId>,
    /// Number of dummy pass-through nodes inserted (the "redundant
    /// hardware" cost of the transform).
    pub dummies: usize,
}

/// Serializes `g` by inserting single-child OR-nodes (identity under MIN)
/// along every level-skipping arc.
pub fn serialize(g: &AndOrGraph) -> SerializedGraph {
    let mut out = AndOrGraph::new();
    let mut id_map = vec![0 as NodeId; g.len()];
    let mut dummies = 0usize;
    // Process in level order so children are already copied.
    let mut order: Vec<NodeId> = (0..g.len()).collect();
    order.sort_by_key(|&id| g.node(id).level);
    for id in order {
        let n = g.node(id);
        let new_id = match n.kind {
            NodeKind::Leaf => out.add_leaf(n.level, n.leaf_value),
            NodeKind::And | NodeKind::Or => {
                let mut children = Vec::with_capacity(n.children.len());
                for &c in &n.children {
                    let mut cur = id_map[c];
                    // pad with dummies from child level up to parent-1
                    for lvl in g.node(c).level + 1..n.level {
                        cur = out.add_or(lvl, vec![cur]);
                        dummies += 1;
                    }
                    children.push(cur);
                }
                if n.kind == NodeKind::And {
                    out.add_and(n.level, children, n.local_cost)
                } else {
                    out.add_or(n.level, children)
                }
            }
        };
        id_map[id] = new_id;
    }
    SerializedGraph {
        graph: out,
        id_map,
        dummies,
    }
}

impl SerializedGraph {
    /// Evaluates the serialized graph with leaf overrides keyed by
    /// *original* node ids, for drop-in comparison against the original.
    pub fn evaluate_original(
        &self,
        original: &AndOrGraph,
        leaf_override: &dyn Fn(NodeId) -> Option<Cost>,
    ) -> Vec<Cost> {
        // translate: new leaf id -> original leaf id
        let mut back = vec![None; self.graph.len()];
        for (old, &new) in self.id_map.iter().enumerate() {
            if original.node(old).kind == NodeKind::Leaf {
                back[new] = Some(old);
            }
        }
        self.graph
            .evaluate(&|new_id| back[new_id].and_then(leaf_override))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::build_chain_andor;

    #[test]
    fn serialized_graph_is_serial() {
        let c = build_chain_andor(&[2, 3, 4, 5, 6]);
        assert!(!c.graph.is_serial());
        let s = serialize(&c.graph);
        assert!(s.graph.is_serial());
        assert!(s.dummies > 0);
    }

    #[test]
    fn serialization_preserves_values() {
        for dims in [
            vec![30u64, 35, 15, 5, 10, 20, 25],
            vec![5, 4, 6, 2, 7],
            vec![2, 3, 4],
        ] {
            let c = build_chain_andor(&dims);
            let want = c.graph.evaluate_node(c.root);
            let s = serialize(&c.graph);
            let got = s.graph.evaluate(&|_| None)[s.id_map[c.root]];
            assert_eq!(got, want, "{dims:?}");
        }
    }

    #[test]
    fn already_serial_graph_unchanged_in_size() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(1));
        let b = g.add_leaf(0, Cost::from(2));
        let o = g.add_or(1, vec![a, b]);
        let _r = g.add_and(2, vec![o], Cost::from(3));
        let s = serialize(&g);
        assert_eq!(s.dummies, 0);
        assert_eq!(s.graph.len(), g.len());
    }

    #[test]
    fn dummy_count_matches_skip_distance() {
        // A single arc skipping 3 levels needs 2 dummies.
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(7));
        let r = g.add_or(3, vec![a]);
        let s = serialize(&g);
        assert_eq!(s.dummies, 2);
        assert!(s.graph.is_serial());
        assert_eq!(s.graph.evaluate(&|_| None)[s.id_map[r]], Cost::from(7));
    }

    #[test]
    fn evaluate_original_translates_leaf_ids() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(1));
        let b = g.add_leaf(0, Cost::from(2));
        let and = g.add_and(2, vec![a, b], Cost::ZERO); // skips level 1
        let s = serialize(&g);
        let vals = s.evaluate_original(&g, &|id| if id == a { Some(Cost::from(10)) } else { None });
        assert_eq!(vals[s.id_map[and]], Cost::from(12));
    }

    #[test]
    fn fig8_chain_has_quantifiable_overhead() {
        // For the 4-matrix chain, report structure: serialized node count
        // strictly exceeds the original (redundant hardware), height same.
        let c = build_chain_andor(&[2, 3, 4, 5, 6]);
        let s = serialize(&c.graph);
        assert!(s.graph.len() > c.graph.len());
        assert_eq!(s.graph.height(), c.graph.height());
        assert_eq!(s.graph.len(), c.graph.len() + s.dummies);
    }
}
