//! The AND/OR graph data model.
//!
//! Nodes are arranged in *levels* (stage numbers).  An AND-node is solved
//! when **all** children are solved and its value is the semiring product
//! (min-plus: the **sum**) of child values plus a local cost; an OR-node is
//! solved when **any** child is solved and its value is the semiring sum
//! (min-plus: the **minimum**) over children.  Leaves carry input values.
//!
//! The graph is *serial* when every arc connects nodes in adjacent levels —
//! the property that makes a direct planar systolic mapping possible (§6.2).

use sdp_semiring::Cost;

/// Index of a node within an [`AndOrGraph`].
pub type NodeId = usize;

/// The role of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Subproblem conjunction: value = local cost + Σ children.
    And,
    /// Alternative selection: value = min over children.
    Or,
    /// Input: value supplied at evaluation time (or fixed).
    Leaf,
}

/// One node of an AND/OR graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// AND / OR / Leaf.
    pub kind: NodeKind,
    /// Level (0 = bottom).  Arcs point from higher levels to lower ones.
    pub level: usize,
    /// Children (subproblems for AND, alternatives for OR).
    pub children: Vec<NodeId>,
    /// Local cost added by AND-nodes (e.g. `r_{i-1}·r_k·r_j` in Eq. 6).
    pub local_cost: Cost,
    /// Fixed value for leaves (may be overridden at evaluation).
    pub leaf_value: Cost,
}

/// A directed acyclic AND/OR graph with levelled nodes.
#[derive(Clone, Debug, Default)]
pub struct AndOrGraph {
    nodes: Vec<Node>,
}

impl AndOrGraph {
    /// An empty graph.
    pub fn new() -> AndOrGraph {
        AndOrGraph { nodes: Vec::new() }
    }

    /// Adds a leaf at `level` with a fixed `value`; returns its id.
    pub fn add_leaf(&mut self, level: usize, value: Cost) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::Leaf,
            level,
            children: Vec::new(),
            local_cost: Cost::ZERO,
            leaf_value: value,
        });
        self.nodes.len() - 1
    }

    /// Adds an AND-node at `level` over `children` with an optional local
    /// cost term; returns its id.
    pub fn add_and(&mut self, level: usize, children: Vec<NodeId>, local_cost: Cost) -> NodeId {
        assert!(!children.is_empty(), "AND-node needs children");
        self.check_children(&children, level);
        self.nodes.push(Node {
            kind: NodeKind::And,
            level,
            children,
            local_cost,
            leaf_value: Cost::INF,
        });
        self.nodes.len() - 1
    }

    /// Adds an OR-node at `level` over `children`; returns its id.
    pub fn add_or(&mut self, level: usize, children: Vec<NodeId>) -> NodeId {
        assert!(!children.is_empty(), "OR-node needs children");
        self.check_children(&children, level);
        self.nodes.push(Node {
            kind: NodeKind::Or,
            level,
            children,
            local_cost: Cost::ZERO,
            leaf_value: Cost::INF,
        });
        self.nodes.len() - 1
    }

    fn check_children(&self, children: &[NodeId], level: usize) {
        for &c in children {
            assert!(c < self.nodes.len(), "child id out of range");
            assert!(
                self.nodes[c].level < level,
                "children must be at strictly lower levels (acyclicity)"
            );
        }
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes of the given kind.
    pub fn count_kind(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// The maximum level (graph height).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Total arc count.
    pub fn num_arcs(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).sum()
    }

    /// True when **every** arc connects adjacent levels — the paper's
    /// seriality criterion for direct systolic mapping.
    pub fn is_serial(&self) -> bool {
        self.nodes.iter().all(|n| {
            n.children
                .iter()
                .all(|&c| self.nodes[c].level + 1 == n.level)
        })
    }

    /// Arcs that skip at least one level (the ones Fig. 8 patches with
    /// dummy nodes), as `(parent, child)` pairs.
    pub fn nonserial_arcs(&self) -> Vec<(NodeId, NodeId)> {
        let mut v = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                if self.nodes[c].level + 1 != n.level {
                    v.push((id, c));
                }
            }
        }
        v
    }

    /// Bottom-up breadth-first evaluation (the search strategy of §6.2):
    /// levels are processed in increasing order; every node's value is
    /// computed from already-evaluated children.  Returns per-node values.
    ///
    /// `leaf_override` may replace leaf values (keyed by node id), letting
    /// one graph structure be re-evaluated on many inputs.
    pub fn evaluate(&self, leaf_override: &dyn Fn(NodeId) -> Option<Cost>) -> Vec<Cost> {
        let mut value = vec![Cost::INF; self.nodes.len()];
        // ids sorted by level; children are guaranteed at lower levels.
        let mut order: Vec<NodeId> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&id| self.nodes[id].level);
        for id in order {
            let n = &self.nodes[id];
            value[id] = match n.kind {
                NodeKind::Leaf => leaf_override(id).unwrap_or(n.leaf_value),
                NodeKind::And => n
                    .children
                    .iter()
                    .map(|&c| value[c])
                    .fold(n.local_cost, |a, b| a + b),
                NodeKind::Or => n
                    .children
                    .iter()
                    .map(|&c| value[c])
                    .fold(Cost::INF, Cost::min),
            };
        }
        value
    }

    /// Evaluates and returns the value of a single node.
    pub fn evaluate_node(&self, id: NodeId) -> Cost {
        self.evaluate(&|_| None)[id]
    }

    /// The number of *sequential bottom-up steps* (levels containing at
    /// least one non-leaf node) — a proxy for pipeline depth.
    pub fn eval_levels(&self) -> usize {
        let mut lv: Vec<usize> = self
            .nodes
            .iter()
            .filter(|n| n.kind != NodeKind::Leaf)
            .map(|n| n.level)
            .collect();
        lv.sort_unstable();
        lv.dedup();
        lv.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min( 3+4, min(5, 9)+1 ) built as a two-level AND/OR tree.
    fn small() -> (AndOrGraph, NodeId) {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(3));
        let b = g.add_leaf(0, Cost::from(4));
        let c = g.add_leaf(0, Cost::from(5));
        let d = g.add_leaf(0, Cost::from(9));
        let and1 = g.add_and(1, vec![a, b], Cost::ZERO);
        let or1 = g.add_or(1, vec![c, d]);
        let and2 = g.add_and(2, vec![or1], Cost::from(1));
        let root = g.add_or(3, vec![and1, and2]);
        (g, root)
    }

    #[test]
    fn evaluate_small() {
        let (g, root) = small();
        // and1 = 7, and2 = 5 + 1 = 6, root = min(7, 6) = 6
        assert_eq!(g.evaluate_node(root), Cost::from(6));
    }

    #[test]
    fn leaf_override_changes_result() {
        let (g, root) = small();
        // make leaf c expensive so and1 wins
        let vals = g.evaluate(&|id| if id == 2 { Some(Cost::from(100)) } else { None });
        assert_eq!(vals[root], Cost::from(7));
    }

    #[test]
    fn kind_counts_and_height() {
        let (g, _) = small();
        assert_eq!(g.count_kind(NodeKind::Leaf), 4);
        assert_eq!(g.count_kind(NodeKind::And), 2);
        assert_eq!(g.count_kind(NodeKind::Or), 2);
        assert_eq!(g.height(), 3);
        assert_eq!(g.num_arcs(), 2 + 2 + 1 + 2);
    }

    #[test]
    fn seriality_detection() {
        let (g, _) = small();
        // and1 at level 1 over level-0 leaves: serial.
        // root at level 3 over and1 at level 1: NON-serial arc.
        assert!(!g.is_serial());
        let skips = g.nonserial_arcs();
        assert!(skips.iter().any(|&(p, c)| p == 7 && c == 4));
    }

    #[test]
    fn serial_graph_detected() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(1));
        let b = g.add_leaf(0, Cost::from(2));
        let o = g.add_or(1, vec![a, b]);
        let r = g.add_and(2, vec![o], Cost::ZERO);
        assert!(g.is_serial());
        assert_eq!(g.evaluate_node(r), Cost::from(1));
    }

    #[test]
    fn and_node_sums_with_local_cost() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(10));
        let b = g.add_leaf(0, Cost::from(20));
        let n = g.add_and(1, vec![a, b], Cost::from(5));
        assert_eq!(g.evaluate_node(n), Cost::from(35));
    }

    #[test]
    fn or_node_propagates_inf_when_all_children_inf() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::INF);
        let o = g.add_or(1, vec![a]);
        assert_eq!(g.evaluate_node(o), Cost::INF);
    }

    #[test]
    fn and_node_inf_absorbs() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(0, Cost::from(3));
        let b = g.add_leaf(0, Cost::INF);
        let n = g.add_and(1, vec![a, b], Cost::ZERO);
        assert_eq!(g.evaluate_node(n), Cost::INF);
    }

    #[test]
    #[should_panic(expected = "strictly lower levels")]
    fn same_level_child_rejected() {
        let mut g = AndOrGraph::new();
        let a = g.add_leaf(1, Cost::ZERO);
        let _ = g.add_or(1, vec![a]);
    }

    #[test]
    fn eval_levels_counts_nonleaf_levels() {
        let (g, _) = small();
        assert_eq!(g.eval_levels(), 3); // levels 1, 2, 3
    }
}
