//! Edge-of-envelope behavior of the work-stealing pool: worker counts
//! that exceed the batch, degenerate pool sizes, and panic containment
//! when most workers have nothing to do.

use sdp_par::{lock_recover, watchdog, StealPool};
use std::sync::{Arc, Mutex};

#[test]
fn more_workers_than_tasks_fills_every_slot() {
    let pool = StealPool::new(16);
    assert_eq!(pool.workers(), 16);
    assert_eq!(pool.workers_for(3), 3);
    let out = pool.run((0..3).map(|i| move || i * 10).collect::<Vec<_>>());
    assert_eq!(out, vec![Some(0), Some(10), Some(20)]);
}

#[test]
fn zero_worker_pool_degrades_to_inline_execution() {
    let pool = StealPool::new(0);
    assert_eq!(pool.workers_for(5), 1);
    let out = pool.run((0..5).map(|i| move || i + 1).collect::<Vec<_>>());
    assert_eq!(out, (1..=5).map(Some).collect::<Vec<_>>());
}

#[test]
fn single_task_on_a_wide_pool_runs_inline() {
    let pool = StealPool::new(8);
    let tid = std::thread::current().id();
    let out = pool.run(vec![move || std::thread::current().id() == tid]);
    assert_eq!(out, vec![Some(true)]);
}

#[test]
fn panic_with_idle_workers_is_contained() {
    // Two tasks on a 16-worker pool: one panics, 14 workers never get
    // work.  The scoped join must still complete with one None slot.
    let pool = StealPool::new(16);
    let out = pool.run(vec![
        Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>,
        Box::new(|| panic!("second task dies")),
    ]);
    assert_eq!(out, vec![Some(7), None]);
}

#[test]
fn lock_recover_reads_through_a_poisoned_mutex() {
    let shared = Arc::new(Mutex::new(vec![1u32, 2, 3]));
    let poisoner = Arc::clone(&shared);
    // Panic while holding the guard: the mutex is now poisoned.
    let _ = std::thread::spawn(move || {
        let _guard = poisoner.lock().unwrap();
        panic!("die holding the lock");
    })
    .join();
    assert!(shared.lock().is_err(), "mutex should be poisoned");
    assert_eq!(*lock_recover(&shared), vec![1, 2, 3]);
}

#[test]
fn poisoned_shared_lock_does_not_cascade_across_the_pool() {
    // A batch whose tasks all funnel through one caller-owned mutex.
    // Task 5 panics *while holding the guard*, poisoning it; every
    // other task must still acquire the lock (via recovery), append its
    // marker, and fill its result slot — the documented panic-safe
    // reassignment story, exercised on an actually poisoned lock.
    let shared: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let pool = StealPool::new(4);
    let out = pool.run(
        (0..32usize)
            .map(|i| {
                let shared = Arc::clone(&shared);
                move || {
                    let mut log = lock_recover(&shared);
                    log.push(i);
                    if i == 5 {
                        // Poison `shared` for every later task.
                        panic!("task 5 dies holding the shared lock");
                    }
                    drop(log);
                    i * 2
                }
            })
            .collect::<Vec<_>>(),
    );
    assert!(shared.lock().is_err(), "task 5 must have poisoned the lock");
    for (i, slot) in out.iter().enumerate() {
        if i == 5 {
            assert_eq!(*slot, None, "the poisoning task itself is contained");
        } else {
            assert_eq!(*slot, Some(i * 2), "task {i} must survive the poison");
        }
    }
    let log = lock_recover(&shared);
    assert_eq!(log.len(), 32, "every task reached the shared section");
}

#[test]
fn contended_stealing_does_not_deadlock() {
    // Regression: the worker loop once held its *own* deque's lock
    // while probing victims' deques (a guard temporary kept alive
    // through an `.or_else` chain), so two workers stealing from each
    // other could deadlock ABBA.  Hammer the race: thousands of rounds
    // of instant tasks on a wide pool means every round ends with all
    // workers racing to steal the stragglers.  One task per worker
    // maximizes empty-deque probing; on a single-core host the buggy
    // loop reliably wedges within a few hundred rounds at this width.
    // The watchdog converts a deadlock into a test failure instead of a
    // hung suite.
    watchdog(
        "contended-stealing",
        std::time::Duration::from_secs(60),
        || {
            let pool = StealPool::new(16);
            for round in 0..4000u64 {
                let out = pool.run((0..16).map(|i| move || round + i).collect::<Vec<_>>());
                assert!(out.iter().all(Option::is_some));
            }
        },
    );
}

#[test]
fn host_sized_pool_is_usable() {
    let pool = StealPool::host_sized();
    assert!(pool.workers() >= 1);
    let out = pool.run(
        (0..pool.workers() * 2)
            .map(|i| move || i)
            .collect::<Vec<_>>(),
    );
    assert!(out.iter().enumerate().all(|(i, s)| *s == Some(i)));
}
