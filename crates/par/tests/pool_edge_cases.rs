//! Edge-of-envelope behavior of the work-stealing pool: worker counts
//! that exceed the batch, degenerate pool sizes, and panic containment
//! when most workers have nothing to do.

use sdp_par::StealPool;

#[test]
fn more_workers_than_tasks_fills_every_slot() {
    let pool = StealPool::new(16);
    assert_eq!(pool.workers(), 16);
    assert_eq!(pool.workers_for(3), 3);
    let out = pool.run((0..3).map(|i| move || i * 10).collect::<Vec<_>>());
    assert_eq!(out, vec![Some(0), Some(10), Some(20)]);
}

#[test]
fn zero_worker_pool_degrades_to_inline_execution() {
    let pool = StealPool::new(0);
    assert_eq!(pool.workers_for(5), 1);
    let out = pool.run((0..5).map(|i| move || i + 1).collect::<Vec<_>>());
    assert_eq!(out, (1..=5).map(Some).collect::<Vec<_>>());
}

#[test]
fn single_task_on_a_wide_pool_runs_inline() {
    let pool = StealPool::new(8);
    let tid = std::thread::current().id();
    let out = pool.run(vec![move || std::thread::current().id() == tid]);
    assert_eq!(out, vec![Some(true)]);
}

#[test]
fn panic_with_idle_workers_is_contained() {
    // Two tasks on a 16-worker pool: one panics, 14 workers never get
    // work.  The scoped join must still complete with one None slot.
    let pool = StealPool::new(16);
    let out = pool.run(vec![
        Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>,
        Box::new(|| panic!("second task dies")),
    ]);
    assert_eq!(out, vec![Some(7), None]);
}

#[test]
fn host_sized_pool_is_usable() {
    let pool = StealPool::host_sized();
    assert!(pool.workers() >= 1);
    let out = pool.run(
        (0..pool.workers() * 2)
            .map(|i| move || i)
            .collect::<Vec<_>>(),
    );
    assert!(out.iter().enumerate().all(|(i, s)| *s == Some(i)));
}
