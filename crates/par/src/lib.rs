//! A dependency-free work-stealing pool for host-side task batches.
//!
//! The divide-and-conquer executors of `sdp-core` model the paper's §4
//! granularity analysis on a real host: each reduction round is a batch
//! of independent matrix products handed to `k` workers.  The original
//! executor spawned one thread per task with no queue at all, so a round
//! whose products have uneven cost left most workers idle while the
//! slowest finished.  [`StealPool`] keeps a per-worker deque of task
//! indices and lets idle workers steal from the back of their peers'
//! deques — the standard Chase–Lev discipline, here with a mutex per
//! deque since tasks are matrix products (milliseconds), not nanosecond
//! futures.
//!
//! Panics are contained per task: a task that panics simply leaves `None`
//! in its result slot, which is what lets the fault-tolerant executor
//! treat "worker died" as an observable, recoverable event rather than a
//! poisoned pool.
//!
//! The pool is deliberately built on `std::thread::scope` only — the
//! workspace vendors no `rayon`/`crossbeam`, and the scoped design means
//! tasks may borrow the caller's data (each round borrows the current
//! layer of matrices without cloning).

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Per-worker counters for one worker lane of a [`StealPool`].
///
/// Cache-line aligned so worker 3 bumping `ran` never invalidates
/// worker 4's line.  All loads/stores are relaxed: these are telemetry,
/// not synchronization.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct WorkerStats {
    ran: AtomicU64,
    stolen: AtomicU64,
    parked: AtomicU64,
    panicked: AtomicU64,
}

impl WorkerStats {
    /// Tasks executed from this worker's own deque.
    pub fn ran(&self) -> u64 {
        self.ran.load(Ordering::Relaxed)
    }

    /// Tasks executed after stealing from a peer's deque.
    pub fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Times this worker found every deque empty and parked (exited
    /// the batch).
    pub fn parked(&self) -> u64 {
        self.parked.load(Ordering::Relaxed)
    }

    /// Tasks that panicked on this worker (their result slot is `None`;
    /// fault-tolerant callers observe and reassign them).
    pub fn panicked(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }
}

/// Cumulative per-worker telemetry across every observed
/// [`StealPool::run_observed`] call.
///
/// The pool itself stays `Copy` and stat-free; callers that want
/// visibility (the serving dispatcher) allocate one `PoolStats` sized
/// to the pool and pass it to each batch.  Recording is a relaxed
/// `fetch_add` on the executing worker's own cache-line-padded lane —
/// no lock, no cross-worker sharing.
#[derive(Debug)]
pub struct PoolStats {
    workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Stats for `workers` worker lanes (at least 1).
    pub fn new(workers: usize) -> PoolStats {
        PoolStats {
            workers: (0..workers.max(1))
                .map(|_| WorkerStats::default())
                .collect(),
        }
    }

    /// The per-worker lanes.
    pub fn workers(&self) -> &[WorkerStats] {
        &self.workers
    }

    fn lane(&self, worker: usize) -> &WorkerStats {
        // A batch may run with fewer workers than lanes (never more,
        // by construction in `run_observed`); the modulo keeps this
        // panic-free even if a caller under-sizes the stats.
        &self.workers[worker % self.workers.len()]
    }

    /// Total tasks executed (own + stolen) across all workers.
    pub fn tasks_total(&self) -> u64 {
        self.workers.iter().map(|w| w.ran() + w.stolen()).sum()
    }
}

/// Number of hardware threads the host exposes (at least 1).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Locks `mutex`, recovering the data if a previous holder panicked.
///
/// `std`'s mutexes are poisoned when a thread panics while holding the
/// guard; a bare `.lock().unwrap()` then turns *one* contained task
/// panic into a cascade that takes down every worker touching the same
/// deque or result slot.  All pool state here is a plain index queue or
/// a write-once slot — there is no invariant a mid-panic holder could
/// have half-applied — so the data behind a poisoned lock is still
/// valid and the right move is to keep going.  Task closures that share
/// their own mutexes with a panicking sibling can use this too.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` on a named thread and panics if it does not finish within
/// `timeout` — converting a deadlock or wedge into a loud test failure
/// instead of a hung suite.
///
/// This is the watchdog pattern the PR 5 deadlock-regression test
/// introduced (a channel send on completion, `recv_timeout` on the
/// observer side), extracted so stress tests across the workspace stop
/// re-rolling it.  If `f` panics, the panic is propagated to the caller
/// (via the join) rather than reported as a timeout.
pub fn watchdog<R, F>(label: &str, timeout: std::time::Duration, f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let out = f();
            // A dropped receiver only happens after a timeout panic.
            let _ = tx.send(());
            out
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(timeout) {
        Ok(()) => match handle.join() {
            Ok(out) => out,
            Err(p) => std::panic::resume_unwind(p),
        },
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            // The worker died without sending: propagate its panic.
            match handle.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog '{label}': no completion within {timeout:?} (deadlock?)")
        }
    }
}

/// A work-stealing pool of a fixed number of workers.
///
/// The pool itself is cheap to construct; workers are scoped to each
/// [`run`](StealPool::run) call so task closures may borrow caller state.
#[derive(Debug, Clone, Copy)]
pub struct StealPool {
    workers: usize,
}

impl StealPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> StealPool {
        StealPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn host_sized() -> StealPool {
        StealPool::new(host_threads())
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Workers that would actually run for a batch of `tasks` tasks
    /// (never more threads than tasks).
    pub fn workers_for(&self, tasks: usize) -> usize {
        self.workers.min(tasks).max(1)
    }

    /// Executes every task, returning one result slot per task in input
    /// order.  A task that panics yields `None` in its slot; all other
    /// tasks still run to completion.
    ///
    /// Tasks are dealt round-robin onto per-worker deques; a worker pops
    /// its own deque from the front and steals from the back of its
    /// peers' deques when empty.  With one worker (or one task) the batch
    /// runs inline on the caller thread — on a single-core host the pool
    /// degrades to a plain panic-containing loop with no spawn cost.
    pub fn run<T, R>(&self, tasks: Vec<T>) -> Vec<Option<R>>
    where
        T: FnOnce() -> R + Send,
        R: Send,
    {
        self.run_inner(tasks, None)
    }

    /// [`run`](StealPool::run) with per-worker telemetry: own-deque
    /// executions, steals, parks, and panics land in `stats`'s
    /// cache-line-padded lanes.  Counting is a relaxed `fetch_add` per
    /// event — observing a pool adds no lock to the task path.
    pub fn run_observed<T, R>(&self, tasks: Vec<T>, stats: &PoolStats) -> Vec<Option<R>>
    where
        T: FnOnce() -> R + Send,
        R: Send,
    {
        self.run_inner(tasks, Some(stats))
    }

    fn run_inner<T, R>(&self, tasks: Vec<T>, stats: Option<&PoolStats>) -> Vec<Option<R>>
    where
        T: FnOnce() -> R + Send,
        R: Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers_for(n);
        if workers == 1 {
            return tasks
                .into_iter()
                .map(|t| {
                    let result = catch_unwind(AssertUnwindSafe(t)).ok();
                    if let Some(stats) = stats {
                        let lane = stats.lane(0);
                        lane.ran.fetch_add(1, Ordering::Relaxed);
                        if result.is_none() {
                            lane.panicked.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    result
                })
                .collect();
        }

        // One take-once cell per task so any worker may claim any task,
        // and one write-once slot per result.
        let cells: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let cells = &cells;
                let slots = &slots;
                let deques = &deques;
                scope.spawn(move || loop {
                    // Own work first (front), then steal (back).  The
                    // own-deque guard must drop before any victim lock
                    // is taken: chaining `.or_else` onto the guarded
                    // `pop_front()` would keep the guard alive through
                    // the steal (temporaries live to the end of the
                    // statement) and two workers stealing from each
                    // other would deadlock ABBA.
                    let own = lock_recover(&deques[me]).pop_front();
                    let stolen = own.is_none();
                    let idx = own.or_else(|| {
                        (1..workers).find_map(|d| {
                            let victim = (me + d) % workers;
                            lock_recover(&deques[victim]).pop_back()
                        })
                    });
                    let Some(idx) = idx else {
                        if let Some(stats) = stats {
                            stats.lane(me).parked.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    };
                    let Some(task) = lock_recover(&cells[idx]).take() else {
                        continue;
                    };
                    if let Some(stats) = stats {
                        let lane = stats.lane(me);
                        let claimed = if stolen { &lane.stolen } else { &lane.ran };
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                    let result = catch_unwind(AssertUnwindSafe(task)).ok();
                    if result.is_none() {
                        if let Some(stats) = stats {
                            stats.lane(me).panicked.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    *lock_recover(&slots[idx]) = result;
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_in_order_slots() {
        let pool = StealPool::new(4);
        let out = pool.run((0..100).map(|i| move || i * 2).collect());
        assert_eq!(out.len(), 100);
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(*slot, Some(i * 2));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let pool = StealPool::new(3);
        let out: Vec<Option<u32>> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_task_leaves_none_and_others_complete() {
        let pool = StealPool::new(3);
        let out = pool.run(
            (0..10)
                .map(|i| {
                    move || {
                        if i == 4 {
                            panic!("task 4 dies");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (i, slot) in out.iter().enumerate() {
            if i == 4 {
                assert_eq!(*slot, None);
            } else {
                assert_eq!(*slot, Some(i));
            }
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = StealPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.run(vec![move || std::thread::current().id() == tid]);
        assert_eq!(out, vec![Some(true)]);
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        let data: Vec<u64> = (0..50).collect();
        let pool = StealPool::new(4);
        let out = pool.run(
            data.chunks(7)
                .map(|chunk| move || chunk.iter().sum::<u64>())
                .collect::<Vec<_>>(),
        );
        let total: u64 = out.into_iter().map(|s| s.unwrap()).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn uneven_tasks_all_complete_with_stealing() {
        // A few heavy tasks and many light ones: stealing or not, every
        // slot must fill exactly once.
        static RAN: AtomicUsize = AtomicUsize::new(0);
        RAN.store(0, Ordering::SeqCst);
        let pool = StealPool::new(4);
        let out = pool.run(
            (0..32)
                .map(|i| {
                    move || {
                        if i % 8 == 0 {
                            // ~heavier work
                            let mut acc = 0u64;
                            for x in 0..20_000u64 {
                                acc = acc.wrapping_add(x * x);
                            }
                            std::hint::black_box(acc);
                        }
                        RAN.fetch_add(1, Ordering::SeqCst);
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(RAN.load(Ordering::SeqCst), 32);
        assert_eq!(out.iter().filter(|s| s.is_some()).count(), 32);
    }

    #[test]
    fn observed_run_accounts_for_every_task() {
        let pool = StealPool::new(4);
        let stats = PoolStats::new(4);
        let out = pool.run_observed((0..64).map(|i| move || i).collect::<Vec<_>>(), &stats);
        assert_eq!(out.iter().filter(|s| s.is_some()).count(), 64);
        // Every task was claimed exactly once, from its own deque or by
        // a steal; attribution between the two depends on scheduling.
        assert_eq!(stats.tasks_total(), 64);
        let parked: u64 = stats.workers().iter().map(WorkerStats::parked).sum();
        assert!(parked >= 1, "each worker parks when the batch drains");
        assert_eq!(
            stats
                .workers()
                .iter()
                .map(WorkerStats::panicked)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn observed_run_counts_panics_and_inline_path() {
        let pool = StealPool::new(1); // inline fast path
        let stats = PoolStats::new(1);
        let out = pool.run_observed(
            (0..6)
                .map(|i| {
                    move || {
                        if i == 2 {
                            panic!("task 2 dies");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
            &stats,
        );
        assert_eq!(out.iter().filter(|s| s.is_some()).count(), 5);
        assert_eq!(stats.workers()[0].ran(), 6);
        assert_eq!(stats.workers()[0].panicked(), 1);
        assert_eq!(stats.workers()[0].stolen(), 0);
    }

    #[test]
    fn observed_stats_accumulate_across_batches() {
        let pool = StealPool::new(2);
        let stats = PoolStats::new(2);
        for _ in 0..3 {
            pool.run_observed((0..8).map(|i| move || i).collect::<Vec<_>>(), &stats);
        }
        assert_eq!(stats.tasks_total(), 24);
    }

    #[test]
    fn undersized_stats_fold_extra_workers_panic_free() {
        let pool = StealPool::new(4);
        let stats = PoolStats::new(2); // fewer lanes than workers
        pool.run_observed((0..16).map(|i| move || i).collect::<Vec<_>>(), &stats);
        assert_eq!(stats.tasks_total(), 16);
    }

    #[test]
    fn workers_clamped() {
        assert_eq!(StealPool::new(0).workers(), 1);
        assert_eq!(StealPool::new(5).workers_for(2), 2);
        assert_eq!(StealPool::new(2).workers_for(100), 2);
        assert!(host_threads() >= 1);
    }
}
