//! Property tests: the DP baselines agree with each other, with the
//! matrix-string formulation, and with brute force, on random graphs.

use proptest::prelude::*;
use sdp_multistage::{generate, solve, MultistageGraph};
use sdp_semiring::{Cost, Matrix, MinPlus};

fn graph_strategy() -> impl Strategy<Value = MultistageGraph> {
    (2usize..7, 1usize..5, 0u64..1000)
        .prop_map(|(stages, m, seed)| generate::random_uniform(seed, stages, m, 0, 30))
}

proptest! {
    #[test]
    fn forward_backward_matrix_agree(g in graph_strategy()) {
        let f = solve::forward_dp(&g);
        let b = solve::backward_dp(&g);
        prop_assert_eq!(f.cost, b.cost);
        prop_assert_eq!(f.cost, g.optimal_cost());
    }

    #[test]
    fn dp_matches_brute_force(
        stages in 2usize..6, m in 1usize..4, seed in 0u64..500
    ) {
        let g = generate::random_uniform(seed, stages, m, 0, 15);
        let (bf, _) = solve::brute_force(&g);
        prop_assert_eq!(solve::forward_dp(&g).cost, bf);
    }

    #[test]
    fn traceback_achieves_reported_cost(g in graph_strategy()) {
        let f = solve::forward_dp(&g);
        prop_assert_eq!(solve::path_cost(&g, &f.path), f.cost);
        let b = solve::backward_dp(&g);
        prop_assert_eq!(solve::path_cost(&g, &b.path), b.cost);
    }

    #[test]
    fn sparse_graph_consistency(
        stages in 2usize..6, m in 2usize..4, seed in 0u64..300, p in 0.0f64..0.8
    ) {
        let g = generate::random_sparse(seed, stages, m, 1, 9, p);
        let f = solve::forward_dp(&g);
        let (bf, _) = solve::brute_force(&g);
        prop_assert_eq!(f.cost, bf);
    }

    #[test]
    fn adding_constant_to_one_stage_shifts_optimum(
        seed in 0u64..200, delta in 1i64..20
    ) {
        // Monotonicity sanity: raising every edge of one stage by delta
        // raises the optimum by exactly delta (every path crosses the stage).
        let g = generate::random_uniform(seed, 5, 3, 0, 20);
        let base = solve::forward_dp(&g).cost;
        let mats: Vec<Matrix<MinPlus>> = g
            .matrix_string()
            .iter()
            .enumerate()
            .map(|(s, m)| {
                if s == 2 {
                    Matrix::from_fn(m.rows(), m.cols(), |i, j| {
                        MinPlus(m.get(i, j).0 + Cost::from(delta))
                    })
                } else {
                    m.clone()
                }
            })
            .collect();
        let g2 = MultistageGraph::new(mats);
        prop_assert_eq!(solve::forward_dp(&g2).cost, base + Cost::from(delta));
    }

    #[test]
    fn node_value_io_counts(stages in 2usize..8, m in 1usize..8, seed in 0u64..100) {
        let nv = generate::node_value_random(
            seed, stages, m, Box::new(sdp_multistage::node_value::AbsDiff), -10, 10,
        );
        let (node, edge) = nv.io_words();
        prop_assert_eq!(node, stages * m);
        prop_assert_eq!(edge, (stages - 1) * m * m);
    }

    #[test]
    fn serial_iterations_formula_uniform(
        stages in 2usize..8, m in 1usize..6, seed in 0u64..100
    ) {
        let g = generate::random_uniform(seed, stages, m, 0, 9);
        let f = solve::forward_dp(&g);
        prop_assert_eq!(f.iterations, ((stages - 1) * m * m) as u64);
    }
}
