//! The edge-cost multistage graph and its matrix-string form.

use sdp_fault::SdpError;
use sdp_semiring::{Cost, Matrix, MinPlus};

/// A multistage graph: vertices are grouped into stages `0 … S−1`, and
/// edges run only from stage `i` to stage `i+1`, with finite or `INF`
/// (absent) costs.
///
/// Stage `i → i+1` costs are stored as an `mᵢ × mᵢ₊₁` min-plus matrix, so
/// the whole graph *is* the string of matrices of the paper's Eq. 8, and
/// the shortest source→sink path cost is the right-associated string
/// product.
#[derive(Clone, Debug, PartialEq)]
pub struct MultistageGraph {
    /// `costs[i]` is the `mᵢ × mᵢ₊₁` cost matrix from stage `i` to `i+1`.
    costs: Vec<Matrix<MinPlus>>,
}

impl MultistageGraph {
    /// Builds a graph from per-stage cost matrices; adjacent matrices must
    /// have matching inner dimensions.
    pub fn new(costs: Vec<Matrix<MinPlus>>) -> MultistageGraph {
        assert!(!costs.is_empty(), "a multistage graph needs >= 2 stages");
        for w in costs.windows(2) {
            assert_eq!(
                w[0].cols(),
                w[1].rows(),
                "stage sizes must chain: {}x{} then {}x{}",
                w[0].rows(),
                w[0].cols(),
                w[1].rows(),
                w[1].cols()
            );
        }
        MultistageGraph { costs }
    }

    /// Non-panicking [`MultistageGraph::new`]: an empty matrix list is
    /// [`SdpError::EmptyMatrixString`] and a broken stage chain is
    /// [`SdpError::InnerDimMismatch`].
    pub fn try_new(costs: Vec<Matrix<MinPlus>>) -> Result<MultistageGraph, SdpError> {
        if costs.is_empty() {
            return Err(SdpError::EmptyMatrixString);
        }
        for w in costs.windows(2) {
            if w[0].cols() != w[1].rows() {
                return Err(SdpError::InnerDimMismatch {
                    left_cols: w[0].cols(),
                    right_rows: w[1].rows(),
                });
            }
        }
        Ok(MultistageGraph { costs })
    }

    /// Builds a uniform graph with `stages` stages of `m` nodes each, with
    /// every edge cost produced by `f(stage, from, to)`.
    pub fn uniform_from_fn(
        stages: usize,
        m: usize,
        mut f: impl FnMut(usize, usize, usize) -> Cost,
    ) -> MultistageGraph {
        assert!(stages >= 2, "need at least two stages");
        assert!(m >= 1, "need at least one node per stage");
        let costs = (0..stages - 1)
            .map(|s| Matrix::from_fn(m, m, |i, j| MinPlus(f(s, i, j))))
            .collect();
        MultistageGraph { costs }
    }

    /// Number of stages `S` (one more than the number of cost matrices).
    pub fn num_stages(&self) -> usize {
        self.costs.len() + 1
    }

    /// Number of vertices in stage `s`.
    pub fn stage_size(&self, s: usize) -> usize {
        if s < self.costs.len() {
            self.costs[s].rows()
        } else {
            self.costs[s - 1].cols()
        }
    }

    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        (0..self.num_stages()).map(|s| self.stage_size(s)).sum()
    }

    /// Total finite-cost edge count.
    pub fn num_edges(&self) -> usize {
        self.costs
            .iter()
            .map(|m| {
                (0..m.rows())
                    .flat_map(|i| (0..m.cols()).map(move |j| (i, j)))
                    .filter(|&(i, j)| m.get(i, j).0.is_finite())
                    .count()
            })
            .sum()
    }

    /// The cost of the edge from vertex `from` in stage `s` to vertex `to`
    /// in stage `s+1`.
    pub fn edge_cost(&self, s: usize, from: usize, to: usize) -> Cost {
        self.costs[s].get(from, to).0
    }

    /// Sets the cost of edge stage `s`, `from → to`.
    pub fn set_edge_cost(&mut self, s: usize, from: usize, to: usize, c: Cost) {
        self.costs[s].set(from, to, MinPlus(c));
    }

    /// The stage-`s` cost matrix.
    pub fn cost_matrix(&self, s: usize) -> &Matrix<MinPlus> {
        &self.costs[s]
    }

    /// All cost matrices, in stage order — exactly the string of matrices
    /// `A, B, C, D` of Eq. 8.
    pub fn matrix_string(&self) -> &[Matrix<MinPlus>] {
        &self.costs
    }

    /// True when every intermediate stage has the same width `m` and the
    /// first/last stages hold a single vertex — the shape assumed by the
    /// §3.2 systolic designs (Fig. 1a).
    pub fn is_single_source_sink_uniform(&self) -> bool {
        let s = self.num_stages();
        if s < 3 || self.stage_size(0) != 1 || self.stage_size(s - 1) != 1 {
            return false;
        }
        let m = self.stage_size(1);
        (1..s - 1).all(|i| self.stage_size(i) == m)
    }

    /// True when every stage has the same width (Fig. 1b shape: multiple
    /// sources and sinks).
    pub fn is_uniform(&self) -> bool {
        let m = self.stage_size(0);
        (0..self.num_stages()).all(|i| self.stage_size(i) == m)
    }

    /// The paper's Figure 1(a): a five-stage graph with one source, one
    /// sink, and three vertices in each intermediate stage.  The figure's
    /// printed edge costs are not legible in the archival scan, so the
    /// costs here are representative small integers; every experiment that
    /// uses this graph checks *structure and schedule*, not specific cost
    /// values.
    pub fn fig_1a() -> MultistageGraph {
        let a = Matrix::from_rows(1, 3, [2, 4, 3].into_iter().map(MinPlus::from).collect());
        let b = Matrix::from_rows(
            3,
            3,
            [7, 4, 6, 2, 9, 5, 8, 3, 1]
                .into_iter()
                .map(MinPlus::from)
                .collect(),
        );
        let c = Matrix::from_rows(
            3,
            3,
            [4, 1, 8, 6, 2, 7, 5, 9, 3]
                .into_iter()
                .map(MinPlus::from)
                .collect(),
        );
        let d = Matrix::from_rows(3, 1, [5, 2, 6].into_iter().map(MinPlus::from).collect());
        MultistageGraph::new(vec![a, b, c, d])
    }

    /// The paper's Figure 1(b): four stages (`X₁ … X₄`) of three vertices
    /// each, with multiple sources and sinks.  Costs are representative.
    pub fn fig_1b() -> MultistageGraph {
        MultistageGraph::uniform_from_fn(4, 3, |s, i, j| {
            Cost::from(((s + 1) * 3 + i * 2 + j * 5) as i64 % 11)
        })
    }

    /// The minimum source→sink cost computed by the reference matrix
    /// string product (single-source/single-sink graphs yield a 1×1
    /// result; otherwise the matrix of all source/sink pair optima).
    pub fn optimal_cost_matrix(&self) -> Matrix<MinPlus> {
        Matrix::string_product(&self.costs)
    }

    /// The minimum cost over all source/sink pairs.
    pub fn optimal_cost(&self) -> Cost {
        let m = self.optimal_cost_matrix();
        let mut best = Cost::INF;
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                best = best.min(m.get(i, j).0);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_1a_shape() {
        let g = MultistageGraph::fig_1a();
        assert_eq!(g.num_stages(), 5);
        assert_eq!(g.stage_size(0), 1);
        assert_eq!(g.stage_size(1), 3);
        assert_eq!(g.stage_size(4), 1);
        assert!(g.is_single_source_sink_uniform());
        assert!(!g.is_uniform());
        assert_eq!(g.num_vertices(), 11);
        assert_eq!(g.num_edges(), 3 + 9 + 9 + 3);
    }

    #[test]
    fn fig_1b_shape() {
        let g = MultistageGraph::fig_1b();
        assert_eq!(g.num_stages(), 4);
        assert!(g.is_uniform());
        assert!(!g.is_single_source_sink_uniform());
        assert_eq!(g.num_vertices(), 12);
    }

    #[test]
    fn fig_1a_optimal_cost_is_1x1() {
        let g = MultistageGraph::fig_1a();
        let m = g.optimal_cost_matrix();
        assert_eq!((m.rows(), m.cols()), (1, 1));
        assert!(m.get(0, 0).0.is_finite());
        // lower bound: sum of per-stage minimum edge costs
        let lb: i64 = [2, 1, 1, 2].iter().sum();
        assert!(m.get(0, 0).0 >= Cost::from(lb));
    }

    #[test]
    fn edge_cost_roundtrip() {
        let mut g = MultistageGraph::fig_1b();
        g.set_edge_cost(1, 2, 0, Cost::from(99));
        assert_eq!(g.edge_cost(1, 2, 0), Cost::from(99));
    }

    #[test]
    fn uniform_from_fn_dimensions() {
        let g = MultistageGraph::uniform_from_fn(6, 4, |_, i, j| Cost::from((i + j) as i64));
        assert_eq!(g.num_stages(), 6);
        assert!(g.is_uniform());
        assert_eq!(g.cost_matrix(0).rows(), 4);
        assert_eq!(g.edge_cost(3, 1, 2), Cost::from(3));
    }

    #[test]
    fn optimal_cost_single_stage_pair() {
        let g = MultistageGraph::new(vec![Matrix::from_rows(
            2,
            2,
            [5, 3, 9, 1].into_iter().map(MinPlus::from).collect(),
        )]);
        assert_eq!(g.optimal_cost(), Cost::from(1));
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_stage_sizes_rejected() {
        let a = Matrix::<MinPlus>::zeros(2, 3);
        let b = Matrix::<MinPlus>::zeros(2, 2);
        let _ = MultistageGraph::new(vec![a, b]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        let a = Matrix::<MinPlus>::zeros(2, 3);
        let b = Matrix::<MinPlus>::zeros(2, 2);
        assert_eq!(
            MultistageGraph::try_new(vec![a.clone(), b.clone()]),
            Err(SdpError::InnerDimMismatch {
                left_cols: 3,
                right_rows: 2
            })
        );
        assert_eq!(
            MultistageGraph::try_new(vec![]),
            Err(SdpError::EmptyMatrixString)
        );
        let g = MultistageGraph::try_new(vec![b.clone(), b.clone()]).unwrap();
        assert_eq!(g, MultistageGraph::new(vec![b.clone(), b]));
    }

    #[test]
    fn inf_edges_not_counted() {
        let mut m = Matrix::<MinPlus>::zeros(2, 2); // all INF
        m.set(0, 1, MinPlus::from(4));
        let g = MultistageGraph::new(vec![m]);
        assert_eq!(g.num_edges(), 1);
    }
}
