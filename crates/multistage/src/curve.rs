//! Curve detection by dynamic programming — the application behind the
//! paper's reference \[9\] (Clarke & Dyer, "Systolic Array for a Dynamic
//! Programming Application", curve and line detection).
//!
//! The classical formulation: an edge-magnitude image of `W` columns and
//! `H` rows; a *curve* is one row position per column with bounded
//! row-to-row movement (a curvature constraint).  Finding the maximum-
//! merit curve is a serial DP over a multistage graph — columns are
//! stages, rows are vertices, and the edge cost trades smoothness against
//! edge strength.  Because this crate's machinery minimizes, merit is
//! negated into a cost: `cost = curvature·|Δrow| + (mag_max − magnitude)`.

// Grid/stage updates read clearer with explicit indices.
#![allow(clippy::needless_range_loop)]
use crate::graph::MultistageGraph;
use crate::solve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdp_semiring::Cost;

/// A synthetic edge-magnitude image with a known embedded curve.
#[derive(Clone, Debug)]
pub struct SyntheticImage {
    /// Columns (stages).
    pub width: usize,
    /// Rows (vertices per stage).
    pub height: usize,
    /// Row-major magnitudes `mag[col][row]`, in `0..=mag_max`.
    pub mag: Vec<Vec<i64>>,
    /// Maximum magnitude value used.
    pub mag_max: i64,
    /// Ground-truth curve: the embedded row per column.
    pub truth: Vec<usize>,
}

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct CurveConfig {
    /// Cost per unit of row change between adjacent columns.
    pub curvature_penalty: i64,
    /// Maximum allowed row change per column (larger jumps cost `INF`).
    pub max_step: usize,
}

impl Default for CurveConfig {
    fn default() -> Self {
        CurveConfig {
            curvature_penalty: 3,
            max_step: 1,
        }
    }
}

/// The detection result.
#[derive(Clone, Debug)]
pub struct DetectedCurve {
    /// Detected row per column.
    pub rows: Vec<usize>,
    /// Total path cost (lower = stronger, smoother curve).
    pub cost: Cost,
}

impl SyntheticImage {
    /// Generates a `width × height` image containing one smooth random
    /// curve of strong magnitudes over uniform noise.
    ///
    /// * `signal` — magnitude of curve pixels (should exceed the noise
    ///   ceiling for reliable detection);
    /// * `noise` — background magnitudes are drawn from `0..=noise`.
    pub fn generate(seed: u64, width: usize, height: usize, signal: i64, noise: i64) -> Self {
        assert!(width >= 2 && height >= 1);
        assert!(signal > 0 && noise >= 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mag = vec![vec![0i64; height]; width];
        for col in mag.iter_mut() {
            for px in col.iter_mut() {
                *px = rng.gen_range(0..=noise);
            }
        }
        // random smooth walk
        let mut row = rng.gen_range(0..height);
        let mut truth = Vec::with_capacity(width);
        for col in 0..width {
            truth.push(row);
            mag[col][row] = signal;
            let step: i64 = rng.gen_range(-1..=1);
            row = (row as i64 + step).clamp(0, height as i64 - 1) as usize;
        }
        SyntheticImage {
            width,
            height,
            mag,
            mag_max: signal.max(noise),
            truth,
        }
    }

    /// Builds the multistage graph of the detection DP: stage `s` =
    /// column `s`, vertex = row, edge cost per the module formulation.
    /// The magnitude of the *destination* pixel is charged on each edge,
    /// plus the full first-column magnitude on the stage-0 side (folded
    /// into the first transition so the graph stays edge-cost-only).
    pub fn to_multistage(&self, cfg: CurveConfig) -> MultistageGraph {
        let h = self.height;
        let mats = (0..self.width - 1)
            .map(|s| {
                sdp_semiring::Matrix::from_fn(h, h, |i, j| {
                    let step = i.abs_diff(j);
                    if step > cfg.max_step {
                        return sdp_semiring::MinPlus(Cost::INF);
                    }
                    let mut c =
                        cfg.curvature_penalty * step as i64 + (self.mag_max - self.mag[s + 1][j]);
                    if s == 0 {
                        c += self.mag_max - self.mag[0][i];
                    }
                    sdp_semiring::MinPlus(Cost::from(c))
                })
            })
            .collect();
        MultistageGraph::new(mats)
    }

    /// Runs the sequential DP detector.
    pub fn detect(&self, cfg: CurveConfig) -> DetectedCurve {
        let g = self.to_multistage(cfg);
        let dp = solve::forward_dp(&g);
        DetectedCurve {
            rows: dp.path.clone(),
            cost: dp.cost,
        }
    }

    /// Fraction of columns where `detected` is within `tol` rows of the
    /// embedded ground truth.
    pub fn accuracy(&self, detected: &[usize], tol: usize) -> f64 {
        assert_eq!(detected.len(), self.width);
        let hits = detected
            .iter()
            .zip(&self.truth)
            .filter(|&(&d, &t)| d.abs_diff(t) <= tol)
            .count();
        hits as f64 / self.width as f64
    }

    /// ASCII rendering: ground truth `*`, detection `o`, overlap `@`.
    pub fn render(&self, detected: &[usize]) -> String {
        let mut out = String::new();
        for r in 0..self.height {
            for c in 0..self.width {
                let t = self.truth[c] == r;
                let d = detected.get(c).copied() == Some(r);
                out.push(match (t, d) {
                    (true, true) => '@',
                    (true, false) => '*',
                    (false, true) => 'o',
                    (false, false) => {
                        if self.mag[c][r] > self.mag_max / 2 {
                            '+'
                        } else {
                            '.'
                        }
                    }
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_image_detected_exactly() {
        // strong signal, zero noise: the detector must recover the curve.
        let img = SyntheticImage::generate(1, 30, 8, 100, 0);
        let det = img.detect(CurveConfig::default());
        assert_eq!(det.rows, img.truth);
        assert!((img.accuracy(&det.rows, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_image_detected_closely() {
        for seed in 0..5 {
            let img = SyntheticImage::generate(seed, 40, 10, 100, 60);
            let det = img.detect(CurveConfig::default());
            let acc = img.accuracy(&det.rows, 1);
            assert!(acc > 0.8, "seed {seed}: accuracy {acc}");
        }
    }

    #[test]
    fn curvature_constraint_respected() {
        let img = SyntheticImage::generate(3, 25, 12, 100, 30);
        let cfg = CurveConfig {
            curvature_penalty: 2,
            max_step: 1,
        };
        let det = img.detect(cfg);
        for w in det.rows.windows(2) {
            assert!(w[0].abs_diff(w[1]) <= 1);
        }
    }

    #[test]
    fn higher_penalty_gives_smoother_curves() {
        let img = SyntheticImage::generate(7, 40, 12, 80, 70);
        let wiggly = img.detect(CurveConfig {
            curvature_penalty: 0,
            max_step: 3,
        });
        let smooth = img.detect(CurveConfig {
            curvature_penalty: 50,
            max_step: 3,
        });
        let bends =
            |rows: &[usize]| -> usize { rows.windows(2).map(|w| w[0].abs_diff(w[1])).sum() };
        assert!(bends(&smooth.rows) <= bends(&wiggly.rows));
    }

    #[test]
    fn graph_shape_matches_image() {
        let img = SyntheticImage::generate(5, 10, 6, 50, 10);
        let g = img.to_multistage(CurveConfig::default());
        assert_eq!(g.num_stages(), 10);
        assert!(g.is_uniform());
        assert_eq!(g.stage_size(0), 6);
    }

    #[test]
    fn render_marks_truth_and_detection() {
        let img = SyntheticImage::generate(2, 10, 4, 100, 0);
        let det = img.detect(CurveConfig::default());
        let pic = img.render(&det.rows);
        assert!(pic.contains('@')); // perfect overlap on clean image
        assert_eq!(pic.lines().count(), 4);
    }
}
