//! Branch-and-bound with dominance tests over the multistage OR-tree.
//!
//! §1 of the paper places DP among search formulations: "DP can also be
//! formulated as a special case of the branch-and-bound algorithm, which
//! is a general top-down OR-tree search procedure with dominance tests"
//! (citing Morin–Marsten, Ibaraki, and the authors' own B&B work).  This
//! module implements that formulation for multistage graphs:
//!
//! * the OR-tree's nodes are partial paths (a stage and a vertex with an
//!   accumulated cost);
//! * **dominance test**: two partial paths ending at the same
//!   `(stage, vertex)` compare by accumulated cost — the costlier one is
//!   dominated and pruned (this *is* Bellman's principle applied as a
//!   pruning rule);
//! * **bounding**: a node whose accumulated cost already reaches the
//!   incumbent is cut.
//!
//! With best-first order and dominance, the search expands each
//! `(stage, vertex)` at most once — exactly the DP table — which the
//! tests verify; with dominance disabled it degenerates toward
//! enumeration, quantifying what the Principle of Optimality buys.

// Grid/stage updates read clearer with explicit indices.
#![allow(clippy::needless_range_loop)]
use crate::graph::MultistageGraph;
use sdp_semiring::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Search statistics and result.
#[derive(Clone, Debug, PartialEq)]
pub struct BnbResult {
    /// Optimal source→sink cost.
    pub cost: Cost,
    /// One optimal path (vertex per stage).
    pub path: Vec<usize>,
    /// OR-tree nodes expanded.
    pub expanded: u64,
    /// Nodes discarded by the dominance test.
    pub dominated: u64,
    /// Nodes discarded by the incumbent bound.
    pub bounded: u64,
}

/// Configuration for the search.
#[derive(Clone, Copy, Debug)]
pub struct BnbConfig {
    /// Apply the dominance test (prune costlier duplicates of a state).
    pub dominance: bool,
    /// Apply incumbent bounding.
    pub bounding: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            dominance: true,
            bounding: true,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Node {
    cost: Cost,
    stage: usize,
    path: Vec<usize>,
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .cmp(&other.cost)
            .then(self.stage.cmp(&other.stage))
            .then(self.path.cmp(&other.path))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Best-first branch-and-bound search of `g`.
pub fn search(g: &MultistageGraph, cfg: BnbConfig) -> BnbResult {
    let s = g.num_stages();
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    for v in 0..g.stage_size(0) {
        heap.push(Reverse(Node {
            cost: Cost::ZERO,
            stage: 0,
            path: vec![v],
        }));
    }
    // best known cost per (stage, vertex) for dominance
    let mut best_state: Vec<Vec<Cost>> =
        (0..s).map(|st| vec![Cost::INF; g.stage_size(st)]).collect();
    let mut incumbent = Cost::INF;
    let mut best_path = Vec::new();
    let mut expanded = 0u64;
    let mut dominated = 0u64;
    let mut bounded = 0u64;

    while let Some(Reverse(node)) = heap.pop() {
        let v = *node.path.last().expect("non-empty path");
        if cfg.bounding && node.cost >= incumbent {
            bounded += 1;
            continue;
        }
        // Equal-cost duplicates still expand; ties are rare and the first
        // pop wins the state table below.
        if cfg.dominance && node.cost > best_state[node.stage][v] {
            dominated += 1;
            continue;
        }
        expanded += 1;
        if node.stage == s - 1 {
            if node.cost < incumbent {
                incumbent = node.cost;
                best_path = node.path.clone();
            }
            continue;
        }
        for w in 0..g.stage_size(node.stage + 1) {
            let e = g.edge_cost(node.stage, v, w);
            if e.is_inf() {
                continue;
            }
            let c = node.cost + e;
            if cfg.bounding && c >= incumbent {
                bounded += 1;
                continue;
            }
            if cfg.dominance {
                if c >= best_state[node.stage + 1][w] {
                    dominated += 1;
                    continue;
                }
                best_state[node.stage + 1][w] = c;
            }
            let mut path = node.path.clone();
            path.push(w);
            heap.push(Reverse(Node {
                cost: c,
                stage: node.stage + 1,
                path,
            }));
        }
    }
    BnbResult {
        cost: incumbent,
        path: best_path,
        expanded,
        dominated,
        bounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, solve};

    #[test]
    fn finds_the_dp_optimum() {
        for seed in 0..15 {
            let g = generate::random_uniform(seed, 6, 4, 0, 30);
            let res = search(&g, BnbConfig::default());
            let dp = solve::forward_dp(&g);
            assert_eq!(res.cost, dp.cost, "seed {seed}");
            assert_eq!(solve::path_cost(&g, &res.path), res.cost, "seed {seed}");
        }
    }

    #[test]
    fn dominance_bounds_expansions_by_state_count() {
        // With dominance + best-first, each (stage, vertex) expands at
        // most once: expanded <= total vertices.
        let g = generate::random_uniform(3, 10, 6, 0, 50);
        let res = search(&g, BnbConfig::default());
        assert!(
            res.expanded <= g.num_vertices() as u64,
            "expanded {} > vertices {}",
            res.expanded,
            g.num_vertices()
        );
    }

    #[test]
    fn without_dominance_search_blows_up() {
        let g = generate::random_uniform(7, 6, 4, 1, 9);
        let with = search(&g, BnbConfig::default());
        let without = search(
            &g,
            BnbConfig {
                dominance: false,
                bounding: true,
            },
        );
        assert_eq!(with.cost, without.cost);
        assert!(
            without.expanded > 2 * with.expanded,
            "dominance bought too little: {} vs {}",
            without.expanded,
            with.expanded
        );
    }

    #[test]
    fn pure_enumeration_matches_brute_force_scale() {
        // no dominance, no bounding: expansions ~ number of path prefixes
        let g = generate::random_uniform(1, 4, 3, 1, 9);
        let res = search(
            &g,
            BnbConfig {
                dominance: false,
                bounding: false,
            },
        );
        // prefixes: 3 + 9 + 27 + 81 = 120
        assert_eq!(res.expanded, 120);
        assert_eq!(res.cost, solve::forward_dp(&g).cost);
    }

    #[test]
    fn sparse_graphs_handled() {
        for seed in 0..10 {
            let g = generate::random_sparse(seed, 6, 4, 1, 20, 0.6);
            let res = search(&g, BnbConfig::default());
            assert_eq!(res.cost, solve::forward_dp(&g).cost, "seed {seed}");
        }
    }

    #[test]
    fn dominance_counts_reported() {
        let g = generate::random_uniform(4, 8, 5, 0, 9);
        let res = search(&g, BnbConfig::default());
        assert!(res.dominated > 0);
    }
}
