//! Sequential dynamic-programming baselines and the brute-force oracle.
// Index loops mirror the paper's per-stage/per-vertex recurrences and
// write one table while reading another; iterator forms obscure that.
#![allow(clippy::needless_range_loop)]
//!
//! These are the single-processor references the systolic designs are
//! compared against, both for *correctness* (same optimum, same path cost)
//! and for *work* (the serial iteration counts that form the numerator of
//! the paper's processor-utilization measure, Eq. 9).

use crate::graph::MultistageGraph;
use sdp_semiring::Cost;

/// The result of a sequential DP sweep over a multistage graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DpSolution {
    /// Optimal cost over all source/sink pairs.
    pub cost: Cost,
    /// One optimal path: vertex index per stage (empty if no path).
    pub path: Vec<usize>,
    /// `value[s][v]`: optimal cost-to-go (forward) or cost-so-far
    /// (backward) for vertex `v` of stage `s`.
    pub value: Vec<Vec<Cost>>,
    /// Iterations performed, where one iteration is the paper's unit of a
    /// shift–multiply–accumulate (one add + one compare).
    pub iterations: u64,
}

/// Forward monadic DP (Eq. 1): `f₁(i) = min_j [c_{i,j} + f₁(j)]`, the
/// minimum cost from each vertex *to the sink stage*, computed from the
/// last stage backwards.
///
/// ```
/// use sdp_multistage::{solve, MultistageGraph};
/// let g = MultistageGraph::fig_1a();
/// let sol = solve::forward_dp(&g);
/// assert_eq!(sol.cost, sdp_semiring::Cost::from(9));
/// assert_eq!(sol.path.len(), g.num_stages());
/// assert_eq!(solve::path_cost(&g, &sol.path), sol.cost);
/// ```
pub fn forward_dp(g: &MultistageGraph) -> DpSolution {
    let s = g.num_stages();
    let mut value: Vec<Vec<Cost>> = (0..s).map(|st| vec![Cost::INF; g.stage_size(st)]).collect();
    let mut choice: Vec<Vec<Option<usize>>> =
        (0..s).map(|st| vec![None; g.stage_size(st)]).collect();
    let mut iterations = 0u64;
    for v in value[s - 1].iter_mut() {
        *v = Cost::ZERO;
    }
    for st in (0..s - 1).rev() {
        for i in 0..g.stage_size(st) {
            let mut best = Cost::INF;
            let mut arg = None;
            for j in 0..g.stage_size(st + 1) {
                iterations += 1;
                let cand = g.edge_cost(st, i, j) + value[st + 1][j];
                if cand < best {
                    best = cand;
                    arg = Some(j);
                }
            }
            value[st][i] = best;
            choice[st][i] = arg;
        }
    }
    // Best source, then walk choices forward.
    let (cost, start) = value[0]
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .min()
        .unwrap();
    let mut path = Vec::new();
    if cost.is_finite() {
        let mut v = start;
        path.push(v);
        for st in 0..s - 1 {
            match choice[st][v] {
                Some(n) => {
                    v = n;
                    path.push(v);
                }
                None => break,
            }
        }
    }
    DpSolution {
        cost,
        path,
        value,
        iterations,
    }
}

/// Backward monadic DP (Eq. 2): `f₂(i) = min_j [f₂(j) + c_{j,i}]`, the
/// minimum cost from the source stage *to each vertex*, computed from the
/// first stage forwards.
pub fn backward_dp(g: &MultistageGraph) -> DpSolution {
    let s = g.num_stages();
    let mut value: Vec<Vec<Cost>> = (0..s).map(|st| vec![Cost::INF; g.stage_size(st)]).collect();
    let mut pred: Vec<Vec<Option<usize>>> = (0..s).map(|st| vec![None; g.stage_size(st)]).collect();
    let mut iterations = 0u64;
    for v in value[0].iter_mut() {
        *v = Cost::ZERO;
    }
    for st in 1..s {
        for i in 0..g.stage_size(st) {
            let mut best = Cost::INF;
            let mut arg = None;
            for j in 0..g.stage_size(st - 1) {
                iterations += 1;
                let cand = value[st - 1][j] + g.edge_cost(st - 1, j, i);
                if cand < best {
                    best = cand;
                    arg = Some(j);
                }
            }
            value[st][i] = best;
            pred[st][i] = arg;
        }
    }
    let (cost, end) = value[s - 1]
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .min()
        .unwrap();
    let mut path = Vec::new();
    if cost.is_finite() {
        let mut v = end;
        path.push(v);
        for st in (1..s).rev() {
            match pred[st][v] {
                Some(p) => {
                    v = p;
                    path.push(v);
                }
                None => break,
            }
        }
        path.reverse();
    }
    DpSolution {
        cost,
        path,
        value,
        iterations,
    }
}

/// Exhaustive path enumeration — exponential, test-oracle only.
pub fn brute_force(g: &MultistageGraph) -> (Cost, Vec<usize>) {
    let s = g.num_stages();
    let mut best = (Cost::INF, Vec::new());
    let mut stack: Vec<(usize, Vec<usize>, Cost)> = (0..g.stage_size(0))
        .map(|i| (1, vec![i], Cost::ZERO))
        .collect();
    while let Some((st, path, acc)) = stack.pop() {
        if st == s {
            if acc < best.0 {
                best = (acc, path);
            }
            continue;
        }
        let from = *path.last().unwrap();
        for j in 0..g.stage_size(st) {
            let c = g.edge_cost(st - 1, from, j);
            if c.is_finite() {
                let mut p = path.clone();
                p.push(j);
                stack.push((st + 1, p, acc + c));
            }
        }
    }
    best
}

/// Evaluates the cost of an explicit path (vertex index per stage).
pub fn path_cost(g: &MultistageGraph, path: &[usize]) -> Cost {
    assert_eq!(path.len(), g.num_stages(), "path must cover every stage");
    path.windows(2)
        .enumerate()
        .map(|(s, w)| g.edge_cost(s, w[0], w[1]))
        .sum()
}

/// The paper's closed-form serial iteration counts (PU numerators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SerialCounts;

impl SerialCounts {
    /// Single-processor iterations for the §3.2 matrix-string designs on
    /// an `(N+1)`-stage single-source/single-sink graph with `m` nodes per
    /// intermediate stage: `(N−2)·m² + m`.
    pub fn matrix_string(n_matrices: u64, m: u64) -> u64 {
        assert!(n_matrices >= 2);
        (n_matrices - 2) * m * m + m
    }

    /// Single-processor iterations for the Fig. 5 node-value design on an
    /// `N`-stage graph with `m` values per stage: `(N−1)·m² + m`.
    pub fn node_value(n_stages: u64, m: u64) -> u64 {
        assert!(n_stages >= 1);
        (n_stages - 1) * m * m + m
    }

    /// The PU predicted by Eq. 9 for Design 1/2:
    /// `PU = (N−2)/N + 1/(N·m)`.
    pub fn eq9_pu(n_matrices: u64, m: u64) -> f64 {
        let n = n_matrices as f64;
        let m = m as f64;
        (n - 2.0) / n + 1.0 / (n * m)
    }

    /// The PU claimed for Design 3: `((N−1)m² + m) / ((N+1)·m·m)`.
    pub fn design3_pu(n_stages: u64, m: u64) -> f64 {
        let n = n_stages as f64;
        let m = m as f64;
        ((n - 1.0) * m * m + m) / ((n + 1.0) * m * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn forward_equals_backward_equals_matrix_product() {
        for seed in 0..10 {
            let g = generate::random_uniform(seed, 6, 4, 0, 20);
            let f = forward_dp(&g);
            let b = backward_dp(&g);
            assert_eq!(f.cost, b.cost, "seed {seed}");
            assert_eq!(f.cost, g.optimal_cost(), "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        for seed in 0..10 {
            let g = generate::random_uniform(seed, 5, 3, 0, 9);
            let (bf_cost, bf_path) = brute_force(&g);
            let f = forward_dp(&g);
            assert_eq!(f.cost, bf_cost, "seed {seed}");
            assert_eq!(path_cost(&g, &bf_path), bf_cost);
        }
    }

    #[test]
    fn traceback_paths_achieve_optimal_cost() {
        for seed in 0..10 {
            let g = generate::random_uniform(seed, 7, 5, 0, 50);
            let f = forward_dp(&g);
            let b = backward_dp(&g);
            assert_eq!(path_cost(&g, &f.path), f.cost, "fwd seed {seed}");
            assert_eq!(path_cost(&g, &b.path), b.cost, "bwd seed {seed}");
        }
    }

    #[test]
    fn sparse_graphs_with_inf_edges() {
        for seed in 0..10 {
            let g = generate::random_sparse(seed, 6, 4, 1, 9, 0.6);
            let f = forward_dp(&g);
            let (bf_cost, _) = brute_force(&g);
            assert_eq!(f.cost, bf_cost, "seed {seed}");
        }
    }

    #[test]
    fn iteration_count_matches_structure() {
        // Uniform S stages, m wide: (S-1) transitions of m*m iterations.
        let g = generate::random_uniform(0, 6, 4, 0, 9);
        let f = forward_dp(&g);
        assert_eq!(f.iterations, 5 * 16);
    }

    #[test]
    fn single_source_sink_iterations() {
        // Fig 1a shape with S=5 stages (N=4 matrices), m=3:
        // transitions: 1x3 (3 iters) + 3x3 (9) + 3x3 (9) + 3x1 (3) = 24.
        let g = MultistageGraph::fig_1a();
        let f = forward_dp(&g);
        assert_eq!(f.iterations, 24);
    }

    #[test]
    fn serial_counts_formulas() {
        assert_eq!(SerialCounts::matrix_string(4, 3), 2 * 9 + 3);
        assert_eq!(SerialCounts::node_value(4, 3), 3 * 9 + 3);
        let pu = SerialCounts::eq9_pu(4, 3);
        assert!((pu - (2.0 / 4.0 + 1.0 / 12.0)).abs() < 1e-12);
        let pu3 = SerialCounts::design3_pu(4, 3);
        assert!((pu3 - 30.0 / 45.0).abs() < 1e-12);
    }

    #[test]
    fn value_tables_have_stage_shapes() {
        let g = MultistageGraph::fig_1a();
        let f = forward_dp(&g);
        assert_eq!(f.value.len(), 5);
        assert_eq!(f.value[0].len(), 1);
        assert_eq!(f.value[1].len(), 3);
        assert_eq!(f.value[4].len(), 1);
        // sink stage cost-to-go is zero
        assert_eq!(f.value[4][0], Cost::ZERO);
    }

    #[test]
    fn fig_1a_known_optimum() {
        // With the representative costs of fig_1a, the optimum is
        // reproducible: verify against brute force once and pin it.
        let g = MultistageGraph::fig_1a();
        let (bf, _) = brute_force(&g);
        assert_eq!(forward_dp(&g).cost, bf);
        assert_eq!(bf, Cost::from(9)); // pinned regression value
    }

    #[test]
    #[should_panic(expected = "cover every stage")]
    fn path_cost_wrong_length_panics() {
        let g = MultistageGraph::fig_1a();
        let _ = path_cost(&g, &[0, 0]);
    }

    #[test]
    fn node_value_graphs_solve_consistently() {
        let nv = generate::traffic_light(11, 5, 4);
        let g = nv.to_multistage();
        let f = forward_dp(&g);
        let (bf, _) = brute_force(&g);
        assert_eq!(f.cost, bf);
    }
}
