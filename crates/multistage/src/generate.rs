//! Workload generators: random instances and the four applications the
//! paper motivates in §2.2.
//!
//! Each generator returns either an edge-cost [`MultistageGraph`] or a
//! node-value [`NodeValueGraph`]; the latter match the paper's examples
//! where "the edge costs are expressed as functions of the nodes
//! connected".

use crate::graph::MultistageGraph;
use crate::node_value::{
    AbsDiff, AsymmetricRamp, EdgeCostFn, InventoryCost, NodeValueGraph, ServiceDelay, SquaredDiff,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdp_fault::SdpError;
use sdp_semiring::Cost;

/// Uniform-random edge-cost multistage graph: `stages` stages of `m`
/// vertices, costs drawn from `lo..=hi`.
pub fn random_uniform(seed: u64, stages: usize, m: usize, lo: i64, hi: i64) -> MultistageGraph {
    assert!(lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    MultistageGraph::uniform_from_fn(stages, m, |_, _, _| Cost::from(rng.gen_range(lo..=hi)))
}

/// Non-panicking [`random_uniform`]: validates the stage count, width,
/// and cost range before generating.
pub fn try_random_uniform(
    seed: u64,
    stages: usize,
    m: usize,
    lo: i64,
    hi: i64,
) -> Result<MultistageGraph, SdpError> {
    validate_shape(stages, 2, m)?;
    validate_range(lo, hi)?;
    Ok(random_uniform(seed, stages, m, lo, hi))
}

/// Single-source / single-sink random graph in the Fig. 1(a) shape:
/// `stages` total stages (including the degenerate first and last), `m`
/// vertices per intermediate stage.
pub fn random_single_source_sink(
    seed: u64,
    stages: usize,
    m: usize,
    lo: i64,
    hi: i64,
) -> MultistageGraph {
    assert!(stages >= 3, "need source, >=1 intermediate, sink");
    assert!(lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = |_r: usize, _c: usize| sdp_semiring::MinPlus(Cost::from(rng.gen_range(lo..=hi)));
    let mut mats = Vec::with_capacity(stages - 1);
    mats.push(sdp_semiring::Matrix::from_fn(1, m, &mut cost));
    for _ in 0..stages - 3 {
        mats.push(sdp_semiring::Matrix::from_fn(m, m, &mut cost));
    }
    mats.push(sdp_semiring::Matrix::from_fn(m, 1, &mut cost));
    MultistageGraph::new(mats)
}

/// Non-panicking [`random_single_source_sink`]: validates the stage
/// count (≥ 3: source, intermediates, sink), width, and cost range.
pub fn try_random_single_source_sink(
    seed: u64,
    stages: usize,
    m: usize,
    lo: i64,
    hi: i64,
) -> Result<MultistageGraph, SdpError> {
    validate_shape(stages, 3, m)?;
    validate_range(lo, hi)?;
    Ok(random_single_source_sink(seed, stages, m, lo, hi))
}

fn validate_shape(stages: usize, min_stages: usize, m: usize) -> Result<(), SdpError> {
    if stages < min_stages {
        return Err(SdpError::BadParameter {
            name: "stages",
            got: stages as u64,
            min: min_stages as u64,
        });
    }
    if m < 1 {
        return Err(SdpError::BadParameter {
            name: "m",
            got: m as u64,
            min: 1,
        });
    }
    Ok(())
}

fn validate_range(lo: i64, hi: i64) -> Result<(), SdpError> {
    if lo > hi {
        return Err(SdpError::EmptyRange { lo, hi });
    }
    Ok(())
}

/// Sparse random graph: like [`random_uniform`] but each edge is absent
/// (cost `INF`) with probability `p_absent`, while guaranteeing at least
/// one outgoing edge per vertex so a path always exists.
pub fn random_sparse(
    seed: u64,
    stages: usize,
    m: usize,
    lo: i64,
    hi: i64,
    p_absent: f64,
) -> MultistageGraph {
    assert!((0.0..1.0).contains(&p_absent));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultistageGraph::uniform_from_fn(stages, m, |_, _, _| {
        if rng.gen_bool(p_absent) {
            Cost::INF
        } else {
            Cost::from(rng.gen_range(lo..=hi))
        }
    });
    // Repair: every vertex keeps at least one outgoing edge.
    for s in 0..stages - 1 {
        for i in 0..m {
            let has_edge = (0..m).any(|j| g.edge_cost(s, i, j).is_finite());
            if !has_edge {
                let j = rng.gen_range(0..m);
                g.set_edge_cost(s, i, j, Cost::from(rng.gen_range(lo..=hi)));
            }
        }
    }
    g
}

/// Traffic-light timing (§2.2): stage `i` holds the candidate times for
/// the light to enter state `i`; the edge cost is the timing difference.
pub fn traffic_light(seed: u64, states: usize, slots: usize) -> NodeValueGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut base = 0i64;
    NodeValueGraph::uniform_from_fn(states, slots, Box::new(AbsDiff), |s, j| {
        if s > 0 && j == 0 {
            base += rng.gen_range(5..15);
        }
        base + (j as i64) * rng.gen_range(1..4)
    })
}

/// Circuit voltage assignment (§2.2): stage `i` holds candidate voltages
/// at point `i`; cost is quadratic power dissipation across the step.
pub fn circuit_voltage(seed: u64, points: usize, levels: usize) -> NodeValueGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    NodeValueGraph::uniform_from_fn(points, levels, Box::new(SquaredDiff), |_, j| {
        (j as i64) * 2 + rng.gen_range(0..2)
    })
}

/// Fluid-flow pump pressures (§2.2): raising pressure costs more than
/// lowering it (asymmetric ramp).
pub fn fluid_flow(seed: u64, pumps: usize, pressures: usize) -> NodeValueGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    NodeValueGraph::uniform_from_fn(
        pumps,
        pressures,
        Box::new(AsymmetricRamp::default()),
        |_, j| 10 + (j as i64) * rng.gen_range(2..5),
    )
}

/// Task-scheduling service times (§2.2): stage `i` holds candidate
/// service times for task `i`; cost is service plus tardiness.
pub fn task_scheduling(seed: u64, tasks: usize, choices: usize) -> NodeValueGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    NodeValueGraph::uniform_from_fn(tasks, choices, Box::new(ServiceDelay::default()), |_, j| {
        1 + (j as i64) + rng.gen_range(0..3)
    })
}

/// Inventory / multistage-production planning (§3.2's "inventory
/// systems"): stage `i` holds the candidate end-of-period inventory
/// levels `0, 1, …, levels−1` for period `i`; transitions that would
/// require negative production are `INF` (absent edges).
pub fn inventory(seed: u64, periods: usize, levels: usize) -> NodeValueGraph {
    assert!(periods >= 2 && levels >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let params = InventoryCost {
        demand: rng.gen_range(2..5),
        setup: rng.gen_range(5..12),
        unit: rng.gen_range(1..4),
        holding: rng.gen_range(1..3),
    };
    NodeValueGraph::uniform_from_fn(periods, levels, Box::new(params), |_, j| j as i64)
}

/// A node-value graph with an arbitrary cost function — the generic entry
/// point the examples use.
pub fn node_value_random(
    seed: u64,
    stages: usize,
    m: usize,
    f: Box<dyn EdgeCostFn>,
    lo: i64,
    hi: i64,
) -> NodeValueGraph {
    assert!(lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    NodeValueGraph::uniform_from_fn(stages, m, f, |_, _| rng.gen_range(lo..=hi))
}

/// Random matrix-chain dimensions `r₀ … r_N` for the §6.2 secondary
/// optimization problem (optimal parenthesization).
pub fn random_chain_dims(seed: u64, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    assert!(n >= 1 && lo >= 1 && lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..=n).map(|_| rng.gen_range(lo..=hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_uniform_is_deterministic_per_seed() {
        let a = random_uniform(7, 5, 4, 0, 9);
        let b = random_uniform(7, 5, 4, 0, 9);
        let c = random_uniform(8, 5, 4, 0, 9);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_uniform_respects_bounds() {
        let g = random_uniform(1, 4, 3, 2, 6);
        for s in 0..3 {
            for i in 0..3 {
                for j in 0..3 {
                    let c = g.edge_cost(s, i, j);
                    assert!(c >= Cost::from(2) && c <= Cost::from(6));
                }
            }
        }
    }

    #[test]
    fn single_source_sink_shape() {
        let g = random_single_source_sink(3, 6, 4, 1, 9);
        assert!(g.is_single_source_sink_uniform());
        assert_eq!(g.num_stages(), 6);
        assert_eq!(g.stage_size(0), 1);
        assert_eq!(g.stage_size(1), 4);
    }

    #[test]
    fn sparse_always_has_a_path() {
        for seed in 0..20 {
            let g = random_sparse(seed, 6, 4, 1, 9, 0.7);
            assert!(g.optimal_cost().is_finite(), "seed {seed} unreachable");
        }
    }

    #[test]
    fn traffic_light_monotone_slots() {
        let g = traffic_light(5, 4, 3);
        assert_eq!(g.num_stages(), 4);
        assert_eq!(g.stage_size(0), 3);
        // All costs are |Δt| >= 0.
        for s in 0..3 {
            for i in 0..3 {
                for j in 0..3 {
                    assert!(g.edge_cost(s, i, j) >= Cost::ZERO);
                }
            }
        }
    }

    #[test]
    fn application_generators_solvable() {
        for g in [
            circuit_voltage(2, 5, 4),
            fluid_flow(3, 5, 4),
            task_scheduling(4, 5, 4),
        ] {
            let ms = g.to_multistage();
            assert!(ms.optimal_cost().is_finite());
        }
    }

    #[test]
    fn inventory_always_has_a_feasible_plan() {
        for seed in 0..10 {
            let g = inventory(seed, 6, 5);
            let ms = g.to_multistage();
            let cost = crate::solve::forward_dp(&ms).cost;
            assert!(cost.is_finite(), "seed {seed}");
        }
    }

    #[test]
    fn try_generators_accept_valid_and_reject_bad_inputs() {
        assert_eq!(
            try_random_uniform(7, 5, 4, 0, 9).unwrap(),
            random_uniform(7, 5, 4, 0, 9)
        );
        assert_eq!(
            try_random_single_source_sink(3, 6, 4, 1, 9).unwrap(),
            random_single_source_sink(3, 6, 4, 1, 9)
        );
        assert_eq!(
            try_random_uniform(0, 1, 4, 0, 9),
            Err(SdpError::BadParameter {
                name: "stages",
                got: 1,
                min: 2
            })
        );
        assert_eq!(
            try_random_single_source_sink(0, 2, 4, 0, 9),
            Err(SdpError::BadParameter {
                name: "stages",
                got: 2,
                min: 3
            })
        );
        assert_eq!(
            try_random_uniform(0, 5, 0, 0, 9),
            Err(SdpError::BadParameter {
                name: "m",
                got: 0,
                min: 1
            })
        );
        assert_eq!(
            try_random_uniform(0, 5, 4, 9, 0),
            Err(SdpError::EmptyRange { lo: 9, hi: 0 })
        );
    }

    #[test]
    fn chain_dims_length_and_bounds() {
        let d = random_chain_dims(9, 6, 2, 10);
        assert_eq!(d.len(), 7);
        assert!(d.iter().all(|&r| (2..=10).contains(&r)));
    }
}
