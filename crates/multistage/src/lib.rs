//! Multistage graphs, workload generators, and sequential DP baselines.
//!
//! A *multistage graph* (Wah & Li, Fig. 1) partitions its vertices into
//! stages with edges only between adjacent stages; serial dynamic
//! programming is the search for a minimum-cost source→sink path in such a
//! graph.  This crate provides:
//!
//! * [`graph::MultistageGraph`] — the edge-cost representation, convertible
//!   to a string of min-plus matrices (Eq. 8);
//! * [`node_value::NodeValueGraph`] — the node-value representation of
//!   Eq. 4, where edge costs are `f(xᵢ, xᵢ₊₁)` of quantized node values
//!   (the input-bandwidth-saving form driving the Fig. 5 design);
//! * [`generate`] — random instances plus the four applications the paper
//!   names in §2.2 (traffic-light timing, circuit voltage, fluid flow,
//!   task scheduling);
//! * [`solve`] — sequential forward/backward DP with path traceback, the
//!   brute-force oracle, and the paper's serial iteration-count formulas
//!   used as PU numerators;
//! * [`bnb`] — the §1 branch-and-bound formulation: top-down OR-tree
//!   search with dominance tests, quantifying what the Principle of
//!   Optimality prunes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnb;
pub mod curve;
pub mod generate;
pub mod graph;
pub mod node_value;
pub mod solve;

pub use graph::MultistageGraph;
pub use node_value::{EdgeCostFn, NodeValueGraph};
pub use solve::{DpSolution, SerialCounts};
