//! The node-value formulation of a serial optimization problem (Eq. 4).
//!
//! §3.2 observes that feeding *edge costs* into a systolic array is the
//! input/output bottleneck: an `(N+1)`-stage graph with `m` nodes per stage
//! has `N·m²` edges but only `N·m` node values.  When edge costs are a
//! function `f(xᵢ, xᵢ₊₁)` of the *values* of the endpoints (Eq. 4), only
//! the values need enter the array — "an order-of-magnitude reduction in
//! the input overhead" — and the cost function is evaluated *inside* each
//! PE (component `F` of Fig. 5b).

use crate::graph::MultistageGraph;
use sdp_semiring::Cost;

/// An edge-cost function `f(x, y)` over quantized node values.
///
/// The paper assumes `f` is independent of the stage index `i` "for
/// simplicity"; [`EdgeCostFn::cost_at`] supports the general
/// stage-dependent `fᵢ` case (its default forwards to the
/// stage-independent [`EdgeCostFn::cost`]).  Implementations must be
/// pure.
pub trait EdgeCostFn: Send + Sync {
    /// The cost of the edge from a node with value `x` to one with `y`.
    fn cost(&self, x: i64, y: i64) -> Cost;

    /// Stage-dependent variant: the cost of the edge from stage `stage`
    /// (value `x`) to stage `stage + 1` (value `y`).
    fn cost_at(&self, stage: usize, x: i64, y: i64) -> Cost {
        let _ = stage;
        self.cost(x, y)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "f"
    }
}

/// Wraps an inner cost function with per-stage integer weights —
/// the general `fᵢ` case of Eq. 4.
pub struct StageWeighted<F> {
    /// The stage-independent base function.
    pub inner: F,
    /// `weights[i]` multiplies the cost of every stage-`i` edge
    /// (stages beyond the vector reuse the last weight).
    pub weights: Vec<i64>,
}

impl<F: EdgeCostFn> EdgeCostFn for StageWeighted<F> {
    fn cost(&self, x: i64, y: i64) -> Cost {
        self.inner.cost(x, y)
    }
    fn cost_at(&self, stage: usize, x: i64, y: i64) -> Cost {
        let w = *self
            .weights
            .get(stage)
            .or(self.weights.last())
            .unwrap_or(&1);
        match self.inner.cost(x, y).finite() {
            Some(c) => Cost::saturating_from(c.saturating_mul(w)),
            None => Cost::INF,
        }
    }
    fn name(&self) -> &'static str {
        "stage-weighted"
    }
}

/// `f(x, y) = |y − x|` — the traffic-light timing cost of §2.2 ("the cost
/// on an edge … is the difference in timings").
#[derive(Clone, Copy, Debug, Default)]
pub struct AbsDiff;

impl EdgeCostFn for AbsDiff {
    fn cost(&self, x: i64, y: i64) -> Cost {
        Cost::from((y - x).abs())
    }
    fn name(&self) -> &'static str {
        "|y - x|"
    }
}

/// `f(x, y) = (y − x)²` — quadratic transition penalty (the circuit-design
/// power-dissipation cost of §2.2, with unit resistance).
#[derive(Clone, Copy, Debug, Default)]
pub struct SquaredDiff;

impl EdgeCostFn for SquaredDiff {
    fn cost(&self, x: i64, y: i64) -> Cost {
        let d = y.saturating_sub(x);
        Cost::saturating_from(d.saturating_mul(d))
    }
    fn name(&self) -> &'static str {
        "(y - x)^2"
    }
}

/// `f(x, y) = max(y − x, 0) · a + max(x − y, 0) · b` — asymmetric ramp
/// cost (pump pressure increases cost more than decreases; the fluid-flow
/// application of §2.2).
#[derive(Clone, Copy, Debug)]
pub struct AsymmetricRamp {
    /// Cost per unit of increase.
    pub up: i64,
    /// Cost per unit of decrease.
    pub down: i64,
}

impl Default for AsymmetricRamp {
    fn default() -> Self {
        AsymmetricRamp { up: 3, down: 1 }
    }
}

impl EdgeCostFn for AsymmetricRamp {
    fn cost(&self, x: i64, y: i64) -> Cost {
        let d = y.saturating_sub(x);
        if d >= 0 {
            Cost::saturating_from(d.saturating_mul(self.up))
        } else {
            Cost::saturating_from(d.saturating_neg().saturating_mul(self.down))
        }
    }
    fn name(&self) -> &'static str {
        "ramp(up,down)"
    }
}

/// `f(x, y) = x + max(y − x − slack, 0)` — service time plus tardiness
/// beyond a slack window (the task-scheduling delay cost of §2.2).
#[derive(Clone, Copy, Debug)]
pub struct ServiceDelay {
    /// Allowed slack between consecutive task service times.
    pub slack: i64,
}

impl Default for ServiceDelay {
    fn default() -> Self {
        ServiceDelay { slack: 2 }
    }
}

impl EdgeCostFn for ServiceDelay {
    fn cost(&self, x: i64, y: i64) -> Cost {
        Cost::from(x + (y - x - self.slack).max(0))
    }
    fn name(&self) -> &'static str {
        "service+tardiness"
    }
}

/// Inventory-control transition cost — §3.2 names "inventory systems"
/// among the sequentially controlled systems the arrays extend to.
/// Stage values are end-of-period inventory levels; moving from level
/// `x` to level `y` against a constant per-period `demand` requires
/// producing `p = y − x + demand` units (infeasible if `p < 0`), paying
/// a fixed `setup` when `p > 0`, `unit` per unit produced, and `holding`
/// per unit carried.
#[derive(Clone, Copy, Debug)]
pub struct InventoryCost {
    /// Units demanded each period.
    pub demand: i64,
    /// Fixed ordering/setup cost when any production happens.
    pub setup: i64,
    /// Variable cost per unit produced.
    pub unit: i64,
    /// Holding cost per unit of end-of-period inventory.
    pub holding: i64,
}

impl Default for InventoryCost {
    fn default() -> Self {
        InventoryCost {
            demand: 3,
            setup: 8,
            unit: 2,
            holding: 1,
        }
    }
}

impl EdgeCostFn for InventoryCost {
    fn cost(&self, x: i64, y: i64) -> Cost {
        let produce = y - x + self.demand;
        if produce < 0 {
            return Cost::INF; // cannot dispose of stock
        }
        let order = if produce > 0 {
            self.setup + self.unit * produce
        } else {
            0
        };
        Cost::from(order + self.holding * y)
    }
    fn name(&self) -> &'static str {
        "setup+unit*produce+holding*y"
    }
}

/// A serial optimization problem in node-value form: `S` stages of
/// quantized values, with edge costs `f(xᵢ, xᵢ₊₁)` (Eq. 4).
pub struct NodeValueGraph {
    /// `values[s][j]` is the `j`-th quantized value of variable `Xₛ₊₁`.
    values: Vec<Vec<i64>>,
    f: Box<dyn EdgeCostFn>,
}

impl NodeValueGraph {
    /// Builds a node-value graph; every stage must be non-empty.
    pub fn new(values: Vec<Vec<i64>>, f: Box<dyn EdgeCostFn>) -> NodeValueGraph {
        assert!(values.len() >= 2, "need at least two stages");
        assert!(
            values.iter().all(|v| !v.is_empty()),
            "every stage needs at least one value"
        );
        NodeValueGraph { values, f }
    }

    /// A uniform graph: `stages` stages each holding the same `m` values
    /// produced by `value(stage, index)`.
    pub fn uniform_from_fn(
        stages: usize,
        m: usize,
        f: Box<dyn EdgeCostFn>,
        mut value: impl FnMut(usize, usize) -> i64,
    ) -> NodeValueGraph {
        assert!(stages >= 2 && m >= 1);
        let values = (0..stages)
            .map(|s| (0..m).map(|j| value(s, j)).collect())
            .collect();
        NodeValueGraph::new(values, f)
    }

    /// Number of stages `N`.
    pub fn num_stages(&self) -> usize {
        self.values.len()
    }

    /// Number of quantized values in stage `s`.
    pub fn stage_size(&self, s: usize) -> usize {
        self.values[s].len()
    }

    /// The values of stage `s`.
    pub fn stage_values(&self, s: usize) -> &[i64] {
        &self.values[s]
    }

    /// The edge-cost function.
    pub fn f(&self) -> &dyn EdgeCostFn {
        self.f.as_ref()
    }

    /// Evaluates `f` for an edge from value-index `i` of stage `s` to
    /// value-index `j` of stage `s+1` (stage-dependent when the cost
    /// function overrides [`EdgeCostFn::cost_at`]).
    pub fn edge_cost(&self, s: usize, i: usize, j: usize) -> Cost {
        self.f.cost_at(s, self.values[s][i], self.values[s + 1][j])
    }

    /// Materializes the edge-cost matrices, producing the equivalent
    /// [`MultistageGraph`] — the conversion a host would do if it *didn't*
    /// have the Fig. 5 array and had to feed all `N·m²` edge costs.
    pub fn to_multistage(&self) -> MultistageGraph {
        let mats = (0..self.num_stages() - 1)
            .map(|s| {
                sdp_semiring::Matrix::from_fn(self.stage_size(s), self.stage_size(s + 1), |i, j| {
                    sdp_semiring::MinPlus(self.edge_cost(s, i, j))
                })
            })
            .collect();
        MultistageGraph::new(mats)
    }

    /// Input words needed in node-value form (`Σ stage sizes`) versus
    /// edge-cost form (`Σ mᵢ·mᵢ₊₁`) — the §3.2 I/O-bottleneck comparison.
    pub fn io_words(&self) -> (usize, usize) {
        let node_form: usize = self.values.iter().map(|v| v.len()).sum();
        let edge_form: usize = (0..self.num_stages() - 1)
            .map(|s| self.stage_size(s) * self.stage_size(s + 1))
            .sum();
        (node_form, edge_form)
    }
}

impl std::fmt::Debug for NodeValueGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeValueGraph")
            .field("stages", &self.values.len())
            .field("values", &self.values)
            .field("f", &self.f.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> NodeValueGraph {
        NodeValueGraph::new(vec![vec![0, 5], vec![3, 8], vec![1, 9]], Box::new(AbsDiff))
    }

    #[test]
    fn edge_costs_from_values() {
        let g = simple();
        assert_eq!(g.edge_cost(0, 0, 0), Cost::from(3)); // |3-0|
        assert_eq!(g.edge_cost(0, 1, 1), Cost::from(3)); // |8-5|
        assert_eq!(g.edge_cost(1, 1, 0), Cost::from(7)); // |1-8|
    }

    #[test]
    fn to_multistage_preserves_costs() {
        let g = simple();
        let ms = g.to_multistage();
        assert_eq!(ms.num_stages(), 3);
        for s in 0..2 {
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(ms.edge_cost(s, i, j), g.edge_cost(s, i, j));
                }
            }
        }
    }

    #[test]
    fn io_reduction_is_order_m() {
        let g =
            NodeValueGraph::uniform_from_fn(10, 8, Box::new(AbsDiff), |s, j| (s * 8 + j) as i64);
        let (node, edge) = g.io_words();
        assert_eq!(node, 80);
        assert_eq!(edge, 9 * 64);
        assert!(edge / node >= 7); // ~m-fold reduction
    }

    #[test]
    fn squared_diff() {
        assert_eq!(SquaredDiff.cost(2, 5), Cost::from(9));
        assert_eq!(SquaredDiff.cost(5, 2), Cost::from(9));
    }

    #[test]
    fn asymmetric_ramp() {
        let f = AsymmetricRamp { up: 3, down: 1 };
        assert_eq!(f.cost(0, 4), Cost::from(12));
        assert_eq!(f.cost(4, 0), Cost::from(4));
        assert_eq!(f.cost(4, 4), Cost::from(0));
    }

    #[test]
    fn extreme_values_saturate_without_panicking() {
        // Squared/weighted costs near i64 limits must clamp to
        // MAX_FINITE, never hit the INF sentinel via saturating_mul.
        let huge = 4_000_000_000i64;
        assert_eq!(SquaredDiff.cost(-huge, huge), Cost::MAX_FINITE);
        let w = StageWeighted {
            inner: SquaredDiff,
            weights: vec![i64::MAX - 1],
        };
        assert_eq!(w.cost_at(0, 0, huge), Cost::MAX_FINITE);
        let ramp = AsymmetricRamp {
            up: i64::MAX - 1,
            down: i64::MAX - 1,
        };
        assert!(ramp.cost(0, huge).is_finite());
        assert!(ramp.cost(huge, 0).is_finite());
    }

    #[test]
    fn inventory_cost_semantics() {
        let f = InventoryCost {
            demand: 3,
            setup: 8,
            unit: 2,
            holding: 1,
        };
        // level 2 -> 4 with demand 3: produce 5 -> 8 + 10 + hold 4 = 22
        assert_eq!(f.cost(2, 4), Cost::from(22));
        // exactly burn down stock: produce 0, no setup, hold 1
        assert_eq!(f.cost(4, 1), Cost::from(1));
        // cannot shed more than demand
        assert!(f.cost(5, 1).is_inf());
    }

    #[test]
    fn service_delay() {
        let f = ServiceDelay { slack: 2 };
        assert_eq!(f.cost(3, 4), Cost::from(3)); // within slack
        assert_eq!(f.cost(3, 9), Cost::from(3 + 4)); // 9-3-2 = 4 tardy
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn single_stage_rejected() {
        let _ = NodeValueGraph::new(vec![vec![1]], Box::new(AbsDiff));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_stage_rejected() {
        let _ = NodeValueGraph::new(vec![vec![1], vec![]], Box::new(AbsDiff));
    }

    #[test]
    fn debug_includes_fn_name() {
        let g = simple();
        let s = format!("{:?}", g);
        assert!(s.contains("|y - x|"));
    }
}
