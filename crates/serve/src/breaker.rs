//! Per-engine-class circuit breaker.
//!
//! Each engine class gets one breaker with the classic three-state
//! machine.  **Closed** (normal): every request is admitted; engine
//! bucket panics count as consecutive failures and `trip_after` of
//! them in a row trip the breaker.  **Open**: requests are *not*
//! dispatched to the suspect engine — small, decode-validated inputs
//! degrade to the `sdp-oracle` reference solver (graceful degradation,
//! not silence), the rest fast-reject with a typed `circuit_open`
//! error carrying the remaining cooldown as `retry_after_ms`.  After
//! `cooldown` the breaker lets exactly one **half-open** probe through
//! to the real engine; success closes the breaker, another panic
//! reopens it for a fresh cooldown.
//!
//! Only panics count as failures: a malformed problem is the client's
//! fault and says nothing about engine health.  State changes mirror
//! into the metrics registry (`sdp_breaker_state`,
//! `sdp_breaker_trips_total`) so trips are visible in the Prometheus
//! export.

use sdp_metrics::{Counter, Gauge};
use sdp_par::lock_recover;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Breaker tuning knobs (from the server [`Config`](crate::Config)).
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive bucket panics that trip the breaker open.
    pub trip_after: u32,
    /// How long the breaker stays open before admitting one probe.
    pub cooldown: Duration,
}

/// Gauge encoding of the breaker state (pinned by the metrics schema).
pub const STATE_CLOSED: i64 = 0;
/// Half-open: one probe is allowed through to the real engine.
pub const STATE_HALF_OPEN: i64 = 1;
/// Open: requests degrade to the fallback or fast-reject.
pub const STATE_OPEN: i64 = 2;

enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { probe_in_flight: bool },
}

/// What the breaker says about one incoming request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Dispatch to the real engine (`probe` marks the half-open test
    /// request).
    Admit {
        /// True when this is the single half-open probe.
        probe: bool,
    },
    /// Do not dispatch; degrade or fast-reject.
    Reject {
        /// Milliseconds until a probe will be admitted.
        retry_after_ms: u64,
    },
}

/// One engine class's breaker.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    state_gauge: Arc<Gauge>,
    trips: Arc<Counter>,
}

impl CircuitBreaker {
    /// A closed breaker wired to its metrics series.
    pub fn new(cfg: BreakerConfig, state_gauge: Arc<Gauge>, trips: Arc<Counter>) -> CircuitBreaker {
        state_gauge.set(STATE_CLOSED);
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            state_gauge,
            trips,
        }
    }

    /// Gate one incoming request of this class.
    pub fn admit(&self) -> Admission {
        let mut s = lock_recover(&self.state);
        match *s {
            State::Closed { .. } => Admission::Admit { probe: false },
            State::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    *s = State::HalfOpen {
                        probe_in_flight: true,
                    };
                    self.state_gauge.set(STATE_HALF_OPEN);
                    Admission::Admit { probe: true }
                } else {
                    Admission::Reject {
                        retry_after_ms: (until - now).as_millis().max(1) as u64,
                    }
                }
            }
            State::HalfOpen {
                probe_in_flight: false,
            } => {
                *s = State::HalfOpen {
                    probe_in_flight: true,
                };
                Admission::Admit { probe: true }
            }
            State::HalfOpen {
                probe_in_flight: true,
            } => Admission::Reject {
                retry_after_ms: (self.cfg.cooldown.as_millis().max(1)) as u64,
            },
        }
    }

    /// Report one engine-bucket outcome for this class (`ok` is false
    /// when the bucket panicked).
    pub fn record(&self, ok: bool) {
        let mut s = lock_recover(&self.state);
        match (&mut *s, ok) {
            (
                State::Closed {
                    consecutive_failures,
                },
                true,
            ) => *consecutive_failures = 0,
            (
                State::Closed {
                    consecutive_failures,
                },
                false,
            ) => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.cfg.trip_after {
                    *s = State::Open {
                        until: Instant::now() + self.cfg.cooldown,
                    };
                    self.state_gauge.set(STATE_OPEN);
                    self.trips.inc();
                }
            }
            (State::HalfOpen { .. }, true) => {
                *s = State::Closed {
                    consecutive_failures: 0,
                };
                self.state_gauge.set(STATE_CLOSED);
            }
            (State::HalfOpen { .. }, false) => {
                *s = State::Open {
                    until: Instant::now() + self.cfg.cooldown,
                };
                self.state_gauge.set(STATE_OPEN);
                self.trips.inc();
            }
            // A stale bucket from before the trip; the open timer
            // already covers it.
            (State::Open { .. }, _) => {}
        }
    }

    /// Report that an admitted bucket never reached the engine (every
    /// rider expired pre-dispatch).  Frees a half-open probe slot so
    /// an expired probe cannot wedge the breaker half-open forever.
    pub fn record_skip(&self) {
        let mut s = lock_recover(&self.state);
        if let State::HalfOpen { probe_in_flight } = &mut *s {
            *probe_in_flight = false;
        }
    }

    /// Current state as its gauge code (test/JSON hook).
    pub fn state_code(&self) -> i64 {
        self.state_gauge.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(trip_after: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerConfig {
                trip_after,
                cooldown: Duration::from_millis(cooldown_ms),
            },
            Arc::new(Gauge::new()),
            Arc::new(Counter::new()),
        )
    }

    #[test]
    fn stays_closed_under_success_and_isolated_failures() {
        let b = breaker(3, 50);
        for _ in 0..10 {
            assert_eq!(b.admit(), Admission::Admit { probe: false });
            b.record(true);
        }
        b.record(false);
        b.record(false);
        b.record(true); // streak broken
        b.record(false);
        b.record(false);
        assert_eq!(b.state_code(), STATE_CLOSED);
        assert_eq!(b.admit(), Admission::Admit { probe: false });
    }

    #[test]
    fn trips_open_after_consecutive_failures_and_rejects() {
        let b = breaker(2, 10_000);
        b.record(false);
        b.record(false);
        assert_eq!(b.state_code(), STATE_OPEN);
        match b.admit() {
            Admission::Reject { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Reject, got {other:?}"),
        }
        // Results from buckets dispatched before the trip don't close it.
        b.record(true);
        assert_eq!(b.state_code(), STATE_OPEN);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = breaker(1, 20);
        b.record(false);
        assert_eq!(b.state_code(), STATE_OPEN);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Admit { probe: true });
        // Only one probe at a time.
        assert!(matches!(b.admit(), Admission::Reject { .. }));
        b.record(true);
        assert_eq!(b.state_code(), STATE_CLOSED);
        assert_eq!(b.admit(), Admission::Admit { probe: false });
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = breaker(1, 20);
        b.record(false);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Admit { probe: true });
        b.record(false);
        assert_eq!(b.state_code(), STATE_OPEN);
        assert!(matches!(b.admit(), Admission::Reject { .. }));
    }

    #[test]
    fn expired_probe_releases_the_slot() {
        let b = breaker(1, 20);
        b.record(false);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Admit { probe: true });
        b.record_skip();
        // The slot is free again without waiting another cooldown.
        assert_eq!(b.admit(), Admission::Admit { probe: true });
    }

    #[test]
    fn trip_counter_and_gauge_mirror_transitions() {
        let gauge = Arc::new(Gauge::new());
        let trips = Arc::new(Counter::new());
        let b = CircuitBreaker::new(
            BreakerConfig {
                trip_after: 1,
                cooldown: Duration::from_millis(10),
            },
            Arc::clone(&gauge),
            Arc::clone(&trips),
        );
        assert_eq!(gauge.get(), STATE_CLOSED);
        b.record(false);
        assert_eq!(gauge.get(), STATE_OPEN);
        assert_eq!(trips.get(), 1);
        std::thread::sleep(Duration::from_millis(15));
        b.admit();
        assert_eq!(gauge.get(), STATE_HALF_OPEN);
        b.record(false);
        assert_eq!(trips.get(), 2);
    }
}
