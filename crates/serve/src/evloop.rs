//! Readiness-polling primitives for the event-loop front-end and the
//! load generator: a hand-rolled `poll(2)` binding and a self-pipe
//! wake channel built on a nonblocking `UnixStream` pair.
//!
//! No new dependencies: std already links libc on unix, so the one
//! foreign function the event loop needs can be declared directly.
//! Only the flags the server uses are exposed; `revents` may carry
//! `POLLERR`/`POLLHUP`/`POLLNVAL` bits beyond what was requested, so
//! callers treat "any bit set" as "go service this fd" and let the
//! subsequent read/write surface the actual condition.

use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Readable (or peer hung up with data pending).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;

/// One entry of the `poll(2)` fd set, ABI-compatible with
/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested readiness (`POLLIN` / `POLLOUT` bits).
    pub events: i16,
    /// Kernel-reported readiness, valid after [`poll_fds`] returns.
    pub revents: i16,
}

impl PollFd {
    /// A fresh entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when the kernel flagged any readiness or error condition.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

extern "C" {
    // `nfds_t` is `c_ulong` (= u64) on the 64-bit Linux targets this
    // server runs on.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until at least one fd is ready or `timeout` elapses
/// (`None` = wait indefinitely).  Returns the ready count; `EINTR`
/// retries internally, any other error reports zero ready fds.
/// Sub-millisecond timeouts round *up* so a short deadline never
/// degenerates into a zero-timeout busy spin.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> usize {
    let ms: i32 = match timeout {
        None => -1,
        Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
    };
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
        if n >= 0 {
            return n as usize;
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != std::io::ErrorKind::Interrupted {
            return 0;
        }
    }
}

/// The sending side of a wake pipe; clone freely across threads.  A
/// wake is a single byte — if the pipe is already full the receiver
/// has a wake pending anyway, so a blocked write is dropped, never
/// waited on.
#[derive(Clone, Debug)]
pub struct WakeHandle {
    // One-byte writes to a socket are atomic; no lock needed even when
    // several dispatcher workers wake the same loop concurrently.
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    /// Nudges the owning event loop out of `poll`.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// The receiving side of a wake pipe, owned by one event loop.
#[derive(Debug)]
pub struct WakePipe {
    rx: UnixStream,
}

impl WakePipe {
    /// The fd to include (with `POLLIN`) in the loop's poll set.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte (call once per readiness).
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// A connected nonblocking wake pair.
pub fn wake_pipe() -> std::io::Result<(WakeHandle, WakePipe)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((WakeHandle { tx: Arc::new(tx) }, WakePipe { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wake_makes_the_pipe_readable_and_drain_clears_it() {
        let (tx, rx) = wake_pipe().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_millis(0))), 0);
        tx.wake();
        tx.wake(); // coalesces, never blocks
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5)));
        assert_eq!(n, 1);
        assert!(fds[0].ready());
        rx.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_millis(0))), 0);
    }

    #[test]
    fn poll_timeout_expires_without_readiness() {
        let (_tx, rx) = wake_pipe().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20)));
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn submillisecond_timeouts_round_up_not_to_zero() {
        let (_tx, rx) = wake_pipe().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let t0 = Instant::now();
        poll_fds(&mut fds, Some(Duration::from_micros(300)));
        // A zero-rounded timeout would return in ~1 µs; rounding up
        // to 1 ms actually sleeps.
        assert!(t0.elapsed() >= Duration::from_micros(300));
    }
}
