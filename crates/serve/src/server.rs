//! The TCP request server: accept loop, connection threads, and the
//! batch dispatcher.
//!
//! Threading model: one acceptor thread, one detached thread per
//! connection, and one dispatcher thread that pulls coalesced buckets
//! off the [`Queue`](crate::queue::Queue) and fans them out over a
//! [`StealPool`].  Connection threads never run engines — they decode,
//! probe the cache, enqueue, and block on a per-request reply channel,
//! so a slow simulation on one connection cannot stall another
//! connection's protocol handling.
//!
//! The panic contract: every failure path a client can trigger —
//! malformed JSON, oversized lines, invalid problems, engine panics,
//! backpressure, shutdown — produces a typed
//! [`SdpError`](sdp_fault::SdpError) response line.  A panic inside an
//! engine is caught at the bucket boundary and surfaces as
//! `task_panicked` for every rider of that bucket; the server itself
//! keeps running.

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::LruCache;
use crate::engine::{self, EngineKind};
use crate::metrics::{Metrics, PHASES};
use crate::protocol::{self, Body, Class, Request, CLASSES};
use crate::queue::{Job, JobResponse, Queue, QueueConfig, SpanTimes};
use crate::{json, Config};
use sdp_fault::{DispatchAction, ReplyAction, SdpError};
use sdp_par::{lock_recover, StealPool};
use sdp_trace::chrome::ChromeTrace;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long the nonblocking acceptor sleeps between polls; bounds both
/// accept latency and the shutdown-observation delay.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// The in-memory Chrome trace a `Config { trace: true }` server
/// collects: one slice per request phase, lanes keyed by engine class.
struct TraceState {
    /// Trace epoch — slice timestamps are µs since server start.
    t0: Instant,
    trace: ChromeTrace,
}

struct Shared {
    cfg: Config,
    queue: Queue,
    cache: Mutex<LruCache>,
    metrics: Metrics,
    /// One circuit breaker per engine class, indexed by `Class::index`.
    breakers: Vec<CircuitBreaker>,
    trace: Option<Mutex<TraceState>>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Idempotent shutdown trigger: stop admissions and flush
    /// leftovers.  The acceptor polls a nonblocking listener, so
    /// setting the flag is enough to stop it within one tick — no
    /// loopback self-dial needed.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.start_drain();
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`] for a graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Largest coalesced batch dispatched so far (test/experiment hook).
    pub fn max_coalesced(&self) -> u64 {
        self.shared.metrics.max_coalesced()
    }

    /// Cache hits so far (test/experiment hook).
    pub fn cache_hits(&self) -> u64 {
        self.shared.metrics.cache_hits()
    }

    /// Currently-open client connections (test/experiment hook).
    pub fn active_connections(&self) -> i64 {
        self.shared.metrics.active_connections()
    }

    /// Connections reaped for idling past the timeout (test hook).
    pub fn reaped_count(&self) -> u64 {
        self.shared.metrics.reaped_count()
    }

    /// Current breaker state code for one engine class (test hook);
    /// see [`crate::breaker`] for the encoding.
    pub fn breaker_code(&self, class: Class) -> i64 {
        self.shared.breakers[class.index()].state_code()
    }

    /// The rendered Chrome trace collected so far, or `None` when the
    /// server was started with `Config { trace: false }`.
    pub fn trace_snapshot(&self) -> Option<String> {
        self.shared
            .trace
            .as_ref()
            .map(|t| lock_recover(t).trace.render())
    }

    /// Blocks until the server drains (a `shutdown` request or an
    /// earlier [`ServerHandle::shutdown`]) and joins its threads,
    /// keeping the handle alive for post-drain inspection
    /// ([`ServerHandle::trace_snapshot`]).  Idempotent.
    pub fn wait(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }

    /// Blocks until a client-initiated `shutdown` request drains the
    /// server, then joins the threads (the `sdp-serve` binary's main).
    pub fn shutdown_on_request(mut self) {
        self.wait();
    }

    /// Stops admitting requests, flushes every queued bucket, waits for
    /// in-flight work, and joins the server threads.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.wait();
    }
}

/// Binds `cfg.addr` and starts the acceptor and dispatcher threads.
pub fn serve(cfg: Config) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // The acceptor polls so it can observe the shutdown flag without a
    // wake-up connection (satellite fix for the old loopback self-poke).
    listener.set_nonblocking(true)?;
    let queue_cfg = QueueConfig {
        max_queue: cfg.max_queue,
        shed_queue: cfg.shed_queue,
        max_batch: cfg.max_batch,
        max_delay: cfg.max_delay,
    };
    let metrics = Metrics::new(cfg.workers);
    let breaker_cfg = BreakerConfig {
        trip_after: cfg.breaker_trip_after,
        cooldown: cfg.breaker_cooldown,
    };
    let breakers = CLASSES
        .iter()
        .map(|class| {
            let (gauge, trips) = metrics.breaker_series(*class);
            CircuitBreaker::new(breaker_cfg, gauge, trips)
        })
        .collect();
    let shared = Arc::new(Shared {
        queue: Queue::new(queue_cfg),
        cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
        metrics,
        breakers,
        trace: cfg.trace.then(|| {
            Mutex::new(TraceState {
                t0: Instant::now(),
                trace: ChromeTrace::new(),
            })
        }),
        shutdown: AtomicBool::new(false),
        cfg,
    });
    shared
        .metrics
        .register_queue_gauge(shared.queue.depth_gauge());

    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("sdp-serve-dispatch".into())
            .spawn(move || dispatch_loop(&shared))?
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("sdp-serve-accept".into())
            .spawn(move || accept_loop(listener, shared))?
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        dispatcher: Some(dispatcher),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_TICK);
                continue;
            }
            Err(_) => continue,
        };
        // The listener is nonblocking for the poll loop; accepted
        // streams must not inherit that — connection threads rely on
        // per-socket read timeouts instead.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        shared.metrics.connection_opened();
        let conn_shared = Arc::clone(&shared);
        // Detached: a connection that lingers past shutdown gets typed
        // shutting_down responses until the client closes it.
        if thread::Builder::new()
            .name("sdp-serve-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.metrics.connection_closed();
            })
            .is_err()
        {
            shared.metrics.connection_closed();
        }
    }
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let pool = StealPool::new(shared.cfg.workers);
    while let Some(batches) = shared.queue.next_batches() {
        let flushed = Instant::now();
        let tasks: Vec<_> = batches
            .into_iter()
            .map(|(class, jobs)| {
                let shared = Arc::clone(shared);
                move || dispatch_bucket(class, jobs, flushed, &shared)
            })
            .collect();
        pool.run_observed(tasks, shared.metrics.pool_stats());
    }
}

/// Answer one expired rider with `deadline_exceeded` without burning
/// engine time on it.
fn expire_job(job: Job, started: Instant, flushed: Instant, class: Class, shared: &Shared) {
    let waited_ms = started.saturating_duration_since(job.enqueued).as_millis() as u64;
    shared.metrics.deadline_expired();
    shared
        .metrics
        .completed(class, false, job.enqueued.elapsed());
    let coalesce_us = flushed.saturating_duration_since(job.enqueued).as_micros() as u64;
    let queue_us = started.saturating_duration_since(flushed).as_micros() as u64;
    let _ = job.tx.send(JobResponse {
        result: Err(SdpError::DeadlineExceeded {
            waited_ms,
            deadline_ms: job.deadline_ms,
        }),
        batch: 0,
        engine: EngineKind::Sim,
        span: SpanTimes {
            coalesce_us,
            queue_us,
            engine_us: 0,
            engine_done: started,
        },
    });
}

/// Run one coalesced bucket on the engine: expire overdue riders, apply
/// any chaos dispatch action, catch engine panics, feed the class
/// breaker, and fan replies back out to the connection threads.
fn dispatch_bucket(class: Class, jobs: Vec<Job>, flushed: Instant, shared: &Shared) {
    let started = Instant::now();
    let breaker = &shared.breakers[class.index()];
    // Jobs past their deadline are answered without engine work; the
    // rest run as a (possibly smaller) bucket.
    let (expired, live): (Vec<_>, Vec<_>) = jobs.into_iter().partition(|j| started >= j.deadline);
    for job in expired {
        expire_job(job, started, flushed, class, shared);
    }
    if live.is_empty() {
        // Nothing reached the engine, so this bucket says nothing
        // about engine health — but it may have been the half-open
        // probe, whose slot must be released.
        breaker.record_skip();
        return;
    }
    let jobs = live;
    let bodies: Vec<_> = jobs.iter().map(|j| j.body.clone()).collect();
    let size = jobs.len();
    // Route by problem size: the crossover threshold sends large
    // buckets to the compiled direct solvers, small ones to the
    // cycle-accurate simulators.  Answers are bit-identical either way.
    let kind = engine::choose(&bodies, shared.cfg.direct_threshold);
    shared.metrics.dispatched_batch(class, size, kind);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(chaos) = &shared.cfg.chaos {
            match chaos.on_dispatch() {
                DispatchAction::Run => {}
                DispatchAction::Stall { ms } => {
                    shared.metrics.chaos_injected("engine_stall");
                    thread::sleep(Duration::from_millis(ms));
                }
                DispatchAction::Panic => {
                    shared.metrics.chaos_injected("engine_panic");
                    panic!("chaos: injected engine panic");
                }
            }
        }
        engine::run_bucket_on(kind, class, &bodies)
    }));
    breaker.record(outcome.is_ok());
    let results = outcome.unwrap_or_else(|_| {
        jobs.iter()
            .map(|_| {
                Err(SdpError::TaskPanicked {
                    task: 0,
                    attempts: 1,
                })
            })
            .collect()
    });
    let engine_done = Instant::now();
    // Batch-level phase boundaries; only the coalesce wait differs per
    // rider (each admitted at its own time, all flushed together).
    let queue_us = started.saturating_duration_since(flushed).as_micros() as u64;
    let engine_us = engine_done.saturating_duration_since(started).as_micros() as u64;
    for (job, result) in jobs.into_iter().zip(results) {
        let ok = result.is_ok();
        if let Ok(payload) = &result {
            if lock_recover(&shared.cache).insert(job.cache_key, payload.clone()) {
                shared.metrics.cache_evicted();
            }
        }
        let coalesce_us = flushed.saturating_duration_since(job.enqueued).as_micros() as u64;
        shared
            .metrics
            .record_dispatch_phases(class, coalesce_us, queue_us, engine_us);
        shared.metrics.completed(class, ok, job.enqueued.elapsed());
        // A dropped receiver means the client hung up mid-request; the
        // work is simply discarded.
        let _ = job.tx.send(JobResponse {
            result,
            batch: size,
            engine: kind,
            span: SpanTimes {
                coalesce_us,
                queue_us,
                engine_us,
                engine_done,
            },
        });
    }
}

/// One `read_line_capped` outcome.
enum LineRead {
    /// A complete request line (newline stripped).
    Line(String),
    /// Clean EOF, or EOF mid-line (client vanished either way).
    Eof,
    /// The line exceeded the byte limit; carries total bytes consumed
    /// (the rest of the line was drained to a clean boundary).
    TooLarge(usize),
    /// No complete line arrived within the idle window — reap the
    /// connection (slow-loris protection).
    IdleTimeout,
}

/// True for the error kinds a read timeout surfaces as (`WouldBlock` on
/// unix, `TimedOut` on some platforms).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one newline-terminated request line, enforcing the byte limit
/// without trusting the client to ever send a newline, and an overall
/// idle deadline without trusting it to keep bytes flowing.  The socket
/// carries a short read timeout (a fraction of `idle_timeout`), so a
/// stalled read wakes up periodically to check the deadline; any
/// received byte resets it.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
    idle_timeout: Duration,
) -> std::io::Result<LineRead> {
    let mut deadline = Instant::now() + idle_timeout;
    let mut buf: Vec<u8> = Vec::new();
    // None while accumulating a normal line; Some(total) once the line
    // blew the limit and we're draining to the next newline.
    let mut oversized: Option<usize> = None;
    loop {
        // fill_buf's borrow must end before consume, so decide how many
        // bytes to take (and whether they finish a line) first.
        let (take, done) = match reader.fill_buf() {
            Ok([]) => return Ok(LineRead::Eof),
            Ok(available) => match available.iter().position(|b| *b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (available.len(), false),
            },
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Ok(LineRead::IdleTimeout);
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if let Some(total) = &mut oversized {
            *total += take;
        } else {
            buf.extend_from_slice(&reader.buffer()[..take]);
            // Same boundary as before the rewrite: the newline counts
            // against the limit.
            if buf.len() > limit {
                oversized = Some(buf.len());
                buf.clear();
            }
        }
        reader.consume(take);
        deadline = Instant::now() + idle_timeout;
        if done {
            if let Some(total) = oversized {
                return Ok(LineRead::TooLarge(total));
            }
            buf.pop(); // the newline
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeout so a stalled connection wakes up to check its
    // idle deadline; write timeout so a client that stops draining its
    // socket cannot pin this thread in write_all forever.
    let tick =
        (shared.cfg.idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    if stream
        .set_write_timeout(Some(shared.cfg.write_timeout))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_capped(
            &mut reader,
            shared.cfg.max_request_bytes,
            shared.cfg.idle_timeout,
        ) {
            Ok(LineRead::Line(line)) => line,
            // Clean EOF or a mid-request disconnect: either way the
            // client is gone; drop the connection, never the server.
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::IdleTimeout) => {
                shared.metrics.reaped();
                return;
            }
            Ok(LineRead::TooLarge(bytes)) => {
                shared.metrics.oversized();
                let e = SdpError::PayloadTooLarge {
                    bytes,
                    limit: shared.cfg.max_request_bytes,
                };
                if respond(&mut writer, &protocol::error_response(0, &e)).is_err() {
                    return;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&line, shared);
        // Chaos reply actions apply only to compute replies: torn
        // writes and connection drops model a flaky network around
        // real work, while metrics/shutdown/error replies stay intact
        // so harnesses can always observe final state.
        if reply.is_compute {
            if let Some(chaos) = &shared.cfg.chaos {
                match chaos.on_reply() {
                    ReplyAction::Deliver => {}
                    ReplyAction::Tear => {
                        shared.metrics.chaos_injected("torn_write");
                        let half = reply.text.len() / 2;
                        let _ = writer.write_all(&reply.text.as_bytes()[..half]);
                        let _ = writer.flush();
                        if respond_tail(&mut writer, &reply.text[half..]).is_err() {
                            return;
                        }
                        continue;
                    }
                    ReplyAction::Drop => {
                        shared.metrics.chaos_injected("connection_drop");
                        return;
                    }
                }
            }
        }
        if respond(&mut writer, &reply.text).is_err() {
            return;
        }
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Second half of a torn write: the line still completes (the tear is a
/// mid-line flush boundary, not data loss) so the invariant checker can
/// prove exactly-one-reply even under torn-write chaos.
fn respond_tail(writer: &mut TcpStream, rest: &str) -> std::io::Result<()> {
    writer.write_all(rest.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// One reply line plus whether it answers a compute request (only
/// compute replies are subject to chaos reply actions).
struct Reply {
    text: String,
    is_compute: bool,
}

impl Reply {
    fn control(text: String) -> Reply {
        Reply {
            text,
            is_compute: false,
        }
    }

    fn compute(text: String) -> Reply {
        Reply {
            text,
            is_compute: true,
        }
    }
}

fn handle_line(line: &str, shared: &Shared) -> Reply {
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(reason) => {
            shared.metrics.malformed();
            return Reply::control(protocol::error_response(
                0,
                &SdpError::MalformedRequest { reason },
            ));
        }
    };
    let request = match protocol::decode(&doc) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.malformed();
            let id = json::get(&doc, "id").and_then(json::as_i64).unwrap_or(0);
            return Reply::control(protocol::error_response(id, &e));
        }
    };
    match request {
        Request::Metrics { id } => {
            let snapshot = shared.metrics.to_json(shared.queue.depth());
            Reply::control(protocol::ok_response(id, snapshot, false, 0))
        }
        Request::MetricsText { id } => {
            let payload = Json::object()
                .with("format", "prometheus")
                .with("text", shared.metrics.render_prometheus());
            Reply::control(protocol::ok_response(id, payload, false, 0))
        }
        Request::Shutdown { id } => {
            let reply = protocol::ok_response(id, Json::object().with("draining", true), false, 0);
            shared.begin_shutdown();
            Reply::control(reply)
        }
        Request::Compute {
            id,
            body,
            deadline_ms,
        } => Reply::compute(handle_compute(id, body, deadline_ms, shared)),
    }
}

use sdp_trace::json::Json;

/// Closes a request span in the connection thread: measures the
/// `respond` phase (engine done → reply in hand), feeds the span to the
/// metrics pipeline, and — when tracing is enabled — appends one trace
/// slice per phase, laid back-to-back on the engine class's lane.
fn finish_span(id: i64, class: Class, batch: usize, span: &SpanTimes, shared: &Shared) {
    let respond_us = span.engine_done.elapsed().as_micros() as u64;
    let total_us = span.coalesce_us + span.queue_us + span.engine_us + respond_us;
    shared.metrics.record_respond(
        class,
        span.coalesce_us,
        span.queue_us,
        span.engine_us,
        respond_us,
        total_us,
    );
    let Some(trace) = &shared.trace else { return };
    let mut t = lock_recover(trace);
    let end_us = t.t0.elapsed().as_micros() as u64;
    // Zero-length phases get the viewer's 1 µs minimum width, so the
    // rendered span may end slightly past `end_us`; start from the
    // widened durations to keep the slices contiguous.
    let durs = [
        span.coalesce_us.max(1),
        span.queue_us.max(1),
        span.engine_us.max(1),
        respond_us.max(1),
    ];
    let mut ts = end_us.saturating_sub(durs.iter().sum());
    for (phase, dur) in PHASES.iter().zip(durs) {
        t.trace.complete_with_args(
            phase,
            class.name(),
            ts,
            dur,
            0,
            class.index() as u32,
            vec![
                ("id".to_string(), Json::Int(id)),
                ("batch".to_string(), Json::from(batch)),
            ],
        );
        ts += dur;
    }
}

/// The oracle fallback an open breaker degrades to, for classes whose
/// served payload is bit-identical to the engine's.  `Chain` is out
/// (the engine adds a `steps` field) and `Multistage` is out (interior
/// shape checks are engine-side), so those fast-reject instead.
fn fallback_payload(body: &Body) -> Option<Json> {
    use sdp_oracle::served;
    match body {
        Body::Matmul { a, b } => Some(served::served_matmul(a, b)),
        Body::Edit { a, b } => Some(served::served_edit(a, b)),
        Body::Bst { freq } => Some(served::served_bst(freq)),
        Body::AndOr { graph, root } => Some(served::served_andor(graph, *root)),
        Body::Align {
            a,
            b,
            matched,
            mismatched,
            gap,
        } => Some(served::served_align(a, b, *matched, *mismatched, *gap)),
        Body::Knapsack { items, capacity } => {
            let pairs: Vec<(u64, u64)> = items.iter().map(|it| (it.weight, it.value)).collect();
            Some(served::served_knapsack(&pairs, *capacity))
        }
        Body::Chain { .. } | Body::Multistage { .. } => None,
    }
}

fn handle_compute(id: i64, body: Body, deadline_ms: Option<u64>, shared: &Shared) -> String {
    let class = body.class();
    let key = body.canonical_key();
    if let Some(payload) = lock_recover(&shared.cache).get(&key) {
        shared.metrics.cache_hit(class);
        return protocol::ok_response(id, payload, true, 0);
    }
    shared.metrics.cache_miss();
    let breaker = &shared.breakers[class.index()];
    let admission = breaker.admit();
    if let Admission::Reject { retry_after_ms } = admission {
        // Open breaker: degrade small decode-validated inputs to the
        // reference solver instead of going dark; everything else
        // fast-rejects with the remaining cooldown as a retry hint.
        if key.len() <= shared.cfg.breaker_fallback_max_bytes {
            if let Some(payload) = fallback_payload(&body) {
                shared.metrics.degraded(class);
                return protocol::degraded_response(id, payload);
            }
        }
        shared.metrics.rejected_circuit_open();
        return protocol::error_response(id, &SdpError::CircuitOpen { retry_after_ms });
    }
    let probe = matches!(admission, Admission::Admit { probe: true });
    let deadline_ms = deadline_ms.unwrap_or(shared.cfg.default_deadline.as_millis() as u64);
    let now = Instant::now();
    let deadline = now
        .checked_add(Duration::from_millis(deadline_ms))
        // An absurd deadline_ms can overflow Instant arithmetic; a
        // year out is indistinguishable from "no deadline".
        .unwrap_or_else(|| now + Duration::from_secs(365 * 24 * 3600));
    let (tx, rx) = mpsc::channel();
    let job = Job {
        body,
        cache_key: key,
        tx,
        enqueued: now,
        deadline,
        deadline_ms,
    };
    if let Err(e) = shared.queue.submit(job) {
        match &e {
            SdpError::QueueFull { .. } => shared.metrics.rejected_queue_full(),
            SdpError::Overloaded { .. } => shared.metrics.rejected_overloaded(),
            _ => {}
        }
        if probe {
            // The probe never reached the engine; free its slot so the
            // breaker can try again.
            breaker.record_skip();
        }
        return protocol::error_response(id, &e);
    }
    match rx.recv() {
        Ok(JobResponse {
            result: Ok(payload),
            batch,
            engine,
            span,
        }) => {
            finish_span(id, class, batch, &span, shared);
            protocol::ok_engine_response(id, payload, batch, engine.name())
        }
        Ok(JobResponse {
            result: Err(e),
            batch,
            span,
            ..
        }) => {
            finish_span(id, class, batch, &span, shared);
            protocol::error_response(id, &e)
        }
        // The dispatcher dropped the sender without replying — only
        // possible if it died; still answer with a typed error.
        Err(_) => protocol::error_response(
            id,
            &SdpError::TaskPanicked {
                task: 0,
                attempts: 1,
            },
        ),
    }
}
