//! The TCP request server: a polling acceptor, a small fixed pool of
//! event-loop connection workers, and one batch dispatcher per engine
//! class.
//!
//! Threading model (the PR 10 rewrite): the acceptor waits on the
//! listener with `poll(2)` and hands accepted sockets round-robin to
//! `Config::event_workers` **event-loop workers**.  Each worker owns a
//! slab of nonblocking connections multiplexed over one `poll(2)`
//! readiness set plus a self-pipe wake channel — a thousand idle
//! connections cost one slab entry each, not a parked thread each,
//! which is what lets the front-end feed the engines at saturation
//! instead of topping out on thread-per-connection context switches.
//! Connection workers never run engines: they decode, probe the
//! per-class result cache, submit to the sharded admission queue, and
//! carry on servicing other sockets; the dispatcher routes the
//! completion back to the owning worker through its completion inbox
//! and wake pipe.  One dispatcher thread per engine class pulls
//! coalesced buckets off its queue shard and fans multi-bucket flushes
//! out over a [`StealPool`].
//!
//! Per-socket watchdog semantics survive the rewrite: a connection
//! with no complete request line for `idle_timeout` is reaped (the
//! idle clock resets on received bytes and on reply delivery, and
//! never fires while a request is in flight), and a peer that stops
//! draining its socket is cut off after `write_timeout` of no write
//! progress.
//!
//! The panic contract: every failure path a client can trigger —
//! malformed JSON, oversized lines, invalid problems, engine panics,
//! backpressure, shutdown — produces a typed
//! [`SdpError`](sdp_fault::SdpError) response line.  A panic inside an
//! engine is caught at the bucket boundary and surfaces as
//! `task_panicked` for every rider of that bucket; the server itself
//! keeps running.

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::LruCache;
use crate::engine::{self};
use crate::evloop::{poll_fds, wake_pipe, PollFd, WakeHandle, WakePipe, POLLIN, POLLOUT};
use crate::metrics::{Metrics, PHASES};
use crate::protocol::{self, Body, Class, Request, CLASSES};
use crate::queue::{Completion, Job, JobResponse, Queue, QueueConfig, ReplySink, SpanTimes};
use crate::{json, Config};
use sdp_fault::{DispatchAction, ReplyAction, SdpError};
use sdp_par::{lock_recover, StealPool};
use sdp_trace::chrome::ChromeTrace;
use sdp_trace::json::Json;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The acceptor's poll timeout: bounds how long shutdown can go
/// unobserved, not accept latency (readiness wakes the poll early).
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Parsed-but-unprocessed request lines a connection may buffer before
/// the worker stops polling its socket for reads (per-connection
/// pipelining backpressure).
const PENDING_CAP: usize = 64;

/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// The in-memory Chrome trace a `Config { trace: true }` server
/// collects: one slice per request phase, lanes keyed by engine class.
struct TraceState {
    /// Trace epoch — slice timestamps are µs since server start.
    t0: Instant,
    trace: ChromeTrace,
}

struct Shared {
    cfg: Config,
    queue: Queue,
    /// One LRU shard per engine class (capacity applies per class), so
    /// hit probes of one class never contend with insertions of
    /// another.
    caches: Vec<Mutex<LruCache>>,
    metrics: Metrics,
    /// One circuit breaker per engine class, indexed by `Class::index`.
    breakers: Vec<CircuitBreaker>,
    trace: Option<Mutex<TraceState>>,
    shutdown: AtomicBool,
    /// Set by the acceptor after its final possible hand-off, so
    /// event workers can prove no more connections are coming.
    accept_done: AtomicBool,
    /// Wake handles of every event worker (filled once at startup);
    /// `begin_shutdown` nudges them all out of `poll`.
    wakes: Mutex<Vec<WakeHandle>>,
}

impl Shared {
    /// Idempotent shutdown trigger: stop admissions, flush leftovers,
    /// and wake every event worker so idle ones observe the flag.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.start_drain();
        for wake in lock_recover(&self.wakes).iter() {
            wake.wake();
        }
    }
}

/// One event worker's intake: freshly accepted sockets, completed
/// jobs, and the wake pipe that flushes both.
#[derive(Clone)]
struct WorkerRoute {
    conns: Arc<Mutex<Vec<TcpStream>>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    wake: WakeHandle,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`] for a graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Largest coalesced batch dispatched so far (test/experiment hook).
    pub fn max_coalesced(&self) -> u64 {
        self.shared.metrics.max_coalesced()
    }

    /// Cache hits so far (test/experiment hook).
    pub fn cache_hits(&self) -> u64 {
        self.shared.metrics.cache_hits()
    }

    /// Currently-open client connections (test/experiment hook).
    pub fn active_connections(&self) -> i64 {
        self.shared.metrics.active_connections()
    }

    /// Connections reaped for idling past the timeout (test hook).
    pub fn reaped_count(&self) -> u64 {
        self.shared.metrics.reaped_count()
    }

    /// Accepted sockets dropped because post-accept setup failed
    /// (test hook).
    pub fn accept_failures(&self) -> u64 {
        self.shared.metrics.accept_failures_count()
    }

    /// Current breaker state code for one engine class (test hook);
    /// see [`crate::breaker`] for the encoding.
    pub fn breaker_code(&self, class: Class) -> i64 {
        self.shared.breakers[class.index()].state_code()
    }

    /// The rendered Chrome trace collected so far, or `None` when the
    /// server was started with `Config { trace: false }`.
    pub fn trace_snapshot(&self) -> Option<String> {
        self.shared
            .trace
            .as_ref()
            .map(|t| lock_recover(t).trace.render())
    }

    /// Blocks until the server drains (a `shutdown` request or an
    /// earlier [`ServerHandle::shutdown`]) and joins the acceptor and
    /// dispatcher threads, keeping the handle alive for post-drain
    /// inspection ([`ServerHandle::trace_snapshot`]).  Event workers
    /// are *not* joined: they stay up (detached) answering lingering
    /// connections with typed `shutting_down` errors until the last
    /// client hangs up, then exit on their own.  Idempotent.
    pub fn wait(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until a client-initiated `shutdown` request drains the
    /// server, then joins the threads (the `sdp-serve` binary's main).
    pub fn shutdown_on_request(mut self) {
        self.wait();
    }

    /// Stops admitting requests, flushes every queued bucket, waits for
    /// in-flight work, and joins the server threads.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.wait();
    }
}

/// Binds `cfg.addr` and starts the acceptor, event-loop workers, and
/// per-class dispatcher threads.
pub fn serve(cfg: Config) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // The acceptor polls the listener so it can observe the shutdown
    // flag without a wake-up connection.
    listener.set_nonblocking(true)?;
    let queue_cfg = QueueConfig {
        max_queue: cfg.max_queue,
        shed_queue: cfg.shed_queue,
        max_batch: cfg.max_batch,
        max_delay: cfg.max_delay,
        drain_tick: cfg.drain_tick,
    };
    let metrics = Metrics::new(cfg.workers);
    let breaker_cfg = BreakerConfig {
        trip_after: cfg.breaker_trip_after,
        cooldown: cfg.breaker_cooldown,
    };
    let breakers = CLASSES
        .iter()
        .map(|class| {
            let (gauge, trips) = metrics.breaker_series(*class);
            CircuitBreaker::new(breaker_cfg, gauge, trips)
        })
        .collect();
    let caches = CLASSES
        .iter()
        .map(|_| Mutex::new(LruCache::new(cfg.cache_capacity)))
        .collect();
    let event_workers = cfg.event_workers.max(1);
    let shared = Arc::new(Shared {
        queue: Queue::new(queue_cfg),
        caches,
        metrics,
        breakers,
        trace: cfg.trace.then(|| {
            Mutex::new(TraceState {
                t0: Instant::now(),
                trace: ChromeTrace::new(),
            })
        }),
        shutdown: AtomicBool::new(false),
        accept_done: AtomicBool::new(false),
        wakes: Mutex::new(Vec::new()),
        cfg,
    });
    shared
        .metrics
        .register_queue_gauge(shared.queue.depth_gauge());

    // Event workers are detached (see ServerHandle::wait); each gets a
    // connection inbox, a completion inbox, and a wake pipe.
    let mut routes = Vec::with_capacity(event_workers);
    for w in 0..event_workers {
        let (wake, pipe) = wake_pipe()?;
        let route = WorkerRoute {
            conns: Arc::new(Mutex::new(Vec::new())),
            completions: Arc::new(Mutex::new(Vec::new())),
            wake,
        };
        lock_recover(&shared.wakes).push(route.wake.clone());
        let worker_shared = Arc::clone(&shared);
        let worker_route = route.clone();
        thread::Builder::new()
            .name(format!("sdp-serve-evloop-{w}"))
            .spawn(move || event_loop(worker_shared, worker_route, pipe))?;
        routes.push(route);
    }

    let pool = StealPool::new(shared.cfg.workers);
    let dispatchers = CLASSES
        .iter()
        .map(|&class| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("sdp-serve-dispatch-{}", class.name()))
                .spawn(move || dispatch_loop(&shared, class, pool))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("sdp-serve-accept".into())
            .spawn(move || accept_loop(listener, shared, routes))?
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        dispatchers,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, routes: Vec<WorkerRoute>) {
    let mut next = 0usize;
    'outer: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        poll_fds(&mut fds, Some(ACCEPT_TICK));
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // The whole front-end is readiness-driven, so the
                    // accepted socket must be nonblocking too; a
                    // socket that can't be is dropped *and counted*
                    // (these used to vanish silently).
                    if stream.set_nonblocking(true).is_err() {
                        shared.metrics.accept_failed();
                        continue;
                    }
                    // Replies are one line each; never Nagle them.
                    let _ = stream.set_nodelay(true);
                    shared.metrics.connection_opened();
                    let route = &routes[next % routes.len()];
                    next = next.wrapping_add(1);
                    lock_recover(&route.conns).push(stream);
                    route.wake.wake();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => continue 'outer,
                Err(_) => continue 'outer,
            }
        }
    }
    // No hand-off can happen after this store; workers use it to prove
    // their intake is final before exiting.
    shared.accept_done.store(true, Ordering::SeqCst);
    for route in &routes {
        route.wake.wake();
    }
}

fn dispatch_loop(shared: &Arc<Shared>, class: Class, pool: StealPool) {
    while let Some(buckets) = shared.queue.next_batches_for(class) {
        let flushed = Instant::now();
        let tasks: Vec<_> = buckets
            .into_iter()
            .map(|jobs| {
                let shared = Arc::clone(shared);
                move || dispatch_bucket(class, jobs, flushed, &shared)
            })
            .collect();
        pool.run_observed(tasks, shared.metrics.pool_stats());
    }
}

/// Answer one expired rider with `deadline_exceeded` without burning
/// engine time on it.  Expirations get their own metrics series
/// (`expired`) and carry `engine: None` — they must never masquerade
/// as engine work or skew the completed-latency percentiles.
fn expire_job(job: Job, started: Instant, flushed: Instant, class: Class, shared: &Shared) {
    let waited = started.saturating_duration_since(job.enqueued);
    shared.metrics.expired(class, waited);
    let coalesce_us = flushed.saturating_duration_since(job.enqueued).as_micros() as u64;
    let queue_us = started.saturating_duration_since(flushed).as_micros() as u64;
    job.tx.send(JobResponse {
        result: Err(SdpError::DeadlineExceeded {
            waited_ms: waited.as_millis() as u64,
            deadline_ms: job.deadline_ms,
        }),
        batch: 0,
        engine: None,
        span: SpanTimes {
            coalesce_us,
            queue_us,
            engine_us: 0,
            engine_done: started,
        },
    });
}

/// Run one coalesced bucket on the engine: expire overdue riders, apply
/// any chaos dispatch action, catch engine panics, feed the class
/// breaker, and route replies back to the owning event workers.
fn dispatch_bucket(class: Class, jobs: Vec<Job>, flushed: Instant, shared: &Shared) {
    let started = Instant::now();
    let breaker = &shared.breakers[class.index()];
    // Jobs past their deadline are answered without engine work; the
    // rest run as a (possibly smaller) bucket.
    let (expired, live): (Vec<_>, Vec<_>) = jobs.into_iter().partition(|j| started >= j.deadline);
    for job in expired {
        expire_job(job, started, flushed, class, shared);
    }
    if live.is_empty() {
        // Nothing reached the engine, so this bucket says nothing
        // about engine health — but it may have been the half-open
        // probe, whose slot must be released.
        breaker.record_skip();
        return;
    }
    let jobs = live;
    let bodies: Vec<_> = jobs.iter().map(|j| j.body.clone()).collect();
    let size = jobs.len();
    // Route by problem size: the crossover threshold sends large
    // buckets to the compiled direct solvers, small ones to the
    // cycle-accurate simulators.  Answers are bit-identical either way.
    let kind = engine::choose(&bodies, shared.cfg.direct_threshold);
    shared.metrics.dispatched_batch(class, size, kind);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(chaos) = &shared.cfg.chaos {
            match chaos.on_dispatch() {
                DispatchAction::Run => {}
                DispatchAction::Stall { ms } => {
                    shared.metrics.chaos_injected("engine_stall");
                    thread::sleep(Duration::from_millis(ms));
                }
                DispatchAction::Panic => {
                    shared.metrics.chaos_injected("engine_panic");
                    panic!("chaos: injected engine panic");
                }
            }
        }
        engine::run_bucket_on(kind, class, &bodies)
    }));
    breaker.record(outcome.is_ok());
    let results = outcome.unwrap_or_else(|_| {
        jobs.iter()
            .map(|_| {
                Err(SdpError::TaskPanicked {
                    task: 0,
                    attempts: 1,
                })
            })
            .collect()
    });
    let engine_done = Instant::now();
    // Batch-level phase boundaries; only the coalesce wait differs per
    // rider (each admitted at its own time, all flushed together).
    let queue_us = started.saturating_duration_since(flushed).as_micros() as u64;
    let engine_us = engine_done.saturating_duration_since(started).as_micros() as u64;
    for (job, result) in jobs.into_iter().zip(results) {
        let ok = result.is_ok();
        if let Ok(payload) = &result {
            let rendered: Arc<str> = Arc::from(payload.render());
            if lock_recover(&shared.caches[class.index()]).insert(job.cache_key, rendered) {
                shared.metrics.cache_evicted();
            }
        }
        let coalesce_us = flushed.saturating_duration_since(job.enqueued).as_micros() as u64;
        shared
            .metrics
            .record_dispatch_phases(class, coalesce_us, queue_us, engine_us);
        shared.metrics.completed(class, ok, job.enqueued.elapsed());
        // A vanished connection means the client hung up mid-request;
        // the generation check at delivery discards the work.
        job.tx.send(JobResponse {
            result,
            batch: size,
            engine: Some(kind),
            span: SpanTimes {
                coalesce_us,
                queue_us,
                engine_us,
                engine_done,
            },
        });
    }
}

/// One parsed-off request line awaiting processing.
enum Pending {
    /// A complete request line (newline stripped).
    Line(String),
    /// A line that exceeded the byte limit; carries total line bytes
    /// (the overflow was discarded to a clean newline boundary).
    TooLarge(usize),
}

/// The compute request a connection is blocked on.
struct Inflight {
    id: i64,
    class: Class,
}

/// One connection's slab state inside an event worker.
struct Conn {
    stream: TcpStream,
    /// Bytes of the current (incomplete) request line.
    partial: Vec<u8>,
    /// Once the current line blows the cap: total bytes seen so far
    /// (content is discarded until the closing newline).
    oversized: Option<usize>,
    /// Complete lines waiting to be processed.
    pending: VecDeque<Pending>,
    /// Bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Armed while `write_buf` is non-empty; no progress past it cuts
    /// the connection off.
    write_deadline: Option<Instant>,
    /// Reaped past this instant while the connection is in slow-loris
    /// posture (see [`Conn::reapable`]); reset on received bytes and
    /// reply delivery.
    idle_deadline: Instant,
    /// At least one complete request line has arrived; established
    /// connections idling cleanly between requests are never reaped.
    established: bool,
    /// The submitted request this connection is waiting on, if any.
    inflight: Option<Inflight>,
    /// Peer closed its write side; serve what's buffered, then close.
    eof: bool,
    /// Deliver nothing further; close once `write_buf` drains
    /// (chaos connection_drop).
    close_after_flush: bool,
    /// Hard failure (I/O error): close immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, idle_deadline: Instant) -> Conn {
        Conn {
            stream,
            partial: Vec::new(),
            oversized: None,
            pending: VecDeque::new(),
            write_buf: Vec::new(),
            write_deadline: None,
            idle_deadline,
            established: false,
            inflight: None,
            eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Fully drained: nothing buffered in either direction and nothing
    /// in flight.
    fn drained(&self) -> bool {
        self.inflight.is_none()
            && self.pending.is_empty()
            && self.write_buf.is_empty()
            && self.partial.is_empty()
    }

    /// Idle-reap candidate: nothing owed to the peer, and the peer is
    /// in slow-loris posture — stalled mid-line (or mid-oversized
    /// drain), or never completed a request at all.  Established
    /// connections idling cleanly between requests are exempt: a
    /// parked socket costs the event loop nothing.
    fn reapable(&self) -> bool {
        self.inflight.is_none()
            && self.pending.is_empty()
            && self.write_buf.is_empty()
            && (!self.established || !self.partial.is_empty() || self.oversized.is_some())
    }
}

/// The event-loop worker: adopts accepted sockets into a slab, reads
/// and parses request lines, probes cache/breaker, submits to the
/// queue, and delivers completions — all driven by one `poll(2)` set.
fn event_loop(shared: Arc<Shared>, route: WorkerRoute, pipe: WakePipe) {
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u64> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut rbuf = vec![0u8; READ_CHUNK];
    loop {
        // Adopt freshly accepted connections.
        let fresh: Vec<TcpStream> = std::mem::take(&mut *lock_recover(&route.conns));
        if !fresh.is_empty() {
            let now = Instant::now();
            for stream in fresh {
                let slot = free.pop().unwrap_or_else(|| {
                    slots.push(None);
                    gens.push(0);
                    slots.len() - 1
                });
                // A new generation per (re)use, so completions for a
                // prior tenant of the slot can never be misdelivered.
                gens[slot] += 1;
                slots[slot] = Some(Conn::new(stream, now + shared.cfg.idle_timeout));
            }
        }
        // Deliver completed jobs to their connections.
        let done: Vec<Completion> = std::mem::take(&mut *lock_recover(&route.completions));
        for (slot, gen, resp) in done {
            if let Some(conn) = slots.get_mut(slot).and_then(Option::as_mut) {
                if gens[slot] == gen {
                    deliver_completion(conn, resp, &shared);
                }
            }
        }
        // Service every connection: process parsed lines, then push
        // whatever is writable.
        for slot in 0..slots.len() {
            let gen = gens[slot];
            if let Some(conn) = slots[slot].as_mut() {
                service_conn(conn, slot, gen, &shared, &route);
                flush_conn(conn, shared.cfg.write_timeout);
            }
        }
        // Close sweep: hard failures, drained EOFs/drops, write-stall
        // cutoffs, and idle reaps.
        let now = Instant::now();
        for (slot, entry) in slots.iter_mut().enumerate() {
            let Some(conn) = entry.as_ref() else {
                continue;
            };
            let close = if conn.dead
                || (conn.close_after_flush && conn.write_buf.is_empty())
                || (conn.eof && conn.drained())
                || conn.write_deadline.is_some_and(|d| now >= d)
            {
                true
            } else if conn.reapable() && now >= conn.idle_deadline {
                shared.metrics.reaped();
                true
            } else {
                false
            };
            if close {
                *entry = None;
                free.push(slot);
                shared.metrics.connection_closed();
            }
        }
        // Exit: draining, intake provably final, and every connection
        // gone.  Until then lingering clients keep getting typed
        // shutting_down errors.
        let live = slots.iter().filter(|s| s.is_some()).count();
        if live == 0
            && shared.shutdown.load(Ordering::SeqCst)
            && shared.accept_done.load(Ordering::SeqCst)
            && lock_recover(&route.conns).is_empty()
        {
            return;
        }
        // Build the poll set: the wake pipe plus every connection that
        // wants bytes in or has bytes to push out.
        let mut fds = vec![PollFd::new(pipe.fd(), POLLIN)];
        let mut fd_slots = vec![usize::MAX];
        let mut deadline: Option<Instant> = None;
        let consider = |deadline: &mut Option<Instant>, d: Instant| {
            *deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
        };
        for (slot, entry) in slots.iter().enumerate() {
            let Some(conn) = entry else { continue };
            let mut events = 0i16;
            if !conn.eof && !conn.close_after_flush && conn.pending.len() < PENDING_CAP {
                events |= POLLIN;
            }
            if !conn.write_buf.is_empty() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                fd_slots.push(slot);
            }
            if conn.reapable() {
                consider(&mut deadline, conn.idle_deadline);
            }
            if let Some(d) = conn.write_deadline {
                consider(&mut deadline, d);
            }
        }
        let timeout = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        poll_fds(&mut fds, timeout);
        if fds[0].ready() {
            pipe.drain();
        }
        for (i, pfd) in fds.iter().enumerate().skip(1) {
            if !pfd.ready() {
                continue;
            }
            let Some(conn) = slots[fd_slots[i]].as_mut() else {
                continue;
            };
            // Any error/hangup bit also lands here: the read surfaces
            // the actual condition.
            if pfd.revents & POLLOUT != 0 {
                flush_conn(conn, shared.cfg.write_timeout);
            }
            if pfd.revents & !POLLOUT != 0 {
                read_conn(conn, &mut rbuf, &shared);
            }
        }
    }
}

/// Reads until `WouldBlock` (or the pipelining cap), slicing complete
/// request lines into the connection's pending deque.
fn read_conn(conn: &mut Conn, rbuf: &mut [u8], shared: &Shared) {
    loop {
        match (&conn.stream).read(rbuf) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.idle_deadline = Instant::now() + shared.cfg.idle_timeout;
                ingest(conn, &rbuf[..n], shared.cfg.max_request_bytes);
                if conn.pending.len() >= PENDING_CAP {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Splits a received chunk into complete lines, enforcing the byte
/// limit without trusting the client to ever send a newline.  Same
/// boundary as the blocking reader it replaces: the newline counts
/// against the limit, and an oversized line is drained (counted, not
/// stored) to its closing newline.
fn ingest(conn: &mut Conn, chunk: &[u8], limit: usize) {
    let mut rest = chunk;
    while let Some(pos) = rest.iter().position(|b| *b == b'\n') {
        let (head, tail) = rest.split_at(pos + 1);
        rest = tail;
        conn.established = true;
        if let Some(total) = conn.oversized.take() {
            conn.pending
                .push_back(Pending::TooLarge(total + head.len()));
            continue;
        }
        conn.partial.extend_from_slice(head);
        if conn.partial.len() > limit {
            conn.pending
                .push_back(Pending::TooLarge(conn.partial.len()));
            conn.partial.clear();
            continue;
        }
        let mut line = std::mem::take(&mut conn.partial);
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        conn.pending
            .push_back(Pending::Line(String::from_utf8_lossy(&line).into_owned()));
    }
    if let Some(total) = &mut conn.oversized {
        *total += rest.len();
    } else {
        conn.partial.extend_from_slice(rest);
        if conn.partial.len() > limit {
            conn.oversized = Some(conn.partial.len());
            conn.partial.clear();
        }
    }
}

/// Pushes buffered reply bytes until the socket pushes back.  Progress
/// re-arms the write deadline; a full drain clears it.
fn flush_conn(conn: &mut Conn, write_timeout: Duration) {
    while !conn.write_buf.is_empty() {
        match (&conn.stream).write(&conn.write_buf) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.write_buf.drain(..n);
                conn.write_deadline = Some(Instant::now() + write_timeout);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if conn.write_deadline.is_none() {
                    conn.write_deadline = Some(Instant::now() + write_timeout);
                }
                return;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.write_deadline = None;
}

/// Appends a control reply line (never subject to chaos actions).
fn push_control(conn: &mut Conn, text: &str) {
    conn.write_buf.extend_from_slice(text.as_bytes());
    conn.write_buf.push(b'\n');
}

/// Appends a compute reply line through the chaos gate.  Chaos reply
/// actions apply to *every* compute reply — engine results, cache
/// hits, inline errors — while control replies stay intact so
/// harnesses can always observe final state.
fn push_compute_reply(conn: &mut Conn, text: &str, shared: &Shared) {
    if let Some(chaos) = &shared.cfg.chaos {
        match chaos.on_reply() {
            ReplyAction::Deliver => {}
            ReplyAction::Tear => {
                // The tear is a mid-line flush boundary on the wire,
                // not data loss: the line still completes.
                shared.metrics.chaos_injected("torn_write");
                let half = text.len() / 2;
                conn.write_buf.extend_from_slice(&text.as_bytes()[..half]);
                flush_conn(conn, shared.cfg.write_timeout);
                conn.write_buf.extend_from_slice(&text.as_bytes()[half..]);
                conn.write_buf.push(b'\n');
                return;
            }
            ReplyAction::Drop => {
                // Swallow this reply, abandon unprocessed pipelined
                // lines, flush earlier replies, then close — exactly
                // the blast radius of the old thread-per-connection
                // drop.
                shared.metrics.chaos_injected("connection_drop");
                conn.pending.clear();
                conn.close_after_flush = true;
                return;
            }
        }
    }
    conn.write_buf.extend_from_slice(text.as_bytes());
    conn.write_buf.push(b'\n');
}

/// Processes parsed request lines until one goes in flight (at most
/// one compute request per connection runs at a time; pipelined lines
/// wait their turn in `pending`).
fn service_conn(conn: &mut Conn, slot: usize, gen: u64, shared: &Shared, route: &WorkerRoute) {
    while conn.inflight.is_none() && !conn.close_after_flush && !conn.dead {
        let Some(next) = conn.pending.pop_front() else {
            return;
        };
        match next {
            Pending::TooLarge(bytes) => {
                shared.metrics.oversized();
                let e = SdpError::PayloadTooLarge {
                    bytes,
                    limit: shared.cfg.max_request_bytes,
                };
                push_control(conn, &protocol::error_response(0, &e));
            }
            Pending::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(conn, &line, slot, gen, shared, route);
            }
        }
    }
}

/// Decodes one request line and routes it: control requests reply
/// inline, compute requests either reply inline (cache hit, degraded,
/// rejected) or go in flight through the admission queue.
fn handle_line(
    conn: &mut Conn,
    line: &str,
    slot: usize,
    gen: u64,
    shared: &Shared,
    route: &WorkerRoute,
) {
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(reason) => {
            shared.metrics.malformed();
            push_control(
                conn,
                &protocol::error_response(0, &SdpError::MalformedRequest { reason }),
            );
            return;
        }
    };
    let request = match protocol::decode(&doc) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.malformed();
            let id = json::get(&doc, "id").and_then(json::as_i64).unwrap_or(0);
            push_control(conn, &protocol::error_response(id, &e));
            return;
        }
    };
    match request {
        Request::Metrics { id } => {
            let snapshot = shared.metrics.to_json(shared.queue.depth());
            push_control(conn, &protocol::ok_response(id, snapshot, false, 0));
        }
        Request::MetricsText { id } => {
            let payload = Json::object()
                .with("format", "prometheus")
                .with("text", shared.metrics.render_prometheus());
            push_control(conn, &protocol::ok_response(id, payload, false, 0));
        }
        Request::Shutdown { id } => {
            let reply = protocol::ok_response(id, Json::object().with("draining", true), false, 0);
            push_control(conn, &reply);
            shared.begin_shutdown();
        }
        Request::Compute {
            id,
            body,
            deadline_ms,
        } => {
            let class = body.class();
            match handle_compute(id, body, deadline_ms, slot, gen, shared, route) {
                Some(reply) => push_compute_reply(conn, &reply, shared),
                None => conn.inflight = Some(Inflight { id, class }),
            }
        }
    }
}

/// Closes a request span at reply delivery: measures the `respond`
/// phase (engine done → reply in the worker's hands), feeds the span
/// to the metrics pipeline, and — when tracing is enabled — appends
/// one trace slice per phase, laid back-to-back on the engine class's
/// lane.
fn finish_span(id: i64, class: Class, batch: usize, span: &SpanTimes, shared: &Shared) {
    let respond_us = span.engine_done.elapsed().as_micros() as u64;
    let total_us = span.coalesce_us + span.queue_us + span.engine_us + respond_us;
    shared.metrics.record_respond(
        class,
        span.coalesce_us,
        span.queue_us,
        span.engine_us,
        respond_us,
        total_us,
    );
    let Some(trace) = &shared.trace else { return };
    let mut t = lock_recover(trace);
    let end_us = t.t0.elapsed().as_micros() as u64;
    // Zero-length phases get the viewer's 1 µs minimum width, so the
    // rendered span may end slightly past `end_us`; start from the
    // widened durations to keep the slices contiguous.
    let durs = [
        span.coalesce_us.max(1),
        span.queue_us.max(1),
        span.engine_us.max(1),
        respond_us.max(1),
    ];
    let mut ts = end_us.saturating_sub(durs.iter().sum());
    for (phase, dur) in PHASES.iter().zip(durs) {
        t.trace.complete_with_args(
            phase,
            class.name(),
            ts,
            dur,
            0,
            class.index() as u32,
            vec![
                ("id".to_string(), Json::Int(id)),
                ("batch".to_string(), Json::from(batch)),
            ],
        );
        ts += dur;
    }
}

/// Renders and delivers one completed job's reply, closing its span
/// and re-arming the idle clock.
fn deliver_completion(conn: &mut Conn, resp: JobResponse, shared: &Shared) {
    let Some(inflight) = conn.inflight.take() else {
        return;
    };
    finish_span(inflight.id, inflight.class, resp.batch, &resp.span, shared);
    let text = match resp.result {
        Ok(payload) => protocol::ok_engine_response(
            inflight.id,
            payload,
            resp.batch,
            resp.engine.map_or("sim", |k| k.name()),
        ),
        Err(e) => protocol::error_response(inflight.id, &e),
    };
    push_compute_reply(conn, &text, shared);
    conn.idle_deadline = Instant::now() + shared.cfg.idle_timeout;
}

/// The oracle fallback an open breaker degrades to, for classes whose
/// served payload is bit-identical to the engine's.  `Chain` is out
/// (the engine adds a `steps` field) and `Multistage` is out (interior
/// shape checks are engine-side), so those fast-reject instead.
fn fallback_payload(body: &Body) -> Option<Json> {
    use sdp_oracle::served;
    match body {
        Body::Matmul { a, b } => Some(served::served_matmul(a, b)),
        Body::Edit { a, b } => Some(served::served_edit(a, b)),
        Body::Bst { freq } => Some(served::served_bst(freq)),
        Body::AndOr { graph, root } => Some(served::served_andor(graph, *root)),
        Body::Align {
            a,
            b,
            matched,
            mismatched,
            gap,
        } => Some(served::served_align(a, b, *matched, *mismatched, *gap)),
        Body::Knapsack { items, capacity } => {
            let pairs: Vec<(u64, u64)> = items.iter().map(|it| (it.weight, it.value)).collect();
            Some(served::served_knapsack(&pairs, *capacity))
        }
        Body::Chain { .. } | Body::Multistage { .. } => None,
    }
}

/// The compute admission path.  Returns `Some(reply)` for an inline
/// answer (cache hit, degraded fallback, typed rejection), `None` once
/// the job is in flight and its reply will arrive as a [`Completion`].
fn handle_compute(
    id: i64,
    body: Body,
    deadline_ms: Option<u64>,
    slot: usize,
    gen: u64,
    shared: &Shared,
    route: &WorkerRoute,
) -> Option<String> {
    let class = body.class();
    let key = body.canonical_key();
    if let Some(payload) = lock_recover(&shared.caches[class.index()]).get(&key) {
        shared.metrics.cache_hit(class);
        // The hot path: splice the pre-rendered payload straight into
        // the envelope — no parse, no clone, no re-render.
        return Some(protocol::ok_cached_response(id, &payload));
    }
    shared.metrics.cache_miss();
    let breaker = &shared.breakers[class.index()];
    let admission = breaker.admit();
    if let Admission::Reject { retry_after_ms } = admission {
        // Open breaker: degrade small decode-validated inputs to the
        // reference solver instead of going dark; everything else
        // fast-rejects with the remaining cooldown as a retry hint.
        if key.len() <= shared.cfg.breaker_fallback_max_bytes {
            if let Some(payload) = fallback_payload(&body) {
                shared.metrics.degraded(class);
                return Some(protocol::degraded_response(id, payload));
            }
        }
        shared.metrics.rejected_circuit_open();
        return Some(protocol::error_response(
            id,
            &SdpError::CircuitOpen { retry_after_ms },
        ));
    }
    let probe = matches!(admission, Admission::Admit { probe: true });
    let deadline_ms = deadline_ms.unwrap_or(shared.cfg.default_deadline.as_millis() as u64);
    let now = Instant::now();
    let deadline = now
        .checked_add(Duration::from_millis(deadline_ms))
        // An absurd deadline_ms can overflow Instant arithmetic; a
        // year out is indistinguishable from "no deadline".
        .unwrap_or_else(|| now + Duration::from_secs(365 * 24 * 3600));
    let job = Job {
        body,
        cache_key: key,
        tx: ReplySink::Event {
            inbox: Arc::clone(&route.completions),
            wake: route.wake.clone(),
            slot,
            gen,
        },
        enqueued: now,
        deadline,
        deadline_ms,
    };
    match shared.queue.submit(job) {
        Ok(()) => None,
        Err(e) => {
            match &e {
                SdpError::QueueFull { .. } => shared.metrics.rejected_queue_full(),
                SdpError::Overloaded { .. } => shared.metrics.rejected_overloaded(),
                _ => {}
            }
            if probe {
                // The probe never reached the engine; free its slot so
                // the breaker can try again.
                breaker.record_skip();
            }
            Some(protocol::error_response(id, &e))
        }
    }
}
