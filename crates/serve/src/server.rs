//! The TCP request server: accept loop, connection threads, and the
//! batch dispatcher.
//!
//! Threading model: one acceptor thread, one detached thread per
//! connection, and one dispatcher thread that pulls coalesced buckets
//! off the [`Queue`](crate::queue::Queue) and fans them out over a
//! [`StealPool`].  Connection threads never run engines — they decode,
//! probe the cache, enqueue, and block on a per-request reply channel,
//! so a slow simulation on one connection cannot stall another
//! connection's protocol handling.
//!
//! The panic contract: every failure path a client can trigger —
//! malformed JSON, oversized lines, invalid problems, engine panics,
//! backpressure, shutdown — produces a typed
//! [`SdpError`](sdp_fault::SdpError) response line.  A panic inside an
//! engine is caught at the bucket boundary and surfaces as
//! `task_panicked` for every rider of that bucket; the server itself
//! keeps running.

use crate::cache::LruCache;
use crate::engine;
use crate::metrics::{Metrics, PHASES};
use crate::protocol::{self, Class, Request};
use crate::queue::{Job, JobResponse, Queue, QueueConfig, SpanTimes};
use crate::{json, Config};
use sdp_fault::SdpError;
use sdp_par::{lock_recover, StealPool};
use sdp_trace::chrome::ChromeTrace;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// The in-memory Chrome trace a `Config { trace: true }` server
/// collects: one slice per request phase, lanes keyed by engine class.
struct TraceState {
    /// Trace epoch — slice timestamps are µs since server start.
    t0: Instant,
    trace: ChromeTrace,
}

struct Shared {
    cfg: Config,
    addr: SocketAddr,
    queue: Queue,
    cache: Mutex<LruCache>,
    metrics: Metrics,
    trace: Option<Mutex<TraceState>>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Idempotent shutdown trigger: stop admissions, flush leftovers,
    /// and wake the acceptor with a loopback dial.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.start_drain();
        // accept() has no timeout; an empty connection unblocks it so
        // the acceptor can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`] for a graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Largest coalesced batch dispatched so far (test/experiment hook).
    pub fn max_coalesced(&self) -> u64 {
        self.shared.metrics.max_coalesced()
    }

    /// Cache hits so far (test/experiment hook).
    pub fn cache_hits(&self) -> u64 {
        self.shared.metrics.cache_hits()
    }

    /// The rendered Chrome trace collected so far, or `None` when the
    /// server was started with `Config { trace: false }`.
    pub fn trace_snapshot(&self) -> Option<String> {
        self.shared
            .trace
            .as_ref()
            .map(|t| lock_recover(t).trace.render())
    }

    /// Blocks until the server drains (a `shutdown` request or an
    /// earlier [`ServerHandle::shutdown`]) and joins its threads,
    /// keeping the handle alive for post-drain inspection
    /// ([`ServerHandle::trace_snapshot`]).  Idempotent.
    pub fn wait(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }

    /// Blocks until a client-initiated `shutdown` request drains the
    /// server, then joins the threads (the `sdp-serve` binary's main).
    pub fn shutdown_on_request(mut self) {
        self.wait();
    }

    /// Stops admitting requests, flushes every queued bucket, waits for
    /// in-flight work, and joins the server threads.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.wait();
    }
}

/// Binds `cfg.addr` and starts the acceptor and dispatcher threads.
pub fn serve(cfg: Config) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let queue_cfg = QueueConfig {
        max_queue: cfg.max_queue,
        max_batch: cfg.max_batch,
        max_delay: cfg.max_delay,
    };
    let shared = Arc::new(Shared {
        addr,
        queue: Queue::new(queue_cfg),
        cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
        metrics: Metrics::new(cfg.workers),
        trace: cfg.trace.then(|| {
            Mutex::new(TraceState {
                t0: Instant::now(),
                trace: ChromeTrace::new(),
            })
        }),
        shutdown: AtomicBool::new(false),
        cfg,
    });
    shared
        .metrics
        .register_queue_gauge(shared.queue.depth_gauge());

    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("sdp-serve-dispatch".into())
            .spawn(move || dispatch_loop(&shared))?
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("sdp-serve-accept".into())
            .spawn(move || accept_loop(listener, shared))?
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        dispatcher: Some(dispatcher),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // Detached: a connection that lingers past shutdown gets typed
        // shutting_down responses until the client closes it.
        let _ = thread::Builder::new()
            .name("sdp-serve-conn".into())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let pool = StealPool::new(shared.cfg.workers);
    while let Some(batches) = shared.queue.next_batches() {
        let flushed = Instant::now();
        let tasks: Vec<_> = batches
            .into_iter()
            .map(|(class, jobs)| {
                let shared = Arc::clone(shared);
                move || {
                    let started = Instant::now();
                    let bodies: Vec<_> = jobs.iter().map(|j| j.body.clone()).collect();
                    let size = jobs.len();
                    shared.metrics.dispatched_batch(class, size);
                    let results =
                        catch_unwind(AssertUnwindSafe(|| engine::run_bucket(class, &bodies)))
                            .unwrap_or_else(|_| {
                                jobs.iter()
                                    .map(|_| {
                                        Err(SdpError::TaskPanicked {
                                            task: 0,
                                            attempts: 1,
                                        })
                                    })
                                    .collect()
                            });
                    let engine_done = Instant::now();
                    // Batch-level phase boundaries; only the coalesce
                    // wait differs per rider (each admitted at its own
                    // time, all flushed together).
                    let queue_us = started.saturating_duration_since(flushed).as_micros() as u64;
                    let engine_us =
                        engine_done.saturating_duration_since(started).as_micros() as u64;
                    for (job, result) in jobs.into_iter().zip(results) {
                        let ok = result.is_ok();
                        if let Ok(payload) = &result {
                            if lock_recover(&shared.cache).insert(job.cache_key, payload.clone()) {
                                shared.metrics.cache_evicted();
                            }
                        }
                        let coalesce_us =
                            flushed.saturating_duration_since(job.enqueued).as_micros() as u64;
                        shared.metrics.record_dispatch_phases(
                            class,
                            coalesce_us,
                            queue_us,
                            engine_us,
                        );
                        shared.metrics.completed(class, ok, job.enqueued.elapsed());
                        // A dropped receiver means the client hung up
                        // mid-request; the work is simply discarded.
                        let _ = job.tx.send(JobResponse {
                            result,
                            batch: size,
                            span: SpanTimes {
                                coalesce_us,
                                queue_us,
                                engine_us,
                                engine_done,
                            },
                        });
                    }
                }
            })
            .collect();
        pool.run_observed(tasks, shared.metrics.pool_stats());
    }
}

/// Reads one newline-terminated request line, enforcing the byte limit
/// without trusting the client to ever send a newline.  Returns
/// `Ok(None)` on clean EOF, `Err(bytes_read)` when the line exceeded
/// the limit (the rest of the line is drained so the connection can
/// continue).
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
) -> std::io::Result<Result<Option<String>, usize>> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(limit as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Ok(None));
    }
    if n > limit || (n == limit + 1 && buf.last() != Some(&b'\n')) {
        // Drain the oversized line chunk-wise so the next request can
        // be parsed from a clean boundary.
        let mut total = n;
        if buf.last() != Some(&b'\n') {
            let mut chunk = [0u8; 4096];
            'drain: loop {
                let read = reader.read(&mut chunk)?;
                if read == 0 {
                    break;
                }
                total += read;
                if chunk[..read].contains(&b'\n') {
                    break 'drain;
                }
            }
        }
        return Ok(Err(total));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    Ok(Ok(Some(String::from_utf8_lossy(&buf).into_owned())))
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_capped(&mut reader, shared.cfg.max_request_bytes) {
            Ok(Ok(Some(line))) => line,
            // Clean EOF or a mid-request disconnect: either way the
            // client is gone; drop the connection, never the server.
            Ok(Ok(None)) | Err(_) => return,
            Ok(Err(bytes)) => {
                shared.metrics.oversized();
                let e = SdpError::PayloadTooLarge {
                    bytes,
                    limit: shared.cfg.max_request_bytes,
                };
                if respond(&mut writer, &protocol::error_response(0, &e)).is_err() {
                    return;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&line, shared);
        if respond(&mut writer, &reply).is_err() {
            return;
        }
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_line(line: &str, shared: &Shared) -> String {
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(reason) => {
            shared.metrics.malformed();
            return protocol::error_response(0, &SdpError::MalformedRequest { reason });
        }
    };
    let request = match protocol::decode(&doc) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.malformed();
            let id = json::get(&doc, "id").and_then(json::as_i64).unwrap_or(0);
            return protocol::error_response(id, &e);
        }
    };
    match request {
        Request::Metrics { id } => {
            let snapshot = shared.metrics.to_json(shared.queue.depth());
            protocol::ok_response(id, snapshot, false, 0)
        }
        Request::MetricsText { id } => {
            let payload = Json::object()
                .with("format", "prometheus")
                .with("text", shared.metrics.render_prometheus());
            protocol::ok_response(id, payload, false, 0)
        }
        Request::Shutdown { id } => {
            let reply = protocol::ok_response(id, Json::object().with("draining", true), false, 0);
            shared.begin_shutdown();
            reply
        }
        Request::Compute { id, body } => handle_compute(id, body, shared),
    }
}

use sdp_trace::json::Json;

/// Closes a request span in the connection thread: measures the
/// `respond` phase (engine done → reply in hand), feeds the span to the
/// metrics pipeline, and — when tracing is enabled — appends one trace
/// slice per phase, laid back-to-back on the engine class's lane.
fn finish_span(id: i64, class: Class, batch: usize, span: &SpanTimes, shared: &Shared) {
    let respond_us = span.engine_done.elapsed().as_micros() as u64;
    let total_us = span.coalesce_us + span.queue_us + span.engine_us + respond_us;
    shared.metrics.record_respond(
        class,
        span.coalesce_us,
        span.queue_us,
        span.engine_us,
        respond_us,
        total_us,
    );
    let Some(trace) = &shared.trace else { return };
    let mut t = lock_recover(trace);
    let end_us = t.t0.elapsed().as_micros() as u64;
    // Zero-length phases get the viewer's 1 µs minimum width, so the
    // rendered span may end slightly past `end_us`; start from the
    // widened durations to keep the slices contiguous.
    let durs = [
        span.coalesce_us.max(1),
        span.queue_us.max(1),
        span.engine_us.max(1),
        respond_us.max(1),
    ];
    let mut ts = end_us.saturating_sub(durs.iter().sum());
    for (phase, dur) in PHASES.iter().zip(durs) {
        t.trace.complete_with_args(
            phase,
            class.name(),
            ts,
            dur,
            0,
            class.index() as u32,
            vec![
                ("id".to_string(), Json::Int(id)),
                ("batch".to_string(), Json::from(batch)),
            ],
        );
        ts += dur;
    }
}

fn handle_compute(id: i64, body: crate::protocol::Body, shared: &Shared) -> String {
    let class = body.class();
    let key = body.canonical_key();
    if let Some(payload) = lock_recover(&shared.cache).get(&key) {
        shared.metrics.cache_hit(class);
        return protocol::ok_response(id, payload, true, 0);
    }
    shared.metrics.cache_miss();
    let (tx, rx) = mpsc::channel();
    let job = Job {
        body,
        cache_key: key,
        tx,
        enqueued: Instant::now(),
    };
    if let Err(e) = shared.queue.submit(job) {
        if matches!(e, SdpError::QueueFull { .. }) {
            shared.metrics.rejected_queue_full();
        }
        return protocol::error_response(id, &e);
    }
    match rx.recv() {
        Ok(JobResponse {
            result: Ok(payload),
            batch,
            span,
        }) => {
            finish_span(id, class, batch, &span, shared);
            protocol::ok_response(id, payload, false, batch)
        }
        Ok(JobResponse {
            result: Err(e),
            batch,
            span,
        }) => {
            finish_span(id, class, batch, &span, shared);
            protocol::error_response(id, &e)
        }
        // The dispatcher dropped the sender without replying — only
        // possible if it died; still answer with a typed error.
        Err(_) => protocol::error_response(
            id,
            &SdpError::TaskPanicked {
                task: 0,
                attempts: 1,
            },
        ),
    }
}
