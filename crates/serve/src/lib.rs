//! `sdp-serve` — a dynamic-batching request server over the systolic
//! DP engines.
//!
//! The simulation crates answer one problem per call; this crate turns
//! them into a long-running service.  Clients connect over TCP and send
//! newline-delimited JSON requests for any engine family — multistage
//! graphs on Designs 1/2, min-plus matrix products, edit distance,
//! matrix-chain/optimal-BST, AND/OR graph evaluation.  The server
//! coalesces same-shape requests into batches for the PR 3 pipelined
//! entry points (the serving-side use of the paper's §6 observation
//! that independent instances pipeline through one array), caches
//! results under canonical problem keys, and degrades every failure —
//! malformed input, engine panics, overload, shutdown — into a typed
//! [`SdpError`](sdp_fault::SdpError) response instead of a dropped
//! connection.
//!
//! Module map:
//! - [`json`]: wire-format parser (inverse of `sdp-trace`'s serializer)
//! - [`protocol`]: request decoding, canonical keys, response envelopes
//! - [`queue`]: admission control and batch coalescing
//! - [`engine`]: per-class dispatch onto the systolic engines
//! - [`cache`]: exact-key LRU result cache
//! - [`metrics`]: lock-free telemetry (counters, histograms, spans)
//!   over the `sdp-metrics` registry, with JSON and Prometheus exporters
//! - [`server`]: TCP accept loop, connection threads, dispatcher
//! - [`client`]: blocking client and request builders

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use server::{serve, ServerHandle};

use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Admission-queue depth limit (beyond it: `queue_full`).
    pub max_queue: usize,
    /// Coalesced-batch size cap.
    pub max_batch: usize,
    /// Coalescing delay window.
    pub max_delay: Duration,
    /// LRU result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Worker threads in the dispatch pool.
    pub workers: usize,
    /// Request-line byte limit (beyond it: `payload_too_large`).
    pub max_request_bytes: usize,
    /// Collect per-request phase spans into an in-memory Chrome trace,
    /// exported via [`ServerHandle::trace_snapshot`] (and the
    /// `sdp-serve --trace-out` flag).
    pub trace: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            max_queue: 1024,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
            cache_capacity: 256,
            workers: 4,
            max_request_bytes: 1 << 20,
            trace: false,
        }
    }
}
