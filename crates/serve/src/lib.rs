//! `sdp-serve` — a dynamic-batching request server over the systolic
//! DP engines.
//!
//! The simulation crates answer one problem per call; this crate turns
//! them into a long-running service.  Clients connect over TCP and send
//! newline-delimited JSON requests for any engine family — multistage
//! graphs on Designs 1/2, min-plus matrix products, edit distance,
//! matrix-chain/optimal-BST, AND/OR graph evaluation.  The server
//! coalesces same-shape requests into batches for the PR 3 pipelined
//! entry points (the serving-side use of the paper's §6 observation
//! that independent instances pipeline through one array), caches
//! results under canonical problem keys, and degrades every failure —
//! malformed input, engine panics, overload, shutdown — into a typed
//! [`SdpError`](sdp_fault::SdpError) response instead of a dropped
//! connection.
//!
//! Module map:
//! - [`json`]: wire-format parser (inverse of `sdp-trace`'s serializer)
//! - [`protocol`]: request decoding, canonical keys, response envelopes
//! - [`queue`]: admission control, load shedding, and batch coalescing
//! - [`breaker`]: per-engine-class circuit breaker
//! - [`engine`]: per-class dispatch onto the systolic engines
//! - [`cache`]: exact-key LRU result cache
//! - [`metrics`]: lock-free telemetry (counters, histograms, spans)
//!   over the `sdp-metrics` registry, with JSON and Prometheus exporters
//! - [`evloop`]: `poll(2)` readiness primitives and the self-pipe wake
//!   channel shared by the server front-end and the load generator
//! - [`server`]: acceptor, event-loop connection workers, per-class
//!   dispatchers
//! - [`client`]: blocking client and request builders
//! - [`loadgen`]: open/closed-loop load generator (the `sdp_loadgen`
//!   binary) for saturation benchmarking

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod client;
pub mod engine;
pub mod evloop;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, RetryPolicy};
pub use server::{serve, ServerHandle};

use sdp_fault::ServeChaos;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Admission-queue depth limit (beyond it: `queue_full`).
    pub max_queue: usize,
    /// Load-shed threshold: at or beyond this queue depth (but below
    /// `max_queue`) new work is shed with a typed `overloaded` error
    /// carrying a `retry_after_ms` hint.
    pub shed_queue: usize,
    /// Coalesced-batch size cap.
    pub max_batch: usize,
    /// Coalescing delay window (upper bound — the adaptive flush
    /// releases buckets early whenever the arrival stream pauses).
    pub max_delay: Duration,
    /// How long a shard's dispatcher waits for a further admission
    /// before treating the arrival stream as paused and flushing
    /// partial buckets early.  Raising it toward `max_delay` restores
    /// the fixed-window coalescing behaviour (useful to manufacture
    /// queue pressure in tests).
    pub drain_tick: Duration,
    /// Event-loop connection workers (each owns a slab of nonblocking
    /// sockets multiplexed with `poll(2)`).
    pub event_workers: usize,
    /// LRU result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Worker threads in the dispatch pool.
    pub workers: usize,
    /// Request-line byte limit (beyond it: `payload_too_large`).
    pub max_request_bytes: usize,
    /// Deadline applied to requests that carry no `deadline_ms` field.
    /// Jobs still queued when their deadline passes are expired with a
    /// typed `deadline_exceeded` error instead of burning engine work.
    pub default_deadline: Duration,
    /// Slow-loris reap window: a connection stalled mid-request-line
    /// (or that never completed one) for this long is closed.
    /// Established connections idling cleanly between requests are
    /// exempt — a parked socket costs the event loop nothing.
    pub idle_timeout: Duration,
    /// Socket write timeout for response lines.
    pub write_timeout: Duration,
    /// Consecutive engine-bucket panics of one class that trip that
    /// class's circuit breaker open.
    pub breaker_trip_after: u32,
    /// How long a tripped breaker stays open before admitting one
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// While a breaker is open, requests whose canonical key is at most
    /// this many bytes are answered by the `sdp-oracle` reference
    /// solver (degraded but correct); larger ones are fast-rejected.
    pub breaker_fallback_max_bytes: usize,
    /// Engine-dispatch crossover: buckets whose per-instance work
    /// measure (see [`engine::body_work`]) is at or beyond this run on
    /// the `sdp-backend` direct solvers, smaller ones on the
    /// cycle-accurate simulators.  Payloads are bit-identical either
    /// way; the choice is recorded in metrics and the response's
    /// `engine` field.  `u64::MAX` pins everything to the simulator.
    pub direct_threshold: u64,
    /// Serving-level chaos injection (`None` in production: the hooks
    /// cost one `Option` check per site).
    pub chaos: Option<Arc<ServeChaos>>,
    /// Collect per-request phase spans into an in-memory Chrome trace,
    /// exported via [`ServerHandle::trace_snapshot`] (and the
    /// `sdp-serve --trace-out` flag).
    pub trace: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            max_queue: 1024,
            shed_queue: 768,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
            drain_tick: Duration::from_micros(500),
            event_workers: 2,
            cache_capacity: 256,
            workers: 4,
            max_request_bytes: 1 << 20,
            default_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            breaker_trip_after: 5,
            breaker_cooldown: Duration::from_secs(1),
            breaker_fallback_max_bytes: 4096,
            direct_threshold: 4096,
            chaos: None,
            trace: false,
        }
    }
}
