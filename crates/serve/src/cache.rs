//! An exact-key LRU result cache, sharded per engine class.
//!
//! Keys are the *canonical byte encoding* of the problem
//! ([`Body::canonical_key`](crate::protocol::Body::canonical_key)), not
//! just its hash — a hash collision must never serve a wrong answer, so
//! the full encoding is compared on every hit.  Values are the
//! *pre-rendered* result payloads (without the per-request
//! `id`/`cached`/`batch` envelope, which differs per response) behind an
//! `Arc<str>`: the cached-hit fast path is the throughput ceiling of
//! the whole server, and re-rendering a `Json` tree per hit — or even
//! deep-cloning it out of the cache — would put an allocation storm on
//! exactly that path.  A hit now costs one `HashMap` probe and one
//! refcount bump; the reply line is assembled by string concatenation
//! (see [`protocol::ok_cached_response`](crate::protocol::ok_cached_response)).
//!
//! The server keeps one `Mutex<LruCache>` per engine class rather than
//! a single cache lock: event-loop workers probing `edit` keys no
//! longer serialize against `matmul` insertions from the dispatcher.
//! Capacity is therefore *per class*.
//!
//! Recency is a monotone stamp per entry; eviction scans for the
//! minimum stamp.  With the O(100–1000) capacities the server uses,
//! the scan is noise next to a systolic simulation, and it keeps the
//! structure a single `HashMap` with no unsafe intrusive list.

use std::collections::HashMap;
use std::sync::Arc;

/// LRU map from canonical problem keys to rendered result payloads.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    map: HashMap<Vec<u8>, (u64, Arc<str>)>,
}

impl LruCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            clock: 0,
            map: HashMap::new(),
        }
    }

    /// Current number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<Arc<str>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(stamp, payload)| {
            *stamp = clock;
            Arc::clone(payload)
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when over capacity.  Returns `true` when an entry was
    /// evicted (for the `sdp_cache_evictions_total` counter).
    pub fn insert(&mut self, key: Vec<u8>, payload: Arc<str>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.clock += 1;
        self.map.insert(key, (self.clock, payload));
        if self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u8) -> Vec<u8> {
        vec![n]
    }

    fn v(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = LruCache::new(4);
        assert!(c.get(&k(1)).is_none());
        c.insert(k(1), v("10"));
        assert_eq!(c.get(&k(1)).as_deref(), Some("10"));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(k(1), v("1")));
        assert!(!c.insert(k(2), v("2")));
        assert!(c.get(&k(1)).is_some()); // refresh 1; 2 is now LRU
        assert!(c.insert(k(3), v("3")), "over capacity evicts");
        assert_eq!(c.len(), 2);
        assert!(c.get(&k(2)).is_none(), "2 was evicted");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert(k(1), v("1"));
        assert!(c.get(&k(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn exact_keys_do_not_collide() {
        let mut c = LruCache::new(8);
        c.insert(vec![1, 2], v("12"));
        c.insert(vec![2, 1], v("21"));
        assert_eq!(c.get(&[1, 2][..]).as_deref(), Some("12"));
        assert_eq!(c.get(&[2, 1][..]).as_deref(), Some("21"));
    }

    #[test]
    fn hits_share_one_allocation() {
        let mut c = LruCache::new(4);
        let payload = v("{\"cost\":7}");
        c.insert(k(1), Arc::clone(&payload));
        let hit = c.get(&k(1)).unwrap();
        assert!(
            Arc::ptr_eq(&hit, &payload),
            "hit is a refcount bump, not a copy"
        );
    }
}
