//! Server telemetry on the lock-free `sdp-metrics` registry.
//!
//! PR 5 kept every counter behind one global `Mutex<Inner>`; at the
//! roadmap's target load that mutex is a contention point every
//! connection thread, the dispatcher, and every pool worker would
//! serialize on.  This module rebuilds the same telemetry — plus
//! latency histograms, per-phase request spans, per-class batch-size
//! histograms, pool/queue/cache instrumentation, and a
//! slowest-requests ring — on sharded atomic counters and log₂
//! histograms.  **No recording method below takes a lock**; the only
//! mutexes in sight are the registry's (registration/export time only)
//! and the slow ring's (guarded by an atomic floor so the common case
//! is one load).
//!
//! Two exporters share the counters:
//! - [`Metrics::to_json`]: the `metrics` request's JSON document — a
//!   strict superset of the PR 5 schema.  Every pre-existing field is
//!   kept (including the `17_plus` batch-overflow key, now twinned
//!   with the explicit `gt_16` label); new fields are appended.
//! - [`Metrics::render_prometheus`]: a Prometheus text exposition for
//!   the `metrics_text` request.
//!
//! Field naming still follows the golden-test redaction convention:
//! every wall-clock value lives in a field whose name contains `ms`,
//! load-dependent sample counts in fields named `samples`, so the
//! shared `redact_load_dependent()` helper in
//! `crates/bench/tests/support` can null the host-dependent numbers
//! while the schema stays byte-comparable.

use crate::engine::EngineKind;
use crate::protocol::{Class, CLASSES};
use sdp_metrics::{
    us_to_ms, Counter, Gauge, Histogram, HistogramSnapshot, Registry, SlowRing, SpanSample,
};
use sdp_par::PoolStats;
use sdp_trace::json::Json;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Request phases attributed by the span pipeline, in timeline order:
/// `coalesce` (admission → bucket flush, the delay-window wait),
/// `queue` (flush → a pool worker picks the bucket up), `engine`
/// (the systolic run itself), `respond` (engine done → the connection
/// thread has the reply in hand).
pub const PHASES: [&str; 4] = ["coalesce", "queue", "engine", "respond"];

/// JSON labels for the batch-size histogram buckets, aligned with the
/// log₂ bounds 1, 2, 4, 8, 16 and the unbounded overflow.  The last
/// bucket carries the explicit `gt_16` label (the PR 5 document also
/// keeps its historical `17_plus` spelling for compatibility).
pub const BATCH_BUCKET_LABELS: [&str; 6] = ["1", "2", "3_4", "5_8", "9_16", "gt_16"];

/// Slowest-requests ring capacity.
pub const SLOW_RING_CAP: usize = 8;

struct ClassMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    batches: Arc<Counter>,
    /// End-to-end latency (admission → completion) in µs.
    latency: Arc<Histogram>,
    /// Coalesced batch sizes this class's requests rode in.
    batch_sizes: Arc<Histogram>,
    /// One histogram per entry of [`PHASES`], in µs.
    phases: [Arc<Histogram>; PHASES.len()],
    /// Queue-wait of requests that *expired* at dispatch, in µs.  Kept
    /// apart from `latency`: an expiration never ran an engine, so
    /// folding its wait into the completed-latency series would skew
    /// p99 with samples that measure only queue pressure.
    expired_wait: Arc<Histogram>,
    /// Circuit-breaker state gauge (0 closed, 1 half-open, 2 open).
    breaker_state: Arc<Gauge>,
    /// Times this class's breaker tripped open.
    breaker_trips: Arc<Counter>,
    /// Buckets routed to each backend, indexed [sim, direct].
    engines: [Arc<Counter>; 2],
}

/// The server's metrics surface: lock-free to record, lock-only-to-export.
pub struct Metrics {
    registry: Registry,
    served: Arc<Counter>,
    errors: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    rejected_queue_full: Arc<Counter>,
    rejected_overloaded: Arc<Counter>,
    rejected_circuit_open: Arc<Counter>,
    malformed: Arc<Counter>,
    oversized: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    degraded: Arc<Counter>,
    connections: Arc<Gauge>,
    reaped: Arc<Counter>,
    /// Accepted sockets dropped because post-accept setup
    /// (`set_nonblocking`) failed — without this counter such streams
    /// vanished with no metric or log.
    accept_failures: Arc<Counter>,
    chaos: Vec<Arc<Counter>>,
    dispatches: Arc<Counter>,
    max_coalesced: Arc<Gauge>,
    /// Class-agnostic admission-queue wait (the coalesce phase), µs.
    queue_wait: Arc<Histogram>,
    /// Class-agnostic end-to-end completed latency, µs — the series
    /// behind the top-level p50/p99 the saturation benchmark reads.
    latency: Arc<Histogram>,
    per_class: Vec<ClassMetrics>,
    pool: PoolStats,
    slowest: SlowRing,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("served", &self.served.get())
            .field("errors", &self.errors.get())
            .finish()
    }
}

impl Metrics {
    /// Fresh all-zero metrics for a server with `workers` pool workers.
    pub fn new(workers: usize) -> Metrics {
        let registry = Registry::new();
        let rejected = |reason: &str| registry.counter("sdp_rejected_total", &[("reason", reason)]);
        let per_class = CLASSES
            .iter()
            .map(|class| {
                let name = class.name();
                let l = [("class", name)];
                ClassMetrics {
                    requests: registry.counter("sdp_requests_total", &l),
                    errors: registry.counter("sdp_request_errors_total", &l),
                    batches: registry.counter("sdp_batches_total", &l),
                    latency: registry.histogram(
                        "sdp_request_latency_us",
                        &l,
                        sdp_metrics::hist::LATENCY_BUCKETS,
                    ),
                    batch_sizes: registry.histogram(
                        "sdp_batch_size",
                        &l,
                        BATCH_BUCKET_LABELS.len(),
                    ),
                    phases: PHASES.map(|phase| {
                        registry.histogram(
                            "sdp_phase_us",
                            &[("class", name), ("phase", phase)],
                            sdp_metrics::hist::LATENCY_BUCKETS,
                        )
                    }),
                    expired_wait: registry.histogram(
                        "sdp_expired_wait_us",
                        &l,
                        sdp_metrics::hist::LATENCY_BUCKETS,
                    ),
                    breaker_state: registry.gauge("sdp_breaker_state", &l),
                    breaker_trips: registry.counter("sdp_breaker_trips_total", &l),
                    engines: ["sim", "direct"].map(|engine| {
                        registry.counter(
                            "sdp_engine_batches_total",
                            &[("class", name), ("engine", engine)],
                        )
                    }),
                }
            })
            .collect();
        Metrics {
            served: registry.counter("sdp_served_total", &[]),
            errors: registry.counter("sdp_errors_total", &[]),
            cache_hits: registry.counter("sdp_cache_hits_total", &[]),
            cache_misses: registry.counter("sdp_cache_misses_total", &[]),
            cache_evictions: registry.counter("sdp_cache_evictions_total", &[]),
            rejected_queue_full: rejected("queue_full"),
            rejected_overloaded: rejected("overloaded"),
            rejected_circuit_open: rejected("circuit_open"),
            malformed: rejected("malformed"),
            oversized: rejected("oversized"),
            deadline_exceeded: registry.counter("sdp_deadline_exceeded_total", &[]),
            degraded: registry.counter("sdp_degraded_total", &[]),
            connections: registry.gauge("sdp_connections", &[]),
            reaped: registry.counter("sdp_reaped_connections_total", &[]),
            accept_failures: registry.counter("sdp_accept_failures_total", &[]),
            chaos: sdp_fault::CHAOS_KINDS
                .iter()
                .map(|kind| registry.counter("sdp_chaos_injected_total", &[("kind", kind)]))
                .collect(),
            dispatches: registry.counter("sdp_dispatches_total", &[]),
            max_coalesced: registry.gauge("sdp_max_coalesced", &[]),
            queue_wait: registry.histogram(
                "sdp_queue_wait_us",
                &[],
                sdp_metrics::hist::LATENCY_BUCKETS,
            ),
            latency: registry.histogram("sdp_latency_us", &[], sdp_metrics::hist::LATENCY_BUCKETS),
            per_class,
            pool: PoolStats::new(workers),
            slowest: SlowRing::new(SLOW_RING_CAP),
            registry,
        }
    }

    /// Registers the admission queue's depth gauge (owned by the
    /// queue, exported here) under `sdp_queue_depth`.
    pub fn register_queue_gauge(&self, gauge: Arc<Gauge>) {
        self.registry.register_gauge("sdp_queue_depth", &[], gauge);
    }

    /// The dispatcher's per-worker pool telemetry lanes.
    pub fn pool_stats(&self) -> &PoolStats {
        &self.pool
    }

    fn class(&self, class: Class) -> &ClassMetrics {
        &self.per_class[class.index()]
    }

    /// Records a cache hit (served without queueing).
    pub fn cache_hit(&self, class: Class) {
        self.cache_hits.inc();
        self.served.inc();
        self.class(class).requests.inc();
    }

    /// Records a cache miss (request admitted to the queue).
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Records an eviction from the LRU result cache.
    pub fn cache_evicted(&self) {
        self.cache_evictions.inc();
    }

    /// Records an admission rejection for backpressure.
    pub fn rejected_queue_full(&self) {
        self.rejected_queue_full.inc();
    }

    /// Records a request shed at admission (`overloaded`).
    pub fn rejected_overloaded(&self) {
        self.rejected_overloaded.inc();
    }

    /// Records a fast-reject from an open circuit breaker.
    pub fn rejected_circuit_open(&self) {
        self.rejected_circuit_open.inc();
    }

    /// Records a job expired at dispatch time (deadline exceeded
    /// before any engine work was spent on it).  The request is
    /// answered (counts toward `served`/`errors` and the class's
    /// request/error counters), but its wait goes into the dedicated
    /// `sdp_expired_wait_us` series — **not** the completed-latency
    /// histograms, which must only measure requests an engine ran.
    pub fn expired(&self, class: Class, waited: Duration) {
        self.deadline_exceeded.inc();
        self.served.inc();
        self.errors.inc();
        let c = self.class(class);
        c.requests.inc();
        c.errors.inc();
        c.expired_wait.record(waited.as_micros() as u64);
    }

    /// Records an accepted socket dropped because post-accept setup
    /// failed (satellite of the event-loop rewrite: these used to
    /// vanish silently).
    pub fn accept_failed(&self) {
        self.accept_failures.inc();
    }

    /// Accept-failure count so far (test hook).
    pub fn accept_failures_count(&self) -> u64 {
        self.accept_failures.get()
    }

    /// Records a request answered by the degraded oracle fallback
    /// while this class's breaker was open.  Counts as served: the
    /// client got a correct (if slower-path) answer.
    pub fn degraded(&self, class: Class) {
        self.degraded.inc();
        self.served.inc();
        self.class(class).requests.inc();
    }

    /// Records a connection accepted.
    pub fn connection_opened(&self) {
        self.connections.add(1);
    }

    /// Records a connection closed (any reason).
    pub fn connection_closed(&self) {
        self.connections.add(-1);
    }

    /// Live connection count (test hook).
    pub fn active_connections(&self) -> i64 {
        self.connections.get()
    }

    /// Records an idle/slow connection reaped by the read-timeout
    /// watchdog.
    pub fn reaped(&self) {
        self.reaped.inc();
    }

    /// Reaped-connection count so far (test hook).
    pub fn reaped_count(&self) -> u64 {
        self.reaped.get()
    }

    /// Records one injected chaos event (`kind` must be one of
    /// [`sdp_fault::CHAOS_KINDS`]).
    pub fn chaos_injected(&self, kind: &str) {
        if let Some(i) = sdp_fault::CHAOS_KINDS.iter().position(|&k| k == kind) {
            self.chaos[i].inc();
        }
    }

    /// The breaker metrics series for one class, for wiring into a
    /// [`CircuitBreaker`](crate::breaker::CircuitBreaker).
    pub fn breaker_series(&self, class: Class) -> (Arc<Gauge>, Arc<Counter>) {
        let c = self.class(class);
        (Arc::clone(&c.breaker_state), Arc::clone(&c.breaker_trips))
    }

    /// Records a protocol decode failure.
    pub fn malformed(&self) {
        self.malformed.inc();
    }

    /// Records an oversized request line.
    pub fn oversized(&self) {
        self.oversized.inc();
    }

    /// Records one dispatched batch of `size` coalesced requests and
    /// the backend it was routed to.
    pub fn dispatched_batch(&self, class: Class, size: usize, engine: EngineKind) {
        self.dispatches.inc();
        self.max_coalesced.raise_to(size as i64);
        let c = self.class(class);
        c.batches.inc();
        c.batch_sizes.record(size as u64);
        c.engines[match engine {
            EngineKind::Sim => 0,
            EngineKind::Direct => 1,
        }]
        .inc();
    }

    /// Records one completed request with its queue-to-response latency.
    pub fn completed(&self, class: Class, ok: bool, latency: Duration) {
        self.served.inc();
        if !ok {
            self.errors.inc();
        }
        let c = self.class(class);
        c.requests.inc();
        if !ok {
            c.errors.inc();
        }
        let us = latency.as_micros() as u64;
        c.latency.record(us);
        self.latency.record(us);
    }

    /// Records the dispatcher-side phases of one request's span:
    /// coalesce (delay-window wait), queue (wait for a pool worker),
    /// and engine time, all in µs.
    pub fn record_dispatch_phases(
        &self,
        class: Class,
        coalesce_us: u64,
        queue_us: u64,
        engine_us: u64,
    ) {
        let c = self.class(class);
        c.phases[0].record(coalesce_us);
        c.phases[1].record(queue_us);
        c.phases[2].record(engine_us);
        self.queue_wait.record(coalesce_us);
    }

    /// Records the respond phase (engine done → reply in the
    /// connection thread) and offers the whole span to the
    /// slowest-requests ring.
    pub fn record_respond(
        &self,
        class: Class,
        coalesce_us: u64,
        queue_us: u64,
        engine_us: u64,
        respond_us: u64,
        total_us: u64,
    ) {
        self.class(class).phases[3].record(respond_us);
        self.slowest.offer(SpanSample {
            label: class.name(),
            total_us,
            phases: vec![
                (PHASES[0], coalesce_us),
                (PHASES[1], queue_us),
                (PHASES[2], engine_us),
                (PHASES[3], respond_us),
            ],
        });
    }

    /// Cache hits so far (for tests and drain decisions).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Largest coalesced batch dispatched so far.
    pub fn max_coalesced(&self) -> u64 {
        self.max_coalesced.get().max(0) as u64
    }

    fn phase_json(snap: &HistogramSnapshot) -> Json {
        Json::object()
            .with("samples", snap.count)
            .with("total_ms", us_to_ms(snap.sum))
            .with("mean_ms", us_to_ms(snap.sum) / (snap.count.max(1) as f64))
            .with("p50_ms", us_to_ms(snap.quantile(0.50)))
            .with("p99_ms", us_to_ms(snap.quantile(0.99)))
            .with("max_ms", us_to_ms(snap.max))
    }

    fn batch_hist_json(snap: &HistogramSnapshot) -> Json {
        let mut hist = Json::object();
        for (i, label) in BATCH_BUCKET_LABELS.iter().enumerate() {
            hist = hist.with(label, snap.counts[i]);
        }
        hist
    }

    /// Renders the full JSON snapshot; `queue_depth` is sampled by the
    /// caller from the admission queue at render time.  The document
    /// is a strict superset of the PR 5 `metrics` schema.
    pub fn to_json(&self, queue_depth: usize) -> Json {
        // Global batch-size histogram = sum of the per-class ones.
        let mut global_batches = HistogramSnapshot::empty(BATCH_BUCKET_LABELS.len());
        for c in &self.per_class {
            global_batches.merge(&c.batch_sizes.snapshot());
        }
        // The global document keeps PR 5's `17_plus` overflow spelling
        // in its original position and twins it with the explicit
        // `gt_16` label (same count, deliberate alias).
        let mut hist = Self::batch_hist_json(&global_batches);
        let Json::Object(fields) = &mut hist else {
            unreachable!()
        };
        let gt16 = fields.pop().expect("gt_16 present");
        fields.push(("17_plus".to_string(), gt16.1.clone()));
        fields.push(gt16);

        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let lookups = hits + misses;
        let mut classes = Json::object();
        for class in CLASSES {
            let c = self.class(class);
            let lat = c.latency.snapshot();
            let mut phases = Json::object();
            for (i, phase) in PHASES.iter().enumerate() {
                phases = phases.with(phase, Self::phase_json(&c.phases[i].snapshot()));
            }
            classes = classes.with(
                class.name(),
                Json::object()
                    .with("requests", c.requests.get())
                    .with("errors", c.errors.get())
                    .with("batches", c.batches.get())
                    .with(
                        "engine",
                        Json::object()
                            .with("sim", c.engines[0].get())
                            .with("direct", c.engines[1].get()),
                    )
                    .with(
                        "breaker",
                        Json::object()
                            .with("state", c.breaker_state.get())
                            .with("trips", c.breaker_trips.get()),
                    )
                    .with("mean_ms", us_to_ms(lat.sum) / (lat.count.max(1) as f64))
                    .with("max_ms", us_to_ms(lat.max))
                    .with("total_ms", us_to_ms(lat.sum))
                    .with("p50_ms", us_to_ms(lat.quantile(0.50)))
                    .with("p90_ms", us_to_ms(lat.quantile(0.90)))
                    .with("p99_ms", us_to_ms(lat.quantile(0.99)))
                    .with(
                        "batch_size_histogram",
                        Self::batch_hist_json(&c.batch_sizes.snapshot()),
                    )
                    .with("phases", phases)
                    .with("expired_wait", Self::phase_json(&c.expired_wait.snapshot())),
            );
        }

        let workers = self.pool.workers();
        let lane = |f: fn(&sdp_par::WorkerStats) -> u64| {
            Json::Array(workers.iter().map(|w| Json::from(f(w))).collect())
        };
        let pool = Json::object()
            .with("workers", workers.len() as u64)
            .with("ran", lane(sdp_par::WorkerStats::ran))
            .with("stolen", lane(sdp_par::WorkerStats::stolen))
            .with("parked", lane(sdp_par::WorkerStats::parked))
            .with("panicked", lane(sdp_par::WorkerStats::panicked));

        let slowest = Json::Array(
            self.slowest
                .snapshot()
                .into_iter()
                .map(|s| {
                    let mut phases = Json::object();
                    for (phase, us) in &s.phases {
                        phases = phases.with(&format!("{phase}_ms"), us_to_ms(*us));
                    }
                    Json::object()
                        .with("class", s.label)
                        .with("total_ms", us_to_ms(s.total_us))
                        .with("phases", phases)
                })
                .collect(),
        );

        let qwait = self.queue_wait.snapshot();
        Json::object()
            .with("served", self.served.get())
            .with("errors", self.errors.get())
            .with("queue_depth", queue_depth)
            .with("dispatches", self.dispatches.get())
            .with("max_coalesced", self.max_coalesced())
            .with("batch_size_histogram", hist)
            .with(
                "cache",
                Json::object()
                    .with("hits", hits)
                    .with("misses", misses)
                    .with(
                        "hit_rate",
                        if lookups > 0 {
                            hits as f64 / lookups as f64
                        } else {
                            0.0
                        },
                    )
                    .with("evictions", self.cache_evictions.get()),
            )
            .with(
                "rejected",
                Json::object()
                    .with("queue_full", self.rejected_queue_full.get())
                    .with("overloaded", self.rejected_overloaded.get())
                    .with("circuit_open", self.rejected_circuit_open.get())
                    .with("malformed", self.malformed.get())
                    .with("oversized", self.oversized.get()),
            )
            .with("deadline_exceeded", self.deadline_exceeded.get())
            .with("degraded", self.degraded.get())
            .with("connections", self.connections.get())
            .with("reaped", self.reaped.get())
            .with("accept_failures", self.accept_failures.get())
            .with("chaos", {
                let mut chaos = Json::object();
                for (i, kind) in sdp_fault::CHAOS_KINDS.iter().enumerate() {
                    chaos = chaos.with(kind, self.chaos[i].get());
                }
                chaos
            })
            .with("classes", classes)
            .with("queue_wait", Self::phase_json(&qwait))
            .with("latency", Self::phase_json(&self.latency.snapshot()))
            .with("pool", pool)
            .with("slowest", slowest)
    }

    /// Renders the Prometheus text exposition for the `metrics_text`
    /// request: every registered series plus the per-worker pool lanes.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        let _ = writeln!(out, "# TYPE sdp_pool_tasks_total counter");
        for (w, lane) in self.pool.workers().iter().enumerate() {
            let _ = writeln!(
                out,
                "sdp_pool_tasks_total{{worker=\"{w}\",kind=\"ran\"}} {}",
                lane.ran()
            );
            let _ = writeln!(
                out,
                "sdp_pool_tasks_total{{worker=\"{w}\",kind=\"stolen\"}} {}",
                lane.stolen()
            );
        }
        let _ = writeln!(out, "# TYPE sdp_pool_parked_total counter");
        for (w, lane) in self.pool.workers().iter().enumerate() {
            let _ = writeln!(
                out,
                "sdp_pool_parked_total{{worker=\"{w}\"}} {}",
                lane.parked()
            );
        }
        let _ = writeln!(out, "# TYPE sdp_pool_panicked_total counter");
        for (w, lane) in self.pool.workers().iter().enumerate() {
            let _ = writeln!(
                out,
                "sdp_pool_panicked_total{{worker=\"{w}\"}} {}",
                lane.panicked()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::sync::Arc as StdArc;

    #[test]
    fn snapshot_has_the_documented_schema() {
        let m = Metrics::new(4);
        m.cache_miss();
        m.dispatched_batch(Class::Edit, 3, EngineKind::Direct);
        m.completed(Class::Edit, true, Duration::from_millis(2));
        m.cache_hit(Class::Edit);
        let doc = m.to_json(5);
        assert_eq!(json::as_i64(json::get(&doc, "served").unwrap()), Some(2));
        assert_eq!(
            json::as_i64(json::get(&doc, "queue_depth").unwrap()),
            Some(5)
        );
        let hist = json::get(&doc, "batch_size_histogram").unwrap();
        assert_eq!(json::as_i64(json::get(hist, "3_4").unwrap()), Some(1));
        let cache = json::get(&doc, "cache").unwrap();
        assert_eq!(json::as_i64(json::get(cache, "hits").unwrap()), Some(1));
        assert_eq!(
            json::as_i64(json::get(cache, "evictions").unwrap()),
            Some(0)
        );
        let classes = json::get(&doc, "classes").unwrap();
        let edit = json::get(classes, "edit").unwrap();
        assert_eq!(json::as_i64(json::get(edit, "requests").unwrap()), Some(2));
        assert_eq!(json::as_i64(json::get(edit, "batches").unwrap()), Some(1));
        // New PR 6 fields are present alongside the old schema.
        for field in ["p50_ms", "p90_ms", "p99_ms", "total_ms", "phases"] {
            assert!(json::get(edit, field).is_some(), "missing {field}");
        }
        // The engine split accounts for the dispatched bucket.
        let engine = json::get(edit, "engine").unwrap();
        assert_eq!(json::as_i64(json::get(engine, "sim").unwrap()), Some(0));
        assert_eq!(json::as_i64(json::get(engine, "direct").unwrap()), Some(1));
        let prom = m.render_prometheus();
        assert!(prom.contains("sdp_engine_batches_total{class=\"edit\",engine=\"direct\"} 1"));
        assert!(prom.contains("sdp_engine_batches_total{class=\"edit\",engine=\"sim\"} 0"));
        assert!(json::get(&doc, "pool").is_some());
        assert!(json::get(&doc, "slowest").is_some());
    }

    #[test]
    fn robustness_series_land_in_both_exporters() {
        let m = Metrics::new(2);
        m.rejected_overloaded();
        m.rejected_circuit_open();
        m.expired(Class::Bst, Duration::from_millis(7));
        m.degraded(Class::Edit);
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.reaped();
        m.accept_failed();
        m.chaos_injected("engine_panic");
        m.chaos_injected("connection_drop");
        m.chaos_injected("no_such_kind"); // ignored, not a panic
        let (gauge, trips) = m.breaker_series(Class::Matmul);
        gauge.set(2);
        trips.inc();

        let doc = m.to_json(0);
        let rejected = json::get(&doc, "rejected").unwrap();
        assert_eq!(
            json::as_i64(json::get(rejected, "overloaded").unwrap()),
            Some(1)
        );
        assert_eq!(
            json::as_i64(json::get(rejected, "circuit_open").unwrap()),
            Some(1)
        );
        assert_eq!(
            json::as_i64(json::get(&doc, "deadline_exceeded").unwrap()),
            Some(1)
        );
        assert_eq!(json::as_i64(json::get(&doc, "degraded").unwrap()), Some(1));
        assert_eq!(
            json::as_i64(json::get(&doc, "connections").unwrap()),
            Some(1)
        );
        assert_eq!(json::as_i64(json::get(&doc, "reaped").unwrap()), Some(1));
        assert_eq!(
            json::as_i64(json::get(&doc, "accept_failures").unwrap()),
            Some(1)
        );
        let chaos = json::get(&doc, "chaos").unwrap();
        assert_eq!(
            json::as_i64(json::get(chaos, "engine_panic").unwrap()),
            Some(1)
        );
        assert_eq!(
            json::as_i64(json::get(chaos, "engine_stall").unwrap()),
            Some(0)
        );
        let classes = json::get(&doc, "classes").unwrap();
        let mm = json::get(classes, "matmul").unwrap();
        let breaker = json::get(mm, "breaker").unwrap();
        assert_eq!(json::as_i64(json::get(breaker, "state").unwrap()), Some(2));
        assert_eq!(json::as_i64(json::get(breaker, "trips").unwrap()), Some(1));
        // Degraded answers count as served for that class.
        let edit = json::get(classes, "edit").unwrap();
        assert_eq!(json::as_i64(json::get(edit, "requests").unwrap()), Some(1));
        // served = 1 degraded + 1 expired; the expiration is an
        // answered error, not a silent drop.
        assert_eq!(json::as_i64(json::get(&doc, "served").unwrap()), Some(2));
        assert_eq!(json::as_i64(json::get(&doc, "errors").unwrap()), Some(1));
        // The expiration's wait lands in its own series, never in the
        // completed-latency histograms.
        let bst = json::get(classes, "bst").unwrap();
        assert_eq!(json::as_i64(json::get(bst, "requests").unwrap()), Some(1));
        assert_eq!(json::as_i64(json::get(bst, "errors").unwrap()), Some(1));
        let expired = json::get(bst, "expired_wait").unwrap();
        assert_eq!(
            json::as_i64(json::get(expired, "samples").unwrap()),
            Some(1)
        );
        assert_eq!(
            json::as_i64(json::get(json::get(&doc, "latency").unwrap(), "samples").unwrap()),
            Some(0),
            "expirations must not skew completed latency"
        );

        let prom = m.render_prometheus();
        for series in [
            "sdp_rejected_total{reason=\"overloaded\"} 1",
            "sdp_rejected_total{reason=\"circuit_open\"} 1",
            "sdp_deadline_exceeded_total 1",
            "sdp_degraded_total 1",
            "sdp_connections 1",
            "sdp_reaped_connections_total 1",
            "sdp_accept_failures_total 1",
            "sdp_chaos_injected_total{kind=\"engine_panic\"} 1",
            "sdp_breaker_state{class=\"matmul\"} 2",
            "sdp_breaker_trips_total{class=\"matmul\"} 1",
            "sdp_expired_wait_us_count{class=\"bst\"} 1",
        ] {
            assert!(prom.contains(series), "missing prometheus series {series}");
        }
    }

    #[test]
    fn histogram_buckets_cover_all_sizes_and_label_the_overflow() {
        let m = Metrics::new(1);
        for size in [1, 2, 3, 4, 5, 8, 9, 16, 17, 100] {
            m.dispatched_batch(Class::Matmul, size, EngineKind::Sim);
        }
        let doc = m.to_json(0);
        let hist = json::get(&doc, "batch_size_histogram").unwrap();
        let total: i64 = ["1", "2", "3_4", "5_8", "9_16", "gt_16"]
            .iter()
            .map(|k| json::as_i64(json::get(hist, k).unwrap()).unwrap())
            .sum();
        assert_eq!(total, 10);
        // The overflow bucket is explicitly labelled, and the legacy
        // spelling reports the same count.
        assert_eq!(json::as_i64(json::get(hist, "gt_16").unwrap()), Some(2));
        assert_eq!(
            json::get(hist, "17_plus").and_then(json::as_i64),
            json::get(hist, "gt_16").and_then(json::as_i64),
        );
        assert_eq!(m.max_coalesced(), 100);
        // The per-class histogram sees the same sizes.
        let classes = json::get(&doc, "classes").unwrap();
        let mm = json::get(classes, "matmul").unwrap();
        let per_class = json::get(mm, "batch_size_histogram").unwrap();
        assert_eq!(
            json::as_i64(json::get(per_class, "gt_16").unwrap()),
            Some(2)
        );
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let m = Metrics::new(1);
        for _ in 0..98 {
            m.completed(Class::Chain, true, Duration::from_micros(100));
        }
        // Two slow outliers: the p99 rank (99 of 100) lands on them.
        m.completed(Class::Chain, true, Duration::from_micros(50_000));
        m.completed(Class::Chain, true, Duration::from_micros(50_000));
        let doc = m.to_json(0);
        let chain = json::get(json::get(&doc, "classes").unwrap(), "chain").unwrap();
        let p50 = json::get(chain, "p50_ms").unwrap();
        let p99 = json::get(chain, "p99_ms").unwrap();
        // 100 µs ∈ (64,128] → 0.128 ms; 50 ms ∈ (32768,65536] → 65.536 ms.
        assert_eq!(p50, &Json::Float(0.128));
        assert_eq!(p99, &Json::Float(65.536));
        let max = json::get(chain, "max_ms").unwrap();
        assert_eq!(max, &Json::Float(50.0), "max is exact, not bucketed");
    }

    #[test]
    fn spans_feed_phase_histograms_and_the_slow_ring() {
        let m = Metrics::new(2);
        m.record_dispatch_phases(Class::Edit, 1000, 50, 400);
        m.record_respond(Class::Edit, 1000, 50, 400, 30, 1480);
        m.record_dispatch_phases(Class::Edit, 9000, 70, 600);
        m.record_respond(Class::Edit, 9000, 70, 600, 40, 9710);
        let doc = m.to_json(0);
        let edit = json::get(json::get(&doc, "classes").unwrap(), "edit").unwrap();
        let phases = json::get(edit, "phases").unwrap();
        for phase in PHASES {
            let p = json::get(phases, phase).unwrap();
            assert_eq!(json::as_i64(json::get(p, "samples").unwrap()), Some(2));
        }
        let slowest = json::get(&doc, "slowest").unwrap();
        let Json::Array(entries) = slowest else {
            panic!("slowest must be an array");
        };
        assert_eq!(entries.len(), 2);
        // Slowest first.
        assert_eq!(json::get(&entries[0], "total_ms"), Some(&Json::Float(9.71)));
    }

    #[test]
    fn recording_is_lock_free_under_concurrent_hammer() {
        // 16 threads hammer every recording path while a 17th renders
        // both exporters in a loop.  With the PR 5 mutex this was the
        // contention point; now the only assertion that matters is
        // exactness: no sample may be lost or double-counted.
        let m = StdArc::new(Metrics::new(4));
        let render = {
            let m = StdArc::clone(&m);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = m.to_json(0);
                    let _ = m.render_prometheus();
                }
            })
        };
        let threads: Vec<_> = (0..16)
            .map(|t| {
                let m = StdArc::clone(&m);
                std::thread::spawn(move || {
                    let class = CLASSES[t % CLASSES.len()];
                    for i in 0..2000u64 {
                        m.completed(class, true, Duration::from_micros(i));
                        let engine = if i % 2 == 0 {
                            EngineKind::Sim
                        } else {
                            EngineKind::Direct
                        };
                        m.dispatched_batch(class, (i % 20) as usize + 1, engine);
                        m.record_dispatch_phases(class, i, i / 2, i * 2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        render.join().unwrap();
        let doc = m.to_json(0);
        assert_eq!(
            json::as_i64(json::get(&doc, "served").unwrap()),
            Some(32_000)
        );
        assert_eq!(
            json::as_i64(json::get(&doc, "dispatches").unwrap()),
            Some(32_000)
        );
        let classes = json::get(&doc, "classes").unwrap();
        let per_class_total: i64 = CLASSES
            .iter()
            .map(|c| {
                json::as_i64(json::get(json::get(classes, c.name()).unwrap(), "requests").unwrap())
                    .unwrap()
            })
            .sum();
        assert_eq!(per_class_total, 32_000);
    }
}
