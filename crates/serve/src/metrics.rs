//! Server telemetry: queue depth, batch-size histogram, cache hit
//! rate, and per-class latency — rendered as one deterministic-schema
//! JSON document by the `metrics` request (the serving-layer companion
//! of the PR 1 `experiments --json` metrics).
//!
//! Field naming follows the golden-test redaction convention: every
//! wall-clock value lives in a field whose name contains `ms`, so the
//! shared `redact()` helper in `crates/bench/tests/support` nulls the
//! host-dependent numbers and the schema stays byte-comparable.

use crate::protocol::{Class, CLASSES};
use sdp_trace::json::Json;
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds for coalesced batch sizes.
const BATCH_BUCKETS: [(usize, &str); 5] =
    [(1, "1"), (2, "2"), (4, "3_4"), (8, "5_8"), (16, "9_16")];

#[derive(Clone, Copy, Debug, Default)]
struct ClassStats {
    requests: u64,
    errors: u64,
    batches: u64,
    total_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Default)]
struct Inner {
    served: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    rejected_queue_full: u64,
    malformed: u64,
    oversized: u64,
    dispatches: u64,
    max_coalesced: u64,
    batch_hist: [u64; BATCH_BUCKETS.len() + 1],
    per_class: [ClassStats; CLASSES.len()],
}

/// Thread-safe metrics registry shared by every server component.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A metrics mutex must never take the server down: recover the
        // counters if a panicking thread poisoned the lock.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a cache hit (served without queueing).
    pub fn cache_hit(&self, class: Class) {
        let mut m = self.lock();
        m.cache_hits += 1;
        m.served += 1;
        m.per_class[class.index()].requests += 1;
    }

    /// Records a cache miss (request admitted to the queue).
    pub fn cache_miss(&self) {
        self.lock().cache_misses += 1;
    }

    /// Records an admission rejection for backpressure.
    pub fn rejected_queue_full(&self) {
        self.lock().rejected_queue_full += 1;
    }

    /// Records a protocol decode failure.
    pub fn malformed(&self) {
        self.lock().malformed += 1;
    }

    /// Records an oversized request line.
    pub fn oversized(&self) {
        self.lock().oversized += 1;
    }

    /// Records one dispatched batch of `size` coalesced requests.
    pub fn dispatched_batch(&self, class: Class, size: usize) {
        let mut m = self.lock();
        m.dispatches += 1;
        m.max_coalesced = m.max_coalesced.max(size as u64);
        let bucket = BATCH_BUCKETS
            .iter()
            .position(|&(hi, _)| size <= hi)
            .unwrap_or(BATCH_BUCKETS.len());
        m.batch_hist[bucket] += 1;
        m.per_class[class.index()].batches += 1;
    }

    /// Records one completed request with its queue-to-response latency.
    pub fn completed(&self, class: Class, ok: bool, latency: Duration) {
        let mut m = self.lock();
        let ms = latency.as_secs_f64() * 1e3;
        m.served += 1;
        if !ok {
            m.errors += 1;
        }
        let c = &mut m.per_class[class.index()];
        c.requests += 1;
        if !ok {
            c.errors += 1;
        }
        c.total_ms += ms;
        c.max_ms = c.max_ms.max(ms);
    }

    /// Cache hits so far (for tests and drain decisions).
    pub fn cache_hits(&self) -> u64 {
        self.lock().cache_hits
    }

    /// Largest coalesced batch dispatched so far.
    pub fn max_coalesced(&self) -> u64 {
        self.lock().max_coalesced
    }

    /// Renders the full snapshot; `queue_depth` is sampled by the
    /// caller from the admission queue at render time.
    pub fn to_json(&self, queue_depth: usize) -> Json {
        let m = self.lock();
        let mut hist = Json::object();
        for (i, &(_, label)) in BATCH_BUCKETS.iter().enumerate() {
            hist = hist.with(label, m.batch_hist[i]);
        }
        hist = hist.with("17_plus", m.batch_hist[BATCH_BUCKETS.len()]);
        let lookups = m.cache_hits + m.cache_misses;
        let mut classes = Json::object();
        for class in CLASSES {
            let c = &m.per_class[class.index()];
            let mean_ms = if c.requests > 0 {
                c.total_ms / c.requests as f64
            } else {
                0.0
            };
            classes = classes.with(
                class.name(),
                Json::object()
                    .with("requests", c.requests)
                    .with("errors", c.errors)
                    .with("batches", c.batches)
                    .with("mean_ms", mean_ms)
                    .with("max_ms", c.max_ms),
            );
        }
        Json::object()
            .with("served", m.served)
            .with("errors", m.errors)
            .with("queue_depth", queue_depth)
            .with("dispatches", m.dispatches)
            .with("max_coalesced", m.max_coalesced)
            .with("batch_size_histogram", hist)
            .with(
                "cache",
                Json::object()
                    .with("hits", m.cache_hits)
                    .with("misses", m.cache_misses)
                    .with(
                        "hit_rate",
                        if lookups > 0 {
                            m.cache_hits as f64 / lookups as f64
                        } else {
                            0.0
                        },
                    ),
            )
            .with(
                "rejected",
                Json::object()
                    .with("queue_full", m.rejected_queue_full)
                    .with("malformed", m.malformed)
                    .with("oversized", m.oversized),
            )
            .with("classes", classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn snapshot_has_the_documented_schema() {
        let m = Metrics::new();
        m.cache_miss();
        m.dispatched_batch(Class::Edit, 3);
        m.completed(Class::Edit, true, Duration::from_millis(2));
        m.cache_hit(Class::Edit);
        let doc = m.to_json(5);
        assert_eq!(json::as_i64(json::get(&doc, "served").unwrap()), Some(2));
        assert_eq!(
            json::as_i64(json::get(&doc, "queue_depth").unwrap()),
            Some(5)
        );
        let hist = json::get(&doc, "batch_size_histogram").unwrap();
        assert_eq!(json::as_i64(json::get(hist, "3_4").unwrap()), Some(1));
        let cache = json::get(&doc, "cache").unwrap();
        assert_eq!(json::as_i64(json::get(cache, "hits").unwrap()), Some(1));
        let classes = json::get(&doc, "classes").unwrap();
        let edit = json::get(classes, "edit").unwrap();
        assert_eq!(json::as_i64(json::get(edit, "requests").unwrap()), Some(2));
        assert_eq!(json::as_i64(json::get(edit, "batches").unwrap()), Some(1));
    }

    #[test]
    fn histogram_buckets_cover_all_sizes() {
        let m = Metrics::new();
        for size in [1, 2, 3, 4, 5, 8, 9, 16, 17, 100] {
            m.dispatched_batch(Class::Matmul, size);
        }
        let doc = m.to_json(0);
        let hist = json::get(&doc, "batch_size_histogram").unwrap();
        let total: i64 = ["1", "2", "3_4", "5_8", "9_16", "17_plus"]
            .iter()
            .map(|k| json::as_i64(json::get(hist, k).unwrap()).unwrap())
            .sum();
        assert_eq!(total, 10);
        assert_eq!(m.max_coalesced(), 100);
    }
}
