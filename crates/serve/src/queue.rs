//! Admission queue with per-class shards and dynamic batch coalescing.
//!
//! Requests are grouped into buckets keyed by `(class, shape_key)` —
//! only uniform-shape instances can ride one pipelined array pass (the
//! PR 3 batch entry points reject mixed shapes).  Each engine class
//! owns a **shard**: its own bucket map, `Mutex`, and `Condvar`, with
//! one dispatcher thread parked per shard, so hot classes stop
//! serializing on one global lock and an admission for `edit` never
//! wakes the `matmul` dispatcher.  Depth accounting and the drain flag
//! are shard-agnostic atomics so the admission fast path touches only
//! its own shard's lock.
//!
//! A bucket flushes when it reaches `max_batch` riders, when its
//! oldest rider has waited `max_delay`, when the server starts
//! draining — or, adaptively, as soon as the arrival stream pauses: if
//! a wait of one `drain_tick` **times out** with no new admission on
//! the shard, waiting out the rest of the window cannot grow any
//! bucket, so every pending bucket flushes immediately.  The timed-out
//! gate matters: a spurious condvar wakeup (or a wake for an admission
//! into a *different* bucket of the shard) returns early from the wait
//! and must not masquerade as a quiet arrival stream, or every young
//! bucket would flush at size 1 and coalescing would silently die.
//! The delay window is the throughput/latency knob: paper Eq. 9 says
//! array utilisation under pipelining is B/(B + fill/drain), so
//! holding the window open buys a larger B at a bounded latency cost —
//! but only while requests are still arriving to coalesce.
//!
//! Backpressure is enforced at admission in two tiers: at or beyond
//! `shed_queue` queued requests `submit` sheds with
//! [`SdpError::Overloaded`] (carrying a `retry_after_ms` hint derived
//! from recently *measured* flush throughput — see [`drain_hint_ms`]),
//! beyond `max_queue` it hard-rejects with [`SdpError::QueueFull`],
//! and after [`Queue::start_drain`] it returns
//! [`SdpError::ShuttingDown`].  Each class's dispatcher thread calls
//! [`Queue::next_batches_for`] in a loop; `None` means the shard
//! drained and that dispatcher may exit.

use crate::evloop::WakeHandle;
use crate::protocol::Body;
use crate::protocol::Class;
use crate::protocol::CLASSES;
use sdp_fault::SdpError;
use sdp_metrics::Gauge;
use sdp_par::lock_recover;
use sdp_trace::json::Json;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coalescing and backpressure knobs.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Admission limit: queued (not yet dispatched) requests.
    pub max_queue: usize,
    /// Shed threshold: at or beyond this depth (but below `max_queue`)
    /// new work is shed with `overloaded` + `retry_after_ms`.
    pub shed_queue: usize,
    /// Flush a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a bucket when its oldest rider has waited this long.
    pub max_delay: Duration,
    /// How long a shard's dispatcher waits for a further admission
    /// before concluding the arrival stream has paused and flushing
    /// partial buckets early.  Small against any useful `max_delay`,
    /// large against the admission path itself, so bursts still
    /// coalesce.
    pub drain_tick: Duration,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            max_queue: 1024,
            shed_queue: 768,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
            drain_tick: Duration::from_micros(500),
        }
    }
}

/// Dispatcher-side span timings, forwarded to the event-loop worker so
/// it can close the request's `respond` phase (reply received → the
/// client-visible end of the request).
#[derive(Clone, Copy, Debug)]
pub struct SpanTimes {
    /// Admission → bucket flush (the coalescing delay-window wait), µs.
    pub coalesce_us: u64,
    /// Bucket flush → a pool worker picked the batch up, µs.
    pub queue_us: u64,
    /// Engine run, µs.
    pub engine_us: u64,
    /// When the engine finished — the respond phase starts here.
    pub engine_done: Instant,
}

/// What the dispatcher sends back to the submitting connection.
#[derive(Debug)]
pub struct JobResponse {
    /// Engine result or typed failure.
    pub result: Result<Json, SdpError>,
    /// Size of the coalesced batch this job rode in.
    pub batch: usize,
    /// Which backend ran the bucket — `None` when no engine ran (the
    /// job expired at dispatch or the bucket failed before routing),
    /// so expirations can never masquerade as simulator work.
    pub engine: Option<crate::engine::EngineKind>,
    /// Phase timings for the span pipeline.
    pub span: SpanTimes,
}

/// A completed job addressed to one event-loop connection slot:
/// `(slot, generation, response)`.  The generation guards against slot
/// reuse — a completion for a connection that already closed is
/// silently dropped, exactly like the old dropped-receiver send.
pub type Completion = (usize, u64, JobResponse);

/// Where a [`JobResponse`] is delivered.
#[derive(Debug)]
pub enum ReplySink {
    /// A blocking per-request channel (tests, simple embedders).
    Channel(mpsc::Sender<JobResponse>),
    /// An event-loop worker's completion inbox plus its wake pipe.
    Event {
        /// The worker's completion mailbox.
        inbox: Arc<Mutex<Vec<Completion>>>,
        /// Wakes the worker out of `poll` after pushing.
        wake: WakeHandle,
        /// Connection slot in the worker's slab.
        slot: usize,
        /// Slot generation at submit time.
        gen: u64,
    },
}

impl ReplySink {
    /// Delivers `resp`; errors (hung-up channel) are ignored — a
    /// vanished client just discards the work.
    pub fn send(&self, resp: JobResponse) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(resp);
            }
            ReplySink::Event {
                inbox,
                wake,
                slot,
                gen,
            } => {
                lock_recover(inbox).push((*slot, *gen, resp));
                wake.wake();
            }
        }
    }
}

/// One admitted compute request.
#[derive(Debug)]
pub struct Job {
    /// Decoded problem.
    pub body: Body,
    /// Canonical cache key (already probed and missed).
    pub cache_key: Vec<u8>,
    /// Reply route back to the owning connection.
    pub tx: ReplySink,
    /// Admission time, for latency metrics.
    pub enqueued: Instant,
    /// The job is expired (typed `deadline_exceeded`, no engine work)
    /// if it is still undispatched at this instant.
    pub deadline: Instant,
    /// The deadline the request carried, for the error payload.
    pub deadline_ms: u64,
}

/// Flush-throughput samples kept for the shed hint.
const FLUSH_LOG: usize = 8;

/// Flush history considered stale beyond this age: if the dispatchers
/// have not flushed recently, past throughput says nothing about the
/// drain rate the shed request will experience.
const FLUSH_STALE: Duration = Duration::from_secs(2);

/// Sizes the `Overloaded { retry_after_ms }` hint for a request shed
/// with `excess_over` jobs queued beyond the shed threshold.
///
/// With at least two recent flushes on record, the hint comes from the
/// *measured* drain rate: jobs flushed across the log divided by the
/// span from the oldest sample to `now`.  With no usable history (cold
/// server, stalled dispatchers, or a zero-rate degenerate window) it
/// falls back to the window-derived estimate — one `max_delay` per
/// excess `max_batch`-sized flush — which is also the pre-measurement
/// behaviour, so a fresh server still hints at least one full window.
pub fn drain_hint_ms(
    excess_over: usize,
    flushes: &VecDeque<(Instant, usize)>,
    now: Instant,
    fallback_window: Duration,
    max_batch: usize,
) -> u64 {
    if flushes.len() >= 2 {
        let oldest = flushes.front().expect("len checked").0;
        let newest = flushes.back().expect("len checked").0;
        let jobs: usize = flushes.iter().map(|&(_, n)| n).sum();
        let elapsed = now.saturating_duration_since(oldest);
        let fresh = now.saturating_duration_since(newest) <= FLUSH_STALE;
        if fresh && !elapsed.is_zero() && jobs > 0 {
            let rate_per_ms = jobs as f64 / elapsed.as_secs_f64() / 1000.0;
            let need = (excess_over + 1) as f64;
            return (need / rate_per_ms).ceil().max(1.0) as u64;
        }
    }
    let excess_batches = excess_over / max_batch.max(1) + 1;
    let window_ms = (fallback_window.as_millis() as u64).max(1);
    window_ms * excess_batches as u64
}

struct Bucket {
    jobs: Vec<Job>,
    opened: Instant,
}

struct ShardInner {
    /// Open buckets of this class, keyed by shape.
    buckets: HashMap<u64, Bucket>,
    /// Admission counter; the dispatcher compares it across a timed
    /// wait to detect a paused arrival stream.
    seq: u64,
}

struct Shard {
    inner: Mutex<ShardInner>,
    cv: Condvar,
}

/// The sharded admission queue.
pub struct Queue {
    cfg: QueueConfig,
    /// One shard per engine class, indexed by `Class::index`.
    shards: Vec<Shard>,
    /// Total queued-but-not-dispatched jobs across all shards.  Read
    /// without any lock on the admission fast path; the small window
    /// between the check and the increment can over-admit by at most
    /// the number of concurrently submitting threads, which the shed
    /// threshold's slack absorbs.
    depth: AtomicUsize,
    draining: AtomicBool,
    /// Mirror of `depth` for the metrics registry.
    depth_gauge: Arc<Gauge>,
    /// Recent `(flush time, jobs flushed)` samples for the shed hint.
    flushes: Mutex<VecDeque<(Instant, usize)>>,
}

impl Queue {
    /// An empty queue with the given knobs.
    pub fn new(cfg: QueueConfig) -> Queue {
        Queue {
            cfg,
            shards: CLASSES
                .iter()
                .map(|_| Shard {
                    inner: Mutex::new(ShardInner {
                        buckets: HashMap::new(),
                        seq: 0,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            depth_gauge: Arc::new(Gauge::new()),
            flushes: Mutex::new(VecDeque::with_capacity(FLUSH_LOG)),
        }
    }

    /// Queued-but-not-dispatched request count.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The live depth gauge, for registration with the metrics
    /// registry (`sdp_queue_depth`).
    pub fn depth_gauge(&self) -> Arc<Gauge> {
        Arc::clone(&self.depth_gauge)
    }

    /// Admits a job, or rejects it with a typed backpressure error.
    pub fn submit(&self, job: Job) -> Result<(), SdpError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(SdpError::ShuttingDown);
        }
        let depth = self.depth.load(Ordering::Relaxed);
        if depth >= self.cfg.max_queue {
            return Err(SdpError::QueueFull { depth });
        }
        if depth >= self.cfg.shed_queue {
            let hint = drain_hint_ms(
                depth - self.cfg.shed_queue,
                &lock_recover(&self.flushes),
                Instant::now(),
                self.cfg.max_delay,
                self.cfg.max_batch,
            );
            return Err(SdpError::Overloaded {
                retry_after_ms: hint,
            });
        }
        let class = job.body.class();
        let shape = job.body.shape_key();
        let shard = &self.shards[class.index()];
        let mut s = lock_recover(&shard.inner);
        // Re-check under the shard lock: `start_drain` takes every
        // shard lock after setting the flag, so a submit that passes
        // here is guaranteed to be seen by the final drain flush.
        if self.draining.load(Ordering::Acquire) {
            return Err(SdpError::ShuttingDown);
        }
        s.seq += 1;
        s.buckets
            .entry(shape)
            .or_insert_with(|| Bucket {
                jobs: Vec::new(),
                opened: Instant::now(),
            })
            .jobs
            .push(job);
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_gauge.set(depth as i64);
        drop(s);
        shard.cv.notify_one();
        Ok(())
    }

    /// Stops admitting work and wakes every shard dispatcher so
    /// remaining buckets flush immediately.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::Release);
        for shard in &self.shards {
            // Taking the lock orders this wake after any in-flight
            // submit that passed its drain re-check.
            let _guard = lock_recover(&shard.inner);
            shard.cv.notify_all();
        }
    }

    /// Blocks until at least one bucket of `class` is ready, then
    /// removes and returns all ready buckets of that shard, in
    /// deterministic shape order.  Returns `None` once the queue is
    /// draining and the shard is empty.
    pub fn next_batches_for(&self, class: Class) -> Option<Vec<Vec<Job>>> {
        let shard = &self.shards[class.index()];
        let mut s = lock_recover(&shard.inner);
        // True only after a full drain_tick wait genuinely timed out
        // with the shard's admission counter unchanged.
        let mut paused = false;
        loop {
            let now = Instant::now();
            let draining = self.draining.load(Ordering::Acquire);
            let mut next_deadline: Option<Instant> = None;
            let mut ready_keys = Vec::new();
            for (&shape, bucket) in &s.buckets {
                let deadline = bucket.opened + self.cfg.max_delay;
                if draining || paused || bucket.jobs.len() >= self.cfg.max_batch || deadline <= now
                {
                    ready_keys.push(shape);
                } else {
                    next_deadline =
                        Some(next_deadline.map_or(deadline, |d: Instant| d.min(deadline)));
                }
            }
            if !ready_keys.is_empty() {
                // Deterministic flush order regardless of map iteration.
                ready_keys.sort_unstable();
                let cap = self.cfg.max_batch.max(1);
                let mut out = Vec::with_capacity(ready_keys.len());
                let mut flushed = 0usize;
                for key in ready_keys {
                    let bucket = s.buckets.remove(&key).expect("key just seen");
                    flushed += bucket.jobs.len();
                    // A bucket that outgrew the cap while the dispatcher
                    // was busy still dispatches in `max_batch`-sized
                    // batches: the cap bounds per-batch engine latency,
                    // not just flush readiness.
                    let mut jobs = bucket.jobs;
                    while jobs.len() > cap {
                        let tail = jobs.split_off(cap);
                        out.push(jobs);
                        jobs = tail;
                    }
                    out.push(jobs);
                }
                let depth = self.depth.fetch_sub(flushed, Ordering::Relaxed) - flushed;
                self.depth_gauge.set(depth as i64);
                drop(s);
                let mut log = lock_recover(&self.flushes);
                if log.len() == FLUSH_LOG {
                    log.pop_front();
                }
                log.push_back((Instant::now(), flushed));
                return Some(out);
            }
            if draining {
                return None;
            }
            if next_deadline.is_none() {
                // Empty shard: park until an admission or drain wakes
                // us; nothing is aging, so no tick is needed.
                s = shard.cv.wait(s).unwrap_or_else(|e| e.into_inner());
                paused = false;
                continue;
            }
            // With buckets pending, wait at most one drain_tick so the
            // arrival-pause check below runs even when every deadline
            // is far out.
            let timeout = next_deadline
                .map(|d| d.saturating_duration_since(now).min(self.cfg.drain_tick))
                .unwrap_or(self.cfg.max_delay);
            let seen_seq = s.seq;
            let (guard, res) = shard
                .cv
                .wait_timeout(s, timeout)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            // The arrival stream counts as paused only when the wait
            // ran its full course *and* nothing was admitted to this
            // shard meanwhile.  A notify (real or spurious) that beats
            // the tick re-evaluates without flushing young buckets.
            paused = res.timed_out() && s.seq == seen_seq && !s.buckets.is_empty();
        }
    }

    /// Test hook: a stray `notify_all` on every shard, simulating
    /// spurious condvar wakeups.
    #[cfg(test)]
    pub(crate) fn poke(&self) {
        for shard in &self.shards {
            let _guard = lock_recover(&shard.inner);
            shard.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(a: &str, b: &str) -> (Job, mpsc::Receiver<JobResponse>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                body: Body::Edit {
                    a: a.as_bytes().to_vec(),
                    b: b.as_bytes().to_vec(),
                },
                cache_key: Vec::new(),
                tx: ReplySink::Channel(tx),
                enqueued: Instant::now(),
                deadline: Instant::now() + Duration::from_secs(3600),
                deadline_ms: 3_600_000,
            },
            rx,
        )
    }

    fn cfg(max_queue: usize, shed: usize, max_batch: usize, delay: Duration) -> QueueConfig {
        QueueConfig {
            max_queue,
            shed_queue: shed,
            max_batch,
            max_delay: delay,
            ..QueueConfig::default()
        }
    }

    #[test]
    fn full_bucket_flushes_without_waiting_for_the_delay_window() {
        let q = Queue::new(cfg(64, 64, 2, Duration::from_secs(3600)));
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("xy", "zw");
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        let batches = q.next_batches_for(Class::Edit).expect("not draining");
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2, "same shape coalesced");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn an_overgrown_bucket_flushes_in_capped_batches() {
        // 40 same-shape jobs pile up before the dispatcher gets a turn:
        // the flush must still honor the batch cap (16, 16, 8), not
        // ship one 40-wide engine batch.
        let q = Queue::new(cfg(64, 64, 16, Duration::from_secs(3600)));
        let mut rxs = Vec::new();
        for _ in 0..40 {
            let (j, r) = job("ab", "cd");
            q.submit(j).unwrap();
            rxs.push(r);
        }
        let batches = q.next_batches_for(Class::Edit).expect("not draining");
        let sizes: Vec<usize> = batches.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![16, 16, 8]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn expired_bucket_flushes_even_when_not_full() {
        let q = Queue::new(cfg(64, 64, 100, Duration::from_millis(1)));
        let (j, _r) = job("ab", "cd");
        q.submit(j).unwrap();
        let batches = q.next_batches_for(Class::Edit).expect("not draining");
        assert_eq!(batches[0].len(), 1);
    }

    #[test]
    fn lone_job_on_an_idle_queue_flushes_long_before_the_window() {
        let q = Queue::new(cfg(64, 64, 100, Duration::from_secs(3600)));
        let (j, _r) = job("ab", "cd");
        let t0 = Instant::now();
        q.submit(j).unwrap();
        let batches = q.next_batches_for(Class::Edit).expect("not draining");
        assert_eq!(batches[0].len(), 1);
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "adaptive flush must not wait out the hour-long window"
        );
    }

    #[test]
    fn adaptive_flush_still_coalesces_a_burst() {
        // Three same-shape jobs admitted back-to-back must ride one
        // batch: the pause check fires only after a tick with no new
        // admissions, and all three are already queued by then.
        let q = Queue::new(cfg(64, 64, 100, Duration::from_secs(3600)));
        let mut rxs = Vec::new();
        for (a, b) in [("ab", "cd"), ("ef", "gh"), ("ij", "kl")] {
            let (j, r) = job(a, b);
            q.submit(j).unwrap();
            rxs.push(r);
        }
        let batches = q.next_batches_for(Class::Edit).expect("not draining");
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3, "burst coalesced into one batch");
    }

    #[test]
    fn a_young_bucket_survives_a_stray_notify_all() {
        // Regression for the spurious-wakeup bug: any condvar wakeup
        // with an unchanged seq used to count as "stream drained" and
        // flush every open bucket at size 1.  With the pause signal
        // gated on a genuinely timed-out wait, a stray notify_all must
        // leave a young bucket coalescing.
        let q = Arc::new(Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 2,
            max_delay: Duration::from_secs(3600),
            drain_tick: Duration::from_secs(3600),
        }));
        let (j1, _r1) = job("ab", "cd");
        q.submit(j1).unwrap();
        let (tx, rx) = mpsc::channel();
        let dispatcher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let batches = q.next_batches_for(Class::Edit).expect("not draining");
                tx.send(batches).unwrap();
            })
        };
        // Let the dispatcher reach its wait, then fire stray wakeups.
        std::thread::sleep(Duration::from_millis(30));
        for _ in 0..3 {
            q.poke();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            rx.try_recv().is_err(),
            "spurious wakeups flushed a young bucket before max_batch"
        );
        // A second same-shape job fills the bucket; now it flushes.
        let (j2, _r2) = job("xy", "zw");
        q.submit(j2).unwrap();
        let batches = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("full bucket flushes");
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2, "bucket kept coalescing past the pokes");
        dispatcher.join().unwrap();
    }

    #[test]
    fn different_shapes_land_in_different_buckets() {
        let q = Queue::new(cfg(64, 64, 2, Duration::from_millis(1)));
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("abc", "cd");
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        let batches = q.next_batches_for(Class::Edit).expect("not draining");
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|jobs| jobs.len() == 1));
    }

    #[test]
    fn overfull_queue_rejects_with_typed_error() {
        let q = Queue::new(cfg(1, 1, 16, Duration::from_secs(3600)));
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("ef", "gh");
        q.submit(j1).unwrap();
        assert_eq!(q.submit(j2).unwrap_err(), SdpError::QueueFull { depth: 1 });
    }

    #[test]
    fn shed_threshold_returns_overloaded_with_retry_hint() {
        let q = Queue::new(cfg(64, 2, 16, Duration::from_millis(5)));
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("ef", "gh");
        let (j3, _r3) = job("ij", "kl");
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        match q.submit(j3).unwrap_err() {
            SdpError::Overloaded { retry_after_ms } => {
                assert!(retry_after_ms >= 1, "hint must be positive");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Shedding does not grow the queue.
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn fresh_queue_hints_fall_back_to_the_delay_window() {
        // No flush history yet: the hint must still cover at least one
        // full delay window per excess batch, never degenerate to a
        // constant 1 ms.
        let window = Duration::from_millis(300);
        let empty = VecDeque::new();
        let now = Instant::now();
        assert_eq!(drain_hint_ms(0, &empty, now, window, 16), 300);
        assert_eq!(drain_hint_ms(40, &empty, now, window, 16), 900);
        // A single sample is not a rate either.
        let mut one = VecDeque::new();
        one.push_back((now, 16usize));
        assert_eq!(drain_hint_ms(0, &one, now, window, 16), 300);
    }

    #[test]
    fn measured_flush_throughput_drives_the_shed_hint() {
        // Four flushes of 16 jobs spread over 30 ms → ~2.13 jobs/ms.
        // 63 excess jobs (64 to clear) should hint ~30 ms, not the
        // window-derived 5 ms * 4 batches = 20 ms, and certainly not a
        // constant.
        let now = Instant::now();
        let mut log = VecDeque::new();
        for i in 0..4u64 {
            log.push_back((now - Duration::from_millis(30 - i * 10), 16usize));
        }
        let hint = drain_hint_ms(63, &log, now, Duration::from_millis(5), 16);
        let rate = 64.0_f64 / 30.0; // jobs per ms
        let want = (64.0 / rate).ceil() as u64;
        assert_eq!(hint, want);
        assert!(hint >= 25 && hint <= 35, "hint {hint} tracks the rate");

        // Stale history (last flush long ago) falls back to the window
        // formula instead of trusting a dead dispatcher's old rate.
        let mut stale = VecDeque::new();
        stale.push_back((now - Duration::from_secs(60), 16usize));
        stale.push_back((now - Duration::from_secs(59), 16usize));
        assert_eq!(
            drain_hint_ms(0, &stale, now, Duration::from_millis(5), 16),
            5
        );
    }

    #[test]
    fn flushes_feed_the_throughput_log_end_to_end() {
        let q = Queue::new(cfg(64, 64, 1, Duration::from_millis(1)));
        for _ in 0..3 {
            let (j, _r) = job("ab", "cd");
            q.submit(j).unwrap();
            q.next_batches_for(Class::Edit).expect("flush");
        }
        let log = lock_recover(&q.flushes);
        assert_eq!(log.len(), 3);
        assert!(log.iter().all(|&(_, n)| n == 1));
    }

    #[test]
    fn hard_cap_wins_over_shed_when_thresholds_coincide() {
        // With shed_queue == max_queue == depth, the hard QueueFull
        // rejection takes precedence (pinned by protocol tests that
        // run a zero-capacity queue).
        let q = Queue::new(cfg(0, 0, 16, Duration::from_millis(5)));
        let (j, _r) = job("ab", "cd");
        assert_eq!(q.submit(j).unwrap_err(), SdpError::QueueFull { depth: 0 });
    }

    #[test]
    fn depth_gauge_mirrors_admissions_and_flushes() {
        let q = Queue::new(cfg(64, 64, 2, Duration::from_secs(3600)));
        let g = q.depth_gauge();
        let (j1, _r1) = job("ab", "cd");
        q.submit(j1).unwrap();
        assert_eq!(g.get(), 1);
        let (j2, _r2) = job("xy", "zw");
        q.submit(j2).unwrap();
        assert_eq!(g.get(), 2);
        q.next_batches_for(Class::Edit)
            .expect("full bucket flushes");
        assert_eq!(g.get(), 0, "flush returns the gauge to zero");
    }

    #[test]
    fn shards_isolate_classes() {
        let q = Queue::new(cfg(64, 64, 16, Duration::from_millis(1)));
        let (j1, _r1) = job("ab", "cd");
        q.submit(j1).unwrap();
        let (tx, _rx) = mpsc::channel();
        q.submit(Job {
            body: Body::Chain {
                dims: vec![4, 2, 3],
            },
            cache_key: Vec::new(),
            tx: ReplySink::Channel(tx),
            enqueued: Instant::now(),
            deadline: Instant::now() + Duration::from_secs(3600),
            deadline_ms: 3_600_000,
        })
        .unwrap();
        let edit = q.next_batches_for(Class::Edit).expect("edit shard");
        assert_eq!(edit.len(), 1, "edit dispatcher sees only edit buckets");
        assert_eq!(q.depth(), 1, "chain job still queued");
        let chain = q.next_batches_for(Class::Chain).expect("chain shard");
        assert_eq!(chain.len(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn drain_flushes_leftovers_then_returns_none() {
        let q = Queue::new(cfg(64, 64, 100, Duration::from_secs(3600)));
        let (j, _r) = job("ab", "cd");
        q.submit(j).unwrap();
        q.start_drain();
        let batches = q
            .next_batches_for(Class::Edit)
            .expect("leftovers flush on drain");
        assert_eq!(batches[0].len(), 1);
        assert!(
            q.next_batches_for(Class::Edit).is_none(),
            "drained shard signals exit"
        );
        assert!(
            q.next_batches_for(Class::Matmul).is_none(),
            "empty shards exit immediately on drain"
        );
        let (j2, _r2) = job("ab", "cd");
        assert_eq!(q.submit(j2).unwrap_err(), SdpError::ShuttingDown);
    }
}
