//! Admission queue with per-class dynamic batch coalescing.
//!
//! Requests are grouped into buckets keyed by `(class, shape_key)` —
//! only uniform-shape instances can ride one pipelined array pass (the
//! PR 3 batch entry points reject mixed shapes).  A bucket flushes when
//! it reaches `max_batch` riders, when its oldest rider has waited
//! `max_delay`, when the server starts draining — or, adaptively, as
//! soon as the admission stream drains: if a full [`DRAIN_TICK`] passes
//! with no new admission, waiting out the rest of the window cannot
//! grow any bucket, so every pending bucket flushes immediately.  The
//! delay window is the throughput/latency knob: paper Eq. 9 says array
//! utilisation under pipelining is B/(B + fill/drain), so holding the
//! window open a few milliseconds buys a larger B at a bounded latency
//! cost — but only while requests are still arriving to coalesce.
//!
//! Backpressure is enforced at admission in two tiers: at or beyond
//! `shed_queue` queued requests `submit` sheds with
//! [`SdpError::Overloaded`] (carrying a `retry_after_ms` hint sized to
//! the estimated drain time of the excess), beyond `max_queue` it
//! hard-rejects with [`SdpError::QueueFull`], and after
//! [`Queue::start_drain`] it returns [`SdpError::ShuttingDown`].  The
//! dispatcher thread calls [`Queue::next_batches`] in a loop; `None`
//! means the queue drained and the server may exit.

use crate::protocol::Body;
use crate::protocol::Class;
use sdp_fault::SdpError;
use sdp_metrics::Gauge;
use sdp_par::lock_recover;
use sdp_trace::json::Json;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coalescing and backpressure knobs.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Admission limit: queued (not yet dispatched) requests.
    pub max_queue: usize,
    /// Shed threshold: at or beyond this depth (but below `max_queue`)
    /// new work is shed with `overloaded` + `retry_after_ms`.
    pub shed_queue: usize,
    /// Flush a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a bucket when its oldest rider has waited this long.
    pub max_delay: Duration,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            max_queue: 1024,
            shed_queue: 768,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
        }
    }
}

/// Dispatcher-side span timings, forwarded to the connection thread so
/// it can close the request's `respond` phase (reply received → the
/// client-visible end of the request).
#[derive(Clone, Copy, Debug)]
pub struct SpanTimes {
    /// Admission → bucket flush (the coalescing delay-window wait), µs.
    pub coalesce_us: u64,
    /// Bucket flush → a pool worker picked the batch up, µs.
    pub queue_us: u64,
    /// Engine run, µs.
    pub engine_us: u64,
    /// When the engine finished — the respond phase starts here.
    pub engine_done: Instant,
}

/// What the dispatcher sends back to the connection thread.
#[derive(Debug)]
pub struct JobResponse {
    /// Engine result or typed failure.
    pub result: Result<Json, SdpError>,
    /// Size of the coalesced batch this job rode in.
    pub batch: usize,
    /// Which backend ran the bucket (meaningful on `Ok` results only).
    pub engine: crate::engine::EngineKind,
    /// Phase timings for the span pipeline.
    pub span: SpanTimes,
}

/// One admitted compute request.
#[derive(Debug)]
pub struct Job {
    /// Decoded problem.
    pub body: Body,
    /// Canonical cache key (already probed and missed).
    pub cache_key: Vec<u8>,
    /// Reply channel to the owning connection thread.
    pub tx: mpsc::Sender<JobResponse>,
    /// Admission time, for latency metrics.
    pub enqueued: Instant,
    /// The job is expired (typed `deadline_exceeded`, no engine work)
    /// if it is still undispatched at this instant.
    pub deadline: Instant,
    /// The deadline the request carried, for the error payload.
    pub deadline_ms: u64,
}

/// How long [`Queue::next_batches`] waits for a further admission
/// before concluding the arrival stream has drained and flushing
/// partial buckets early.  Small against any useful `max_delay`, large
/// against the admission path itself, so bursts still coalesce.
const DRAIN_TICK: Duration = Duration::from_micros(500);

struct Bucket {
    jobs: Vec<Job>,
    opened: Instant,
}

struct Inner {
    buckets: HashMap<(Class, u64), Bucket>,
    depth: usize,
    /// Admission counter; `next_batches` compares it across a wait to
    /// detect a drained arrival stream.
    seq: u64,
    draining: bool,
}

/// The shared admission queue.
pub struct Queue {
    cfg: QueueConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
    /// Mirror of `Inner::depth` for the metrics registry — updated
    /// under the queue lock, readable without it.
    depth_gauge: Arc<Gauge>,
}

impl Queue {
    /// An empty queue with the given knobs.
    pub fn new(cfg: QueueConfig) -> Queue {
        Queue {
            cfg,
            inner: Mutex::new(Inner {
                buckets: HashMap::new(),
                depth: 0,
                seq: 0,
                draining: false,
            }),
            cv: Condvar::new(),
            depth_gauge: Arc::new(Gauge::new()),
        }
    }

    /// Queued-but-not-dispatched request count.
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).depth
    }

    /// The live depth gauge, for registration with the metrics
    /// registry (`sdp_queue_depth`).
    pub fn depth_gauge(&self) -> Arc<Gauge> {
        Arc::clone(&self.depth_gauge)
    }

    /// Admits a job, or rejects it with a typed backpressure error.
    pub fn submit(&self, job: Job) -> Result<(), SdpError> {
        let class = job.body.class();
        let shape = job.body.shape_key();
        let mut q = lock_recover(&self.inner);
        if q.draining {
            return Err(SdpError::ShuttingDown);
        }
        if q.depth >= self.cfg.max_queue {
            return Err(SdpError::QueueFull { depth: q.depth });
        }
        if q.depth >= self.cfg.shed_queue {
            // Shed early with a hint sized to the estimated drain time
            // of the excess: each max_batch-sized flush clears within
            // about one delay window.
            let excess_batches = (q.depth - self.cfg.shed_queue) / self.cfg.max_batch.max(1) + 1;
            let window_ms = (self.cfg.max_delay.as_millis() as u64).max(1);
            return Err(SdpError::Overloaded {
                retry_after_ms: window_ms * excess_batches as u64,
            });
        }
        q.depth += 1;
        q.seq += 1;
        self.depth_gauge.set(q.depth as i64);
        q.buckets
            .entry((class, shape))
            .or_insert_with(|| Bucket {
                jobs: Vec::new(),
                opened: Instant::now(),
            })
            .jobs
            .push(job);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Stops admitting work and wakes the dispatcher so remaining
    /// buckets flush immediately.
    pub fn start_drain(&self) {
        lock_recover(&self.inner).draining = true;
        self.cv.notify_all();
    }

    /// Blocks until at least one bucket is ready, then removes and
    /// returns all ready buckets.  Returns `None` once the queue is
    /// draining and empty.
    pub fn next_batches(&self) -> Option<Vec<(Class, Vec<Job>)>> {
        let mut q = lock_recover(&self.inner);
        // Admission count observed entering the previous wait; a wait
        // that ends with it unchanged means no request arrived during a
        // full DRAIN_TICK — the stream has drained.
        let mut seen_seq: Option<u64> = None;
        loop {
            let now = Instant::now();
            let drained = seen_seq == Some(q.seq) && !q.buckets.is_empty();
            let mut next_deadline: Option<Instant> = None;
            let mut ready_keys = Vec::new();
            for (&key, bucket) in &q.buckets {
                let deadline = bucket.opened + self.cfg.max_delay;
                if q.draining
                    || drained
                    || bucket.jobs.len() >= self.cfg.max_batch
                    || deadline <= now
                {
                    ready_keys.push(key);
                } else {
                    next_deadline =
                        Some(next_deadline.map_or(deadline, |d: Instant| d.min(deadline)));
                }
            }
            if !ready_keys.is_empty() {
                // Deterministic flush order regardless of map iteration.
                ready_keys.sort_by_key(|&(class, shape)| (class.index(), shape));
                let mut out = Vec::with_capacity(ready_keys.len());
                for key in ready_keys {
                    let bucket = q.buckets.remove(&key).expect("key just seen");
                    q.depth -= bucket.jobs.len();
                    out.push((key.0, bucket.jobs));
                }
                self.depth_gauge.set(q.depth as i64);
                return Some(out);
            }
            if q.draining {
                return None;
            }
            // With buckets pending, wait at most one DRAIN_TICK so the
            // drained check above runs even when every deadline is far
            // out; an idle (bucketless) queue sleeps the full window.
            let timeout = next_deadline
                .map(|d| d.saturating_duration_since(now).min(DRAIN_TICK))
                .unwrap_or(self.cfg.max_delay);
            seen_seq = Some(q.seq);
            let (guard, _) = self
                .cv
                .wait_timeout(q, timeout)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(a: &str, b: &str) -> (Job, mpsc::Receiver<JobResponse>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                body: Body::Edit {
                    a: a.as_bytes().to_vec(),
                    b: b.as_bytes().to_vec(),
                },
                cache_key: Vec::new(),
                tx,
                enqueued: Instant::now(),
                deadline: Instant::now() + Duration::from_secs(3600),
                deadline_ms: 3_600_000,
            },
            rx,
        )
    }

    #[test]
    fn full_bucket_flushes_without_waiting_for_the_delay_window() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 2,
            max_delay: Duration::from_secs(3600),
        });
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("xy", "zw");
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        let batches = q.next_batches().expect("not draining");
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].1.len(), 2, "same shape coalesced");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn expired_bucket_flushes_even_when_not_full() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 100,
            max_delay: Duration::from_millis(1),
        });
        let (j, _r) = job("ab", "cd");
        q.submit(j).unwrap();
        let batches = q.next_batches().expect("not draining");
        assert_eq!(batches[0].1.len(), 1);
    }

    #[test]
    fn lone_job_on_an_idle_queue_flushes_long_before_the_window() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 100,
            max_delay: Duration::from_secs(3600),
        });
        let (j, _r) = job("ab", "cd");
        let t0 = Instant::now();
        q.submit(j).unwrap();
        let batches = q.next_batches().expect("not draining");
        assert_eq!(batches[0].1.len(), 1);
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "adaptive flush must not wait out the hour-long window"
        );
    }

    #[test]
    fn adaptive_flush_still_coalesces_a_burst() {
        // Three same-shape jobs admitted back-to-back must ride one
        // batch: the drain check fires only after a tick with no new
        // admissions, and all three are already queued by then.
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 100,
            max_delay: Duration::from_secs(3600),
        });
        let mut rxs = Vec::new();
        for (a, b) in [("ab", "cd"), ("ef", "gh"), ("ij", "kl")] {
            let (j, r) = job(a, b);
            q.submit(j).unwrap();
            rxs.push(r);
        }
        let batches = q.next_batches().expect("not draining");
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].1.len(), 3, "burst coalesced into one batch");
    }

    #[test]
    fn different_shapes_land_in_different_buckets() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 2,
            max_delay: Duration::from_millis(1),
        });
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("abc", "cd");
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        let batches = q.next_batches().expect("not draining");
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|(_, jobs)| jobs.len() == 1));
    }

    #[test]
    fn overfull_queue_rejects_with_typed_error() {
        let q = Queue::new(QueueConfig {
            max_queue: 1,
            shed_queue: 1,
            max_batch: 16,
            max_delay: Duration::from_secs(3600),
        });
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("ef", "gh");
        q.submit(j1).unwrap();
        assert_eq!(q.submit(j2).unwrap_err(), SdpError::QueueFull { depth: 1 });
    }

    #[test]
    fn shed_threshold_returns_overloaded_with_retry_hint() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 2,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
        });
        let (j1, _r1) = job("ab", "cd");
        let (j2, _r2) = job("ef", "gh");
        let (j3, _r3) = job("ij", "kl");
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        match q.submit(j3).unwrap_err() {
            SdpError::Overloaded { retry_after_ms } => {
                assert!(retry_after_ms >= 1, "hint must be positive");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Shedding does not grow the queue.
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn hard_cap_wins_over_shed_when_thresholds_coincide() {
        // With shed_queue == max_queue == depth, the hard QueueFull
        // rejection takes precedence (pinned by protocol tests that
        // run a zero-capacity queue).
        let q = Queue::new(QueueConfig {
            max_queue: 0,
            shed_queue: 0,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
        });
        let (j, _r) = job("ab", "cd");
        assert_eq!(q.submit(j).unwrap_err(), SdpError::QueueFull { depth: 0 });
    }

    #[test]
    fn depth_gauge_mirrors_admissions_and_flushes() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 2,
            max_delay: Duration::from_secs(3600),
        });
        let g = q.depth_gauge();
        let (j1, _r1) = job("ab", "cd");
        q.submit(j1).unwrap();
        assert_eq!(g.get(), 1);
        let (j2, _r2) = job("xy", "zw");
        q.submit(j2).unwrap();
        assert_eq!(g.get(), 2);
        q.next_batches().expect("full bucket flushes");
        assert_eq!(g.get(), 0, "flush returns the gauge to zero");
    }

    #[test]
    fn drain_flushes_leftovers_then_returns_none() {
        let q = Queue::new(QueueConfig {
            max_queue: 64,
            shed_queue: 64,
            max_batch: 100,
            max_delay: Duration::from_secs(3600),
        });
        let (j, _r) = job("ab", "cd");
        q.submit(j).unwrap();
        q.start_drain();
        let batches = q.next_batches().expect("leftovers flush on drain");
        assert_eq!(batches[0].1.len(), 1);
        assert!(q.next_batches().is_none(), "drained queue signals exit");
        let (j2, _r2) = job("ab", "cd");
        assert_eq!(q.submit(j2).unwrap_err(), SdpError::ShuttingDown);
    }
}
