//! A hand-rolled JSON *parser* for the wire protocol, the inverse of
//! `sdp-trace`'s serializer.
//!
//! The workspace is dependency-free, so requests are decoded by a small
//! recursive-descent parser into the same [`Json`] document type the
//! trace crate renders.  The parser is deliberately strict: one value
//! per line, UTF-8 input, a nesting-depth cap so an adversarial request
//! cannot blow the connection thread's stack, and every failure is a
//! `String` reason that the server wraps into
//! [`SdpError::MalformedRequest`](sdp_fault::SdpError::MalformedRequest).

pub use sdp_trace::json::Json;

/// Maximum nesting depth accepted from the wire.
pub const MAX_DEPTH: usize = 64;

/// Parses one complete JSON value from `text` (surrounding whitespace
/// allowed, trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined — the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or(format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let start = self.pos - 1;
                    if b < 0x80 {
                        if b < 0x20 {
                            return Err("raw control byte in string".to_string());
                        }
                        out.push(b as char);
                    } else {
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err("invalid UTF-8 lead byte".to_string()),
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or("invalid UTF-8 sequence")?;
                        out.push_str(chunk);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

/// Field lookup on an object (`None` on non-objects / missing keys).
pub fn get<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Object(fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
        _ => None,
    }
}

/// Integer accessor.
pub fn as_i64(doc: &Json) -> Option<i64> {
    match doc {
        Json::Int(i) => Some(*i),
        _ => None,
    }
}

/// String accessor.
pub fn as_str(doc: &Json) -> Option<&str> {
    match doc {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// Array accessor.
pub fn as_array(doc: &Json) -> Option<&[Json]> {
    match doc {
        Json::Array(items) => Some(items),
        _ => None,
    }
}

/// Float accessor (integers coerce).
pub fn as_f64(doc: &Json) -> Option<f64> {
    match doc {
        Json::Float(f) => Some(*f),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Bool accessor.
pub fn as_bool(doc: &Json) -> Option<bool> {
    match doc {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_serializer_output() {
        let doc = Json::object()
            .with("name", "e\u{e9}1\n")
            .with("n", 42u64)
            .with("x", -7i64)
            .with("pu", 0.75)
            .with("flag", true)
            .with("none", Json::Null)
            .with("rows", vec![1i64, 2, 3]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_nested_and_spaced() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] } ").unwrap();
        assert_eq!(v.render(), r#"{"a":[1,{"b":[]}]}"#);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "[1 2]",
            "--3",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_bottomless_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(
            parse("9007199254740993").unwrap(),
            Json::Int(9007199254740993)
        );
        assert_eq!(parse("-1").unwrap(), Json::Int(-1));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"kind":"edit","id":3,"arr":[1],"b":true}"#).unwrap();
        assert_eq!(as_str(get(&doc, "kind").unwrap()), Some("edit"));
        assert_eq!(as_i64(get(&doc, "id").unwrap()), Some(3));
        assert_eq!(as_array(get(&doc, "arr").unwrap()).unwrap().len(), 1);
        assert_eq!(as_bool(get(&doc, "b").unwrap()), Some(true));
        assert!(get(&doc, "missing").is_none());
        assert!(get(&Json::Int(1), "k").is_none());
    }
}
