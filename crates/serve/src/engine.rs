//! Executes one coalesced bucket of same-class, same-shape requests on
//! the systolic engines.
//!
//! The batched classes hand the whole bucket to the PR 3 pipelined
//! entry points (`run_batch` / `multiply_batch` /
//! `edit_distance_mesh_batch`), so a coalesced dispatch pays the
//! array's fill/drain latency once for B requests — the serving-side
//! realization of the paper's §6 pipelining of independent instances.
//! Classes without a batched engine (chain, BST, AND/OR) loop inside
//! the one pool task their bucket became.
//!
//! Result payloads are a pure function of the problem instance — they
//! never include batch-dependent numbers — so a response is bit
//! identical whether it was computed cold, coalesced into a batch, or
//! replayed from the cache.
//!
//! Auto-dispatch: every bucket is sized by [`body_work`] and routed by
//! [`choose`] — below the configured crossover it runs on the
//! cycle-accurate simulators, at or beyond it on the `sdp-backend`
//! direct solvers, which return bit-identical answers (proved by the
//! `conformance_backend` suite), so the choice is invisible in the
//! payload and visible only in the response's `engine` tag and the
//! per-class metrics.

use crate::protocol::{cost_to_json, matrix_to_json, Body, Class};
use sdp_andor::chain::{try_matrix_chain_order, try_optimal_bst};
use sdp_core::align::{sw_mesh_batch, Scoring};
use sdp_core::chain_array::{simulate_chain_array, ChainMapping};
use sdp_core::design1::Design1Array;
use sdp_core::design2::Design2Array;
use sdp_core::edit_array::edit_distance_mesh_batch;
use sdp_core::knapsack_array::{knapsack_array_batch, KnapsackItem};
use sdp_core::matmul_array::MatmulArray;
use sdp_fault::SdpError;
use sdp_semiring::{Matrix, MinPlus};
use sdp_trace::json::Json;

/// PE count for a matrix string (the interior square side, or the
/// boundary vector length for single-source strings).
fn string_m(mats: &[Matrix<MinPlus>]) -> usize {
    if mats[0].rows() == 1 {
        mats[0].cols()
    } else {
        mats[0].rows()
    }
}

fn values_json(values: &[sdp_semiring::Cost]) -> Json {
    Json::object().with(
        "values",
        Json::Array(values.iter().map(|&c| cost_to_json(c)).collect()),
    )
}

/// Renders one alignment answer the way the oracle's `served_align`
/// does: `{"score":s,"end":[i,j]}` with `null` when nothing scored
/// positive.
fn align_json(score: i64, end: Option<(usize, usize)>) -> Json {
    let end_json = match end {
        Some((i, j)) => Json::Array(vec![Json::Int(i as i64), Json::Int(j as i64)]),
        None => Json::Null,
    };
    Json::object()
        .with("score", Json::Int(score))
        .with("end", end_json)
}

/// Renders one knapsack answer: the optimum plus the full
/// best-value-per-capacity row.
fn knapsack_json(best: u64, row: &[u64]) -> Json {
    Json::object().with("best", best).with(
        "row",
        Json::Array(row.iter().map(|&v| Json::from(v)).collect()),
    )
}

/// The shared simple-scoring scheme of an align bucket (uniform by
/// shape key).
fn align_scoring(bodies: &[Body]) -> Scoring {
    match bodies.first() {
        Some(Body::Align {
            matched,
            mismatched,
            gap,
            ..
        }) => Scoring::simple(*matched, *mismatched, *gap),
        _ => unreachable!("bucket is single-class"),
    }
}

/// Which execution backend answered a bucket: the cycle-accurate
/// simulator or the compiled `sdp-backend` direct solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Cycle-accurate systolic simulation (`sdp-core`).
    Sim,
    /// Compiled direct solver (`sdp-backend`).
    Direct,
}

impl EngineKind {
    /// Wire/metrics label: `"sim"` or `"direct"`.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Sim => "sim",
            EngineKind::Direct => "direct",
        }
    }
}

/// Per-instance work measure used for dispatch: the serial-op count of
/// the recurrence (DP cells × fan-in), the quantity both engines scale
/// with.  Multistage `N·m²`, matmul `p·q·r`, edit `|a|·|b|`,
/// chain/BST `n³`, align `|a|·|b|`, knapsack `n·(C+1)`; AND/OR
/// evaluation is already direct, so it measures 0 and never leaves the
/// simulator path.
pub fn body_work(body: &Body) -> u64 {
    match body {
        Body::Multistage { mats, .. } => mats
            .first()
            .map_or(0, |_| (mats.len() * string_m(mats) * string_m(mats)) as u64),
        Body::Matmul { a, b } => (a.rows() * a.cols() * b.cols()) as u64,
        Body::Edit { a, b } => (a.len() * b.len()) as u64,
        Body::Chain { dims } => {
            let n = dims.len().saturating_sub(1) as u64;
            n * n * n
        }
        Body::Bst { freq } => {
            let n = freq.len() as u64;
            n * n * n
        }
        Body::AndOr { .. } => 0,
        Body::Align { a, b, .. } => (a.len() * b.len()) as u64,
        Body::Knapsack { items, capacity } => items.len() as u64 * (capacity + 1),
    }
}

/// Dispatch decision for a coalesced bucket.  Buckets are uniform in
/// shape (same `shape_key`), so the first rider's work measure speaks
/// for all of them.
pub fn choose(bodies: &[Body], direct_threshold: u64) -> EngineKind {
    match bodies.first() {
        Some(body) if body_work(body) >= direct_threshold => EngineKind::Direct,
        _ => EngineKind::Sim,
    }
}

/// Runs a bucket on the simulator, returning one result per request in
/// bucket order.  A batch-level engine error (shape validation) is
/// reported to every rider of the bucket.
pub fn run_bucket(class: Class, bodies: &[Body]) -> Vec<Result<Json, SdpError>> {
    run_bucket_on(EngineKind::Sim, class, bodies)
}

/// Runs a bucket on the chosen backend.  Direct and sim payloads are
/// bit-identical, so riders cannot observe the dispatch except through
/// the response's `engine` tag.
pub fn run_bucket_on(
    kind: EngineKind,
    class: Class,
    bodies: &[Body],
) -> Vec<Result<Json, SdpError>> {
    let results = match kind {
        EngineKind::Sim => run_bucket_inner(class, bodies),
        EngineKind::Direct => run_bucket_direct_inner(class, bodies),
    };
    match results {
        Ok(results) => results,
        Err(e) => bodies.iter().map(|_| Err(e.clone())).collect(),
    }
}

#[allow(clippy::type_complexity)]
fn run_bucket_inner(
    class: Class,
    bodies: &[Body],
) -> Result<Vec<Result<Json, SdpError>>, SdpError> {
    match class {
        Class::Multistage1 => {
            let strings: Vec<&[Matrix<MinPlus>]> = bodies
                .iter()
                .map(|b| match b {
                    Body::Multistage { mats, .. } => mats.as_slice(),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let array = Design1Array::try_new(string_m(strings[0]))?;
            let batch = array.run_batch(&strings)?;
            Ok(batch
                .values
                .iter()
                .map(|vals| Ok(values_json(vals)))
                .collect())
        }
        Class::Multistage2 => {
            let strings: Vec<&[Matrix<MinPlus>]> = bodies
                .iter()
                .map(|b| match b {
                    Body::Multistage { mats, .. } => mats.as_slice(),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let array = Design2Array::try_new(string_m(strings[0]))?;
            let batch = array.run_batch(&strings)?;
            Ok(batch
                .values
                .iter()
                .zip(&batch.paths)
                .map(|(vals, path)| {
                    let path_json = match path {
                        Some(p) => Json::Array(p.iter().map(|&v| Json::from(v)).collect()),
                        None => Json::Null,
                    };
                    Ok(values_json(vals).with("path", path_json))
                })
                .collect())
        }
        Class::Matmul => {
            let pairs: Vec<(Matrix<MinPlus>, Matrix<MinPlus>)> = bodies
                .iter()
                .map(|b| match b {
                    Body::Matmul { a, b } => (a.clone(), b.clone()),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = MatmulArray::multiply_batch(&pairs)?;
            Ok(batch
                .products
                .iter()
                .map(|p| Ok(Json::object().with("product", matrix_to_json(p))))
                .collect())
        }
        Class::Edit => {
            let pairs: Vec<(&[u8], &[u8])> = bodies
                .iter()
                .map(|b| match b {
                    Body::Edit { a, b } => (a.as_slice(), b.as_slice()),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = edit_distance_mesh_batch(&pairs)?;
            Ok(batch
                .distances
                .iter()
                .map(|&d| Ok(Json::object().with("distance", d)))
                .collect())
        }
        Class::Chain => Ok(bodies
            .iter()
            .map(|b| match b {
                Body::Chain { dims } => {
                    let sol = try_matrix_chain_order(dims)?;
                    let sim = simulate_chain_array(dims, ChainMapping::Broadcast);
                    debug_assert_eq!(sim.cost, sol.cost, "array vs DP");
                    Ok(Json::object()
                        .with("cost", cost_to_json(sim.cost))
                        .with("steps", sim.finish))
                }
                _ => unreachable!("bucket is single-class"),
            })
            .collect()),
        Class::Bst => Ok(bodies
            .iter()
            .map(|b| match b {
                Body::Bst { freq } => {
                    let sol = try_optimal_bst(freq)?;
                    Ok(Json::object().with("cost", cost_to_json(sol.cost)))
                }
                _ => unreachable!("bucket is single-class"),
            })
            .collect()),
        Class::AndOr => Ok(bodies
            .iter()
            .map(|b| match b {
                Body::AndOr { graph, root } => {
                    Ok(Json::object().with("value", cost_to_json(graph.evaluate_node(*root))))
                }
                _ => unreachable!("bucket is single-class"),
            })
            .collect()),
        Class::Align => {
            let pairs: Vec<(&[u8], &[u8])> = bodies
                .iter()
                .map(|b| match b {
                    Body::Align { a, b, .. } => (a.as_slice(), b.as_slice()),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = sw_mesh_batch(&pairs, &align_scoring(bodies))?;
            Ok(batch
                .scores
                .iter()
                .zip(&batch.ends)
                .map(|(&score, &end)| Ok(align_json(score, end)))
                .collect())
        }
        Class::Knapsack => {
            let (items, capacity) = knapsack_bucket(bodies);
            let batch = knapsack_array_batch(&items, capacity)?;
            Ok(batch
                .bests
                .iter()
                .zip(&batch.per_capacity)
                .map(|(&best, row)| Ok(knapsack_json(best, row)))
                .collect())
        }
    }
}

/// The direct-solver mirror of [`run_bucket_inner`]: same payload
/// construction, same typed errors, answers from `sdp-backend`.
#[allow(clippy::type_complexity)]
fn run_bucket_direct_inner(
    class: Class,
    bodies: &[Body],
) -> Result<Vec<Result<Json, SdpError>>, SdpError> {
    match class {
        Class::Multistage1 => {
            let strings: Vec<&[Matrix<MinPlus>]> = bodies
                .iter()
                .map(|b| match b {
                    Body::Multistage { mats, .. } => mats.as_slice(),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = sdp_backend::design1_direct_batch(string_m(strings[0]), &strings)?;
            Ok(batch
                .values
                .iter()
                .map(|vals| Ok(values_json(vals)))
                .collect())
        }
        Class::Multistage2 => {
            let strings: Vec<&[Matrix<MinPlus>]> = bodies
                .iter()
                .map(|b| match b {
                    Body::Multistage { mats, .. } => mats.as_slice(),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = sdp_backend::design2_direct_batch(string_m(strings[0]), &strings)?;
            Ok(batch
                .values
                .iter()
                .zip(&batch.paths)
                .map(|(vals, path)| {
                    let path_json = match path {
                        Some(p) => Json::Array(p.iter().map(|&v| Json::from(v)).collect()),
                        None => Json::Null,
                    };
                    Ok(values_json(vals).with("path", path_json))
                })
                .collect())
        }
        Class::Matmul => {
            let pairs: Vec<(Matrix<MinPlus>, Matrix<MinPlus>)> = bodies
                .iter()
                .map(|b| match b {
                    Body::Matmul { a, b } => (a.clone(), b.clone()),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = sdp_backend::matmul_direct_batch(&pairs)?;
            Ok(batch
                .products
                .iter()
                .map(|p| Ok(Json::object().with("product", matrix_to_json(p))))
                .collect())
        }
        Class::Edit => {
            let pairs: Vec<(&[u8], &[u8])> = bodies
                .iter()
                .map(|b| match b {
                    Body::Edit { a, b } => (a.as_slice(), b.as_slice()),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = sdp_backend::edit_direct_batch(&pairs)?;
            Ok(batch
                .distances
                .iter()
                .map(|&d| Ok(Json::object().with("distance", d)))
                .collect())
        }
        Class::Chain => Ok(bodies
            .iter()
            .map(|b| match b {
                Body::Chain { dims } => {
                    let sol = sdp_backend::chain_direct(dims)?;
                    Ok(Json::object()
                        .with("cost", cost_to_json(sol.cost))
                        .with("steps", sdp_backend::chain_steps(dims.len() - 1)))
                }
                _ => unreachable!("bucket is single-class"),
            })
            .collect()),
        Class::Bst => Ok(bodies
            .iter()
            .map(|b| match b {
                Body::Bst { freq } => {
                    let sol = sdp_backend::bst_direct(freq)?;
                    Ok(Json::object().with("cost", cost_to_json(sol.cost)))
                }
                _ => unreachable!("bucket is single-class"),
            })
            .collect()),
        // AND/OR evaluation is already a direct graph walk; `choose`
        // never dispatches it here.
        Class::AndOr => run_bucket_inner(class, bodies),
        Class::Align => {
            let pairs: Vec<(&[u8], &[u8])> = bodies
                .iter()
                .map(|b| match b {
                    Body::Align { a, b, .. } => (a.as_slice(), b.as_slice()),
                    _ => unreachable!("bucket is single-class"),
                })
                .collect();
            let batch = sdp_backend::sw_direct_batch(&pairs, &align_scoring(bodies))?;
            Ok(batch
                .scores
                .iter()
                .zip(&batch.ends)
                .map(|(&score, &end)| Ok(align_json(score, end)))
                .collect())
        }
        Class::Knapsack => {
            let (items, capacity) = knapsack_bucket(bodies);
            let batch = sdp_backend::knapsack_direct_batch(&items, capacity)?;
            Ok(batch
                .bests
                .iter()
                .zip(&batch.per_capacity)
                .map(|(&best, row)| Ok(knapsack_json(best, row)))
                .collect())
        }
    }
}

/// Splits a knapsack bucket into the batch engine's argument shape (the
/// capacity is uniform by shape key).
fn knapsack_bucket(bodies: &[Body]) -> (Vec<&[KnapsackItem]>, u64) {
    let capacity = match bodies.first() {
        Some(Body::Knapsack { capacity, .. }) => *capacity,
        _ => unreachable!("bucket is single-class"),
    };
    let items = bodies
        .iter()
        .map(|b| match b {
            Body::Knapsack { items, .. } => items.as_slice(),
            _ => unreachable!("bucket is single-class"),
        })
        .collect();
    (items, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_semiring::Cost;

    fn mat(rows: usize, cols: usize, vals: &[i64]) -> Matrix<MinPlus> {
        Matrix::from_rows(
            rows,
            cols,
            vals.iter().map(|&v| MinPlus(Cost::new(v))).collect(),
        )
    }

    #[test]
    fn edit_bucket_of_three_matches_singles() {
        let b = |a: &str, bb: &str| Body::Edit {
            a: a.as_bytes().to_vec(),
            b: bb.as_bytes().to_vec(),
        };
        let bucket = vec![
            b("kitten", "sitting"),
            b("mitten", "fitting"),
            b("kitten", "kitting"),
        ];
        let batched = run_bucket(Class::Edit, &bucket);
        for (i, body) in bucket.iter().enumerate() {
            let single = run_bucket(Class::Edit, std::slice::from_ref(body));
            assert_eq!(batched[i], single[0], "instance {i}");
        }
    }

    #[test]
    fn multistage_bucket_matches_singles() {
        let s1 = vec![mat(2, 2, &[1, 5, 2, 0]), mat(2, 2, &[3, 1, 4, 1])];
        let s2 = vec![mat(2, 2, &[0, 2, 9, 1]), mat(2, 2, &[1, 1, 0, 7])];
        for design in [Class::Multistage1, Class::Multistage2] {
            let mk = |mats: &Vec<Matrix<MinPlus>>| Body::Multistage {
                design: if design == Class::Multistage1 { 1 } else { 2 },
                mats: mats.clone(),
            };
            let batched = run_bucket(design, &[mk(&s1), mk(&s2)]);
            let a = run_bucket(design, &[mk(&s1)]);
            let b = run_bucket(design, &[mk(&s2)]);
            assert_eq!(batched[0], a[0]);
            assert_eq!(batched[1], b[0]);
        }
    }

    #[test]
    fn batch_shape_error_reaches_every_rider() {
        let b1 = Body::Edit {
            a: b"ab".to_vec(),
            b: b"cd".to_vec(),
        };
        let b2 = Body::Edit {
            a: b"abc".to_vec(),
            b: b"cd".to_vec(),
        };
        // A mixed-shape bucket can only arise through a coalescing bug;
        // the engine still must fail typed, for every rider.
        let out = run_bucket(Class::Edit, &[b1, b2]);
        assert_eq!(out.len(), 2);
        for r in out {
            assert_eq!(r, Err(SdpError::BatchShapeMismatch { index: 1 }));
        }
    }

    #[test]
    fn direct_buckets_serve_bit_identical_payloads() {
        let mk_mats = |vals: [i64; 4]| mat(2, 2, &vals);
        let buckets: Vec<(Class, Vec<Body>)> = vec![
            (
                Class::Multistage1,
                vec![Body::Multistage {
                    design: 1,
                    mats: vec![mk_mats([1, 5, 2, 0]), mk_mats([3, 1, 4, 1])],
                }],
            ),
            (
                Class::Multistage2,
                vec![Body::Multistage {
                    design: 2,
                    mats: vec![mk_mats([0, 2, 9, 1]), mk_mats([1, 1, 0, 7])],
                }],
            ),
            (
                Class::Matmul,
                vec![Body::Matmul {
                    a: mat(2, 3, &[1, 2, 3, 4, 5, 6]),
                    b: mat(3, 2, &[6, 5, 4, 3, 2, 1]),
                }],
            ),
            (
                Class::Edit,
                vec![
                    Body::Edit {
                        a: b"kitten".to_vec(),
                        b: b"sitting".to_vec(),
                    },
                    Body::Edit {
                        a: b"mitten".to_vec(),
                        b: b"fitting".to_vec(),
                    },
                ],
            ),
            (
                Class::Chain,
                vec![Body::Chain {
                    dims: vec![10, 20, 50, 1],
                }],
            ),
            (
                Class::Bst,
                vec![Body::Bst {
                    freq: vec![3, 1, 4, 1, 5],
                }],
            ),
            (
                Class::Align,
                vec![
                    Body::Align {
                        a: b"acacacta".to_vec(),
                        b: b"agcacaca".to_vec(),
                        matched: 2,
                        mismatched: -1,
                        gap: 1,
                    },
                    Body::Align {
                        a: b"gattacaa".to_vec(),
                        b: b"gcatgcua".to_vec(),
                        matched: 2,
                        mismatched: -1,
                        gap: 1,
                    },
                ],
            ),
            (
                Class::Knapsack,
                vec![
                    Body::Knapsack {
                        items: vec![
                            KnapsackItem::new(1, 1),
                            KnapsackItem::new(3, 4),
                            KnapsackItem::new(4, 5),
                            KnapsackItem::new(5, 7),
                        ],
                        capacity: 7,
                    },
                    Body::Knapsack {
                        items: vec![KnapsackItem::new(2, 3)],
                        capacity: 7,
                    },
                ],
            ),
        ];
        for (class, bodies) in buckets {
            let sim = run_bucket_on(EngineKind::Sim, class, &bodies);
            let direct = run_bucket_on(EngineKind::Direct, class, &bodies);
            assert_eq!(sim, direct, "{class:?} direct payload diverged from sim");
        }
        // Typed errors take the same shape on both paths.
        let bad = vec![Body::Chain { dims: vec![7] }];
        assert_eq!(
            run_bucket_on(EngineKind::Sim, Class::Chain, &bad),
            run_bucket_on(EngineKind::Direct, Class::Chain, &bad),
        );
    }

    #[test]
    fn choose_routes_by_work_measure() {
        let small = Body::Edit {
            a: b"ab".to_vec(),
            b: b"cd".to_vec(),
        };
        let big = Body::Edit {
            a: vec![b'a'; 100],
            b: vec![b'b'; 100],
        };
        assert_eq!(body_work(&small), 4);
        assert_eq!(body_work(&big), 10_000);
        assert_eq!(choose(&[small.clone()], 4096), EngineKind::Sim);
        assert_eq!(choose(&[big.clone()], 4096), EngineKind::Direct);
        assert_eq!(choose(&[big], u64::MAX), EngineKind::Sim, "MAX pins sim");
        assert_eq!(choose(&[small], 0), EngineKind::Direct);
        // AND/OR measures zero work, so any positive threshold keeps it
        // on the evaluator path.
        let mut g = sdp_andor::graph::AndOrGraph::new();
        let leaf = g.add_leaf(0, Cost::new(2));
        let andor = Body::AndOr {
            graph: g,
            root: leaf,
        };
        assert_eq!(body_work(&andor), 0);
        assert_eq!(choose(&[andor], 1), EngineKind::Sim);
        assert_eq!(choose(&[], 0), EngineKind::Sim, "empty bucket");
    }

    #[test]
    fn workload_buckets_match_singles_and_the_oracle_rendering() {
        let align = |a: &[u8], b: &[u8]| Body::Align {
            a: a.to_vec(),
            b: b.to_vec(),
            matched: 2,
            mismatched: -1,
            gap: 1,
        };
        let bucket = vec![
            align(b"acacacta", b"agcacaca"),
            align(b"aaaaaaaa", b"tttttttt"),
        ];
        let batched = run_bucket(Class::Align, &bucket);
        for (i, body) in bucket.iter().enumerate() {
            let single = run_bucket(Class::Align, std::slice::from_ref(body));
            assert_eq!(batched[i], single[0], "align instance {i}");
        }
        assert_eq!(
            batched[0].as_ref().unwrap().render(),
            sdp_oracle::served::served_align(b"acacacta", b"agcacaca", 2, -1, 1).render()
        );
        assert_eq!(
            batched[1].as_ref().unwrap().render(),
            r#"{"score":0,"end":null}"#
        );

        let sack = |items: &[(u64, u64)]| Body::Knapsack {
            items: items
                .iter()
                .map(|&(w, v)| KnapsackItem::new(w, v))
                .collect(),
            capacity: 7,
        };
        let bucket = vec![sack(&[(1, 1), (3, 4), (4, 5), (5, 7)]), sack(&[(2, 3)])];
        let batched = run_bucket(Class::Knapsack, &bucket);
        for (i, body) in bucket.iter().enumerate() {
            let single = run_bucket(Class::Knapsack, std::slice::from_ref(body));
            assert_eq!(batched[i], single[0], "knapsack instance {i}");
        }
        assert_eq!(
            batched[0].as_ref().unwrap().render(),
            sdp_oracle::served::served_knapsack(&[(1, 1), (3, 4), (4, 5), (5, 7)], 7).render()
        );
    }

    #[test]
    fn chain_and_bst_and_andor_run_singly() {
        let out = run_bucket(
            Class::Chain,
            &[Body::Chain {
                dims: vec![10, 20, 50, 1],
            }],
        );
        let payload = out[0].as_ref().unwrap().render();
        assert!(payload.contains("\"cost\":"));
        let out = run_bucket(
            Class::Bst,
            &[Body::Bst {
                freq: vec![3, 1, 4],
            }],
        );
        assert!(out[0].is_ok());
        let mut g = sdp_andor::graph::AndOrGraph::new();
        let l1 = g.add_leaf(0, Cost::new(2));
        let l2 = g.add_leaf(0, Cost::new(5));
        let a = g.add_and(1, vec![l1, l2], Cost::new(1));
        let out = run_bucket(Class::AndOr, &[Body::AndOr { graph: g, root: a }]);
        assert_eq!(out[0].as_ref().unwrap().render(), r#"{"value":8}"#);
    }
}
