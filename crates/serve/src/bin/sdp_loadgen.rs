//! `sdp-loadgen` binary: drives an `sdp-serve` instance with thousands
//! of concurrent connections from one poll-driven thread and prints a
//! JSON report (throughput, latency percentiles, outcome counts).
//!
//! ```text
//! sdp-loadgen ADDR [--connections N] [--duration-ms N]
//!             [--pipeline N | --rate N] [--kind edit]
//!             [--len N] [--distinct N] [--drain-grace-ms N]
//! ```
//!
//! Closed loop by default (`--pipeline N` outstanding requests per
//! connection); `--rate N` switches to open-loop arrival at `N`
//! requests/s aggregate — the saturation probe, where a slow server
//! cannot throttle the arrival stream.
//!
//! `--distinct N` sizes the working set: request bodies cycle through
//! `N` distinct same-shape problems, so `N` at or below the server's
//! cache capacity measures the cached hot path and a large `N`
//! measures cold dispatch.

use sdp_serve::loadgen::{run, Arrival, LoadConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sdp-loadgen ADDR [--connections N] [--duration-ms N] \
         [--pipeline N | --rate N] [--kind edit] [--len N] [--distinct N] \
         [--drain-grace-ms N]"
    );
    std::process::exit(2);
}

fn num_arg(args: &mut impl Iterator<Item = String>, name: &str) -> usize {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{name} needs a number");
        usage()
    })
}

/// A fixed-shape edit-distance request line: operand bytes are a
/// deterministic function of the variant index, so `distinct` controls
/// exactly how many canonical keys the run touches.
fn edit_line(seq: u64, len: usize, distinct: u64) -> String {
    let variant = seq % distinct.max(1);
    let mut a = String::with_capacity(len);
    let mut b = String::with_capacity(len);
    // Cheap deterministic mixing, distinct per variant.
    let mut x = variant.wrapping_mul(6364136223846793005).wrapping_add(1);
    for _ in 0..len.max(1) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        a.push(char::from(b'a' + (x % 26) as u8));
        b.push(char::from(b'a' + ((x >> 8) % 26) as u8));
    }
    format!("{{\"id\":{seq},\"kind\":\"edit\",\"a\":\"{a}\",\"b\":\"{b}\"}}")
}

fn main() {
    let mut cfg = LoadConfig {
        connections: 256,
        duration: Duration::from_secs(2),
        arrival: Arrival::Closed { pipeline: 4 },
        ..LoadConfig::default()
    };
    let mut kind = "edit".to_string();
    let mut len = 8usize;
    let mut distinct = 64u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connections" => cfg.connections = num_arg(&mut args, "--connections").max(1),
            "--duration-ms" => {
                cfg.duration = Duration::from_millis(num_arg(&mut args, "--duration-ms") as u64)
            }
            "--pipeline" => {
                cfg.arrival = Arrival::Closed {
                    pipeline: num_arg(&mut args, "--pipeline").max(1),
                }
            }
            "--rate" => {
                cfg.arrival = Arrival::Open {
                    rate_per_s: num_arg(&mut args, "--rate").max(1) as f64,
                }
            }
            "--kind" => kind = args.next().unwrap_or_else(|| usage()),
            "--len" => len = num_arg(&mut args, "--len").max(1),
            "--distinct" => distinct = num_arg(&mut args, "--distinct").max(1) as u64,
            "--drain-grace-ms" => {
                cfg.drain_grace =
                    Duration::from_millis(num_arg(&mut args, "--drain-grace-ms") as u64)
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => cfg.addr = other.to_string(),
            _ => usage(),
        }
    }
    if cfg.addr.is_empty() {
        usage();
    }
    if kind != "edit" {
        eprintln!("sdp-loadgen: only --kind edit is wired up");
        std::process::exit(2);
    }
    match run(&cfg, |seq| edit_line(seq, len, distinct)) {
        Ok(report) => println!("{}", report.to_json().render()),
        Err(e) => {
            eprintln!("sdp-loadgen: {e}");
            std::process::exit(1);
        }
    }
}
