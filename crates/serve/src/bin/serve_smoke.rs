//! CI smoke client: boots a server in-process, fires concurrent
//! mixed-class traffic at it over real sockets, and checks the serving
//! invariants end to end — every request answered, repeats hit the
//! cache, at least one batch coalesced, malformed input gets a typed
//! error, and the drain is graceful.  Exits nonzero on any violation.

use sdp_serve::client::{self, Client};
use sdp_serve::{json, Config};
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;

fn client_worker(addr: std::net::SocketAddr, seed: usize) -> Result<(usize, usize), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut ok = 0;
    let mut cached = 0;
    for i in 0..REQUESTS_PER_CLIENT {
        let id = (seed * 100 + i) as i64;
        // Three engine classes; identical problems across clients so
        // the cache and the coalescer both get exercised.
        let line = match i % 3 {
            0 => client::edit_request(id, "kitten", "sitting"),
            1 => client::chain_request(id, &[10, 20, 50, 1, 30]),
            _ => client::bst_request(id, &[3, 1, 4, 1, 5]),
        };
        let resp = c.call_raw(&line).map_err(|e| format!("call: {e}"))?;
        if resp.id != id {
            return Err(format!("id mismatch: sent {id}, got {}", resp.id));
        }
        if !resp.ok {
            return Err(format!("request {id} failed: {:?}", resp.error_message));
        }
        ok += 1;
        if resp.cached {
            cached += 1;
        }
    }
    Ok((ok, cached))
}

fn main() {
    let cfg = Config {
        max_delay: Duration::from_millis(10),
        workers: 2,
        ..Config::default()
    };
    let handle = sdp_serve::serve(cfg).expect("bind");
    let addr = handle.addr();
    println!("serve_smoke: server on {addr}");

    let workers: Vec<_> = (0..CLIENTS)
        .map(|seed| std::thread::spawn(move || client_worker(addr, seed)))
        .collect();
    let mut total_ok = 0;
    let mut total_cached = 0;
    for w in workers {
        match w.join().expect("client thread") {
            Ok((ok, cached)) => {
                total_ok += ok;
                total_cached += cached;
            }
            Err(e) => {
                eprintln!("serve_smoke: FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    assert_eq!(
        total_ok,
        CLIENTS * REQUESTS_PER_CLIENT,
        "every request answered ok"
    );
    assert!(total_cached > 0, "repeat problems should hit the cache");

    // Protocol hardening: malformed input gets a typed error on a
    // connection that stays usable.
    let mut c = Client::connect(addr).expect("connect");
    let resp = c.call_raw("{not json").expect("malformed call");
    assert!(!resp.ok && resp.error_kind.as_deref() == Some("malformed_request"));
    let resp = c
        .call_raw(r#"{"id":1,"kind":"edit","a":"ok","b":"still works"}"#)
        .expect("follow-up call");
    assert!(resp.ok, "connection survives a malformed line");

    // Metrics snapshot sanity.
    let m = c.metrics().expect("metrics");
    let doc = m.result.expect("metrics payload");
    let served = json::get(&doc, "served")
        .and_then(json::as_i64)
        .unwrap_or(0);
    assert!(served >= total_ok as i64, "served={served}");
    let cache = json::get(&doc, "cache").expect("cache block");
    let hits = json::get(cache, "hits").and_then(json::as_i64).unwrap_or(0);
    assert!(hits > 0, "cache hits recorded");

    let max_batch = handle.max_coalesced();
    assert!(max_batch >= 1, "at least one dispatch");
    println!(
        "serve_smoke: OK — {total_ok} requests, {total_cached} cache hits, max batch {max_batch}"
    );
    handle.shutdown();
}
