//! `sdp-serve` binary: boots the request server and blocks until a
//! client sends a `shutdown` request.
//!
//! ```text
//! sdp-serve [ADDR] [--workers N] [--event-workers N] [--max-batch N]
//!           [--max-delay-ms N] [--cache N] [--max-queue N]
//!           [--shed-queue N] [--default-deadline-ms N]
//!           [--idle-timeout-ms N] [--direct-threshold N]
//!           [--trace-out FILE]
//! ```
//!
//! `--event-workers N` sizes the pool of event-loop connection
//! workers (each multiplexes a slab of nonblocking sockets).
//!
//! `--direct-threshold N` sets the engine-dispatch crossover: requests
//! whose work measure is at or beyond `N` run on the compiled
//! `sdp-backend` solvers instead of the cycle-accurate simulators.
//!
//! `--trace-out FILE` enables per-request span tracing and, after the
//! drain completes, writes the collected Chrome trace (load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>) to `FILE`.

use sdp_serve::Config;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sdp-serve [ADDR] [--workers N] [--event-workers N] \
         [--max-batch N] [--max-delay-ms N] [--cache N] [--max-queue N] \
         [--shed-queue N] [--default-deadline-ms N] [--idle-timeout-ms N] \
         [--direct-threshold N] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn num_arg(args: &mut impl Iterator<Item = String>, name: &str) -> usize {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{name} needs a number");
        usage()
    })
}

fn main() {
    let mut cfg = Config {
        addr: "127.0.0.1:7171".to_string(),
        ..Config::default()
    };
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => cfg.workers = num_arg(&mut args, "--workers").max(1),
            "--event-workers" => cfg.event_workers = num_arg(&mut args, "--event-workers").max(1),
            "--max-batch" => cfg.max_batch = num_arg(&mut args, "--max-batch").max(1),
            "--max-delay-ms" => {
                cfg.max_delay = Duration::from_millis(num_arg(&mut args, "--max-delay-ms") as u64)
            }
            "--cache" => cfg.cache_capacity = num_arg(&mut args, "--cache"),
            "--max-queue" => cfg.max_queue = num_arg(&mut args, "--max-queue").max(1),
            "--shed-queue" => cfg.shed_queue = num_arg(&mut args, "--shed-queue").max(1),
            "--default-deadline-ms" => {
                cfg.default_deadline =
                    Duration::from_millis(num_arg(&mut args, "--default-deadline-ms") as u64)
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout =
                    Duration::from_millis(num_arg(&mut args, "--idle-timeout-ms").max(1) as u64)
            }
            "--direct-threshold" => {
                cfg.direct_threshold = num_arg(&mut args, "--direct-threshold") as u64
            }
            "--trace-out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a file path");
                    usage()
                });
                cfg.trace = true;
                trace_out = Some(path);
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => cfg.addr = other.to_string(),
            _ => usage(),
        }
    }
    match sdp_serve::serve(cfg) {
        Ok(mut handle) => {
            println!("sdp-serve listening on {}", handle.addr());
            handle.wait();
            if let Some(path) = trace_out {
                match handle.trace_snapshot() {
                    Some(doc) => match std::fs::write(&path, doc) {
                        Ok(()) => println!("trace written to {path}"),
                        Err(e) => {
                            eprintln!("sdp-serve: trace write failed: {e}");
                            std::process::exit(1);
                        }
                    },
                    None => unreachable!("--trace-out sets cfg.trace"),
                }
            }
        }
        Err(e) => {
            eprintln!("sdp-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
