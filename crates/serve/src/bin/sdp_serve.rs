//! `sdp-serve` binary: boots the request server and blocks until a
//! client sends a `shutdown` request.
//!
//! ```text
//! sdp-serve [ADDR] [--workers N] [--max-batch N] [--max-delay-ms N]
//!           [--cache N] [--max-queue N]
//! ```

use sdp_serve::Config;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sdp-serve [ADDR] [--workers N] [--max-batch N] \
         [--max-delay-ms N] [--cache N] [--max-queue N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = Config {
        addr: "127.0.0.1:7171".to_string(),
        ..Config::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--workers" => cfg.workers = num("--workers").max(1),
            "--max-batch" => cfg.max_batch = num("--max-batch").max(1),
            "--max-delay-ms" => cfg.max_delay = Duration::from_millis(num("--max-delay-ms") as u64),
            "--cache" => cfg.cache_capacity = num("--cache"),
            "--max-queue" => cfg.max_queue = num("--max-queue").max(1),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => cfg.addr = other.to_string(),
            _ => usage(),
        }
    }
    match sdp_serve::serve(cfg) {
        Ok(handle) => {
            println!("sdp-serve listening on {}", handle.addr());
            handle.shutdown_on_request();
        }
        Err(e) => {
            eprintln!("sdp-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
