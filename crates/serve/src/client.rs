//! A small blocking client for the wire protocol, plus request-line
//! builders.  Used by the smoke binary, the E24/E26 experiments, and
//! the differential tests — anything that talks to a running server.
//!
//! Robustness hooks: [`Client::set_read_timeout`] turns a dead server
//! into a typed `TimedOut` error instead of a hang, and
//! [`Client::call_with_retry`] honors the server's backpressure
//! protocol — `overloaded` / `circuit_open` / `queue_full` responses
//! are retried with jittered exponential backoff, preferring the
//! server's own `retry_after_ms` hint when present.

use crate::json;
use crate::protocol::matrix_to_json;
use sdp_semiring::{Matrix, MinPlus};
use sdp_trace::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response line.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echoed correlation id.
    pub id: i64,
    /// Success flag.
    pub ok: bool,
    /// Result payload (successful responses only).
    pub result: Option<Json>,
    /// Error kind (failed responses only), e.g. `"queue_full"`.
    pub error_kind: Option<String>,
    /// Human-readable error message.
    pub error_message: Option<String>,
    /// Server backpressure hint: retry no sooner than this many ms
    /// (`overloaded` / `circuit_open` errors only).
    pub retry_after_ms: Option<i64>,
    /// Whether the result came from the server's LRU cache.
    pub cached: bool,
    /// True when an open circuit breaker answered from the reference
    /// solver instead of the systolic engine.
    pub degraded: bool,
    /// Coalesced batch size the request rode in (0 = not batched).
    pub batch: i64,
    /// Which backend answered a freshly-computed request (`"sim"` or
    /// `"direct"`); absent on cached, degraded, and control replies.
    pub engine: Option<String>,
    /// The raw response line, for byte-level comparisons.
    pub raw: String,
}

impl Response {
    fn parse(raw: String) -> std::io::Result<Response> {
        let doc = json::parse(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })?;
        let err = json::get(&doc, "error");
        Ok(Response {
            id: json::get(&doc, "id").and_then(json::as_i64).unwrap_or(0),
            ok: json::get(&doc, "ok")
                .and_then(json::as_bool)
                .unwrap_or(false),
            result: json::get(&doc, "result").cloned(),
            error_kind: err
                .and_then(|e| json::get(e, "kind"))
                .and_then(json::as_str)
                .map(str::to_owned),
            error_message: err
                .and_then(|e| json::get(e, "message"))
                .and_then(json::as_str)
                .map(str::to_owned),
            retry_after_ms: err
                .and_then(|e| json::get(e, "retry_after_ms"))
                .and_then(json::as_i64),
            cached: json::get(&doc, "cached")
                .and_then(json::as_bool)
                .unwrap_or(false),
            degraded: json::get(&doc, "degraded")
                .and_then(json::as_bool)
                .unwrap_or(false),
            batch: json::get(&doc, "batch").and_then(json::as_i64).unwrap_or(0),
            engine: json::get(&doc, "engine")
                .and_then(json::as_str)
                .map(str::to_owned),
            raw,
        })
    }

    /// True for the error kinds that are worth retrying: transient
    /// backpressure, not client mistakes.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.error_kind.as_deref(),
            Some("overloaded") | Some("circuit_open") | Some("queue_full")
        )
    }
}

/// Jittered-exponential-backoff retry schedule for
/// [`Client::call_with_retry`].  Deterministic: the jitter comes from a
/// SplitMix64 stream seeded with `seed`, so a fixed seed replays the
/// exact same sleep schedule (the chaos harness depends on this).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = plain `call_raw`).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper clamp on any single backoff sleep (hints included).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            seed: 0x5d_2026,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based), honoring the
    /// server's `retry_after_ms` hint as the floor of the window when
    /// present.  Jitter picks uniformly from `[base/2, base]` so
    /// synchronized clients spread out instead of retrying in lockstep.
    pub fn backoff(&self, attempt: u32, hint_ms: Option<i64>, rng_state: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let base = match hint_ms {
            Some(ms) if ms > 0 => Duration::from_millis(ms as u64)
                .min(self.max_backoff)
                .max(exp),
            _ => exp,
        };
        let base_ms = base.as_millis().max(1) as u64;
        // SplitMix64 step — small enough to inline rather than exposing
        // sdp-fault's internal RNG.
        *rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter = z % (base_ms / 2 + 1);
        Duration::from_millis(base_ms - jitter)
    }
}

/// A blocking newline-delimited-JSON client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Bounds every subsequent read: a server that accepts the
    /// connection but never answers surfaces as a typed
    /// [`std::io::ErrorKind::TimedOut`] error instead of a hang.
    /// `None` restores blocking reads.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw request line and reads one response line.
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a raw line *without* reading the response (pipelining).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| {
            // Unix reports an elapsed read timeout as WouldBlock;
            // normalize so callers can match one kind.
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for a response line",
                )
            } else {
                e
            }
        })?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(line.trim_end().to_owned())
    }

    /// [`Client::call_raw`] plus the backpressure retry protocol:
    /// `overloaded` / `circuit_open` / `queue_full` responses are
    /// retried up to `policy.max_retries` times with deterministic
    /// jittered exponential backoff, honoring the server's
    /// `retry_after_ms` hint.  Returns the last response either way —
    /// callers still check `ok`.
    pub fn call_with_retry(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut rng_state = policy.seed;
        let mut response = self.call_raw(line)?;
        for attempt in 0..policy.max_retries {
            if response.ok || !response.is_retryable() {
                return Ok(response);
            }
            std::thread::sleep(policy.backoff(attempt, response.retry_after_ms, &mut rng_state));
            response = self.call_raw(line)?;
        }
        Ok(response)
    }

    /// Fetches a metrics snapshot.
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.call_raw(&metrics_request(0))
    }

    /// Fetches the Prometheus text exposition.
    pub fn metrics_text(&mut self) -> std::io::Result<Response> {
        self.call_raw(&metrics_text_request(0))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.call_raw(&shutdown_request(0))
    }
}

/// `multistage` request line for Design `design` (1 or 2).
pub fn multistage_request(id: i64, design: u8, mats: &[Matrix<MinPlus>]) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "multistage")
        .with("design", u64::from(design))
        .with(
            "mats",
            Json::Array(mats.iter().map(matrix_to_json).collect()),
        )
        .render()
}

/// `matmul` request line (min-plus product of `a` and `b`).
pub fn matmul_request(id: i64, a: &Matrix<MinPlus>, b: &Matrix<MinPlus>) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "matmul")
        .with("a", matrix_to_json(a))
        .with("b", matrix_to_json(b))
        .render()
}

/// `edit` request line (edit distance between two strings).
pub fn edit_request(id: i64, a: &str, b: &str) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "edit")
        .with("a", a)
        .with("b", b)
        .render()
}

/// `chain` request line (matrix-chain ordering over `dims`).
pub fn chain_request(id: i64, dims: &[u64]) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "chain")
        .with(
            "dims",
            Json::Array(dims.iter().map(|&d| Json::from(d)).collect()),
        )
        .render()
}

/// `bst` request line (optimal BST over access frequencies).
pub fn bst_request(id: i64, freq: &[u64]) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "bst")
        .with(
            "freq",
            Json::Array(freq.iter().map(|&f| Json::from(f)).collect()),
        )
        .render()
}

/// `align` request line (Smith–Waterman local alignment under simple
/// scoring; the server defaults are `match=2`, `mismatch=-1`, `gap=1`).
pub fn align_request(id: i64, a: &str, b: &str, scores: Option<(i64, i64, i64)>) -> String {
    let mut doc = Json::object()
        .with("id", Json::Int(id))
        .with("kind", "align")
        .with("a", a)
        .with("b", b);
    if let Some((matched, mismatched, gap)) = scores {
        doc = doc
            .with("match", Json::Int(matched))
            .with("mismatch", Json::Int(mismatched))
            .with("gap", Json::Int(gap));
    }
    doc.render()
}

/// `knapsack` request line (0/1 knapsack over parallel weight/value
/// lists).
pub fn knapsack_request(id: i64, weights: &[u64], values: &[u64], capacity: u64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "knapsack")
        .with(
            "weights",
            Json::Array(weights.iter().map(|&w| Json::from(w)).collect()),
        )
        .with(
            "values",
            Json::Array(values.iter().map(|&v| Json::from(v)).collect()),
        )
        .with("capacity", capacity)
        .render()
}

/// Attaches a `deadline_ms` budget to an already-rendered compute
/// request line (the server clamps a missing field to its default).
pub fn with_deadline(line: &str, deadline_ms: u64) -> String {
    match json::parse(line) {
        Ok(doc) => doc.with("deadline_ms", deadline_ms).render(),
        Err(_) => line.to_owned(),
    }
}

/// `metrics` request line.
pub fn metrics_request(id: i64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "metrics")
        .render()
}

/// `metrics_text` request line (Prometheus exposition).
pub fn metrics_text_request(id: i64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "metrics_text")
        .render()
}

/// `shutdown` request line.
pub fn shutdown_request(id: i64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "shutdown")
        .render()
}
