//! A small blocking client for the wire protocol, plus request-line
//! builders.  Used by the smoke binary, the E24 experiment, and the
//! differential tests — anything that talks to a running server.

use crate::json;
use crate::protocol::matrix_to_json;
use sdp_semiring::{Matrix, MinPlus};
use sdp_trace::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One parsed response line.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echoed correlation id.
    pub id: i64,
    /// Success flag.
    pub ok: bool,
    /// Result payload (successful responses only).
    pub result: Option<Json>,
    /// Error kind (failed responses only), e.g. `"queue_full"`.
    pub error_kind: Option<String>,
    /// Human-readable error message.
    pub error_message: Option<String>,
    /// Whether the result came from the server's LRU cache.
    pub cached: bool,
    /// Coalesced batch size the request rode in (0 = not batched).
    pub batch: i64,
    /// The raw response line, for byte-level comparisons.
    pub raw: String,
}

impl Response {
    fn parse(raw: String) -> std::io::Result<Response> {
        let doc = json::parse(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })?;
        let err = json::get(&doc, "error");
        Ok(Response {
            id: json::get(&doc, "id").and_then(json::as_i64).unwrap_or(0),
            ok: json::get(&doc, "ok")
                .and_then(json::as_bool)
                .unwrap_or(false),
            result: json::get(&doc, "result").cloned(),
            error_kind: err
                .and_then(|e| json::get(e, "kind"))
                .and_then(json::as_str)
                .map(str::to_owned),
            error_message: err
                .and_then(|e| json::get(e, "message"))
                .and_then(json::as_str)
                .map(str::to_owned),
            cached: json::get(&doc, "cached")
                .and_then(json::as_bool)
                .unwrap_or(false),
            batch: json::get(&doc, "batch").and_then(json::as_i64).unwrap_or(0),
            raw,
        })
    }
}

/// A blocking newline-delimited-JSON client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and reads one response line.
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a raw line *without* reading the response (pipelining).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(line.trim_end().to_owned())
    }

    /// Fetches a metrics snapshot.
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.call_raw(&metrics_request(0))
    }

    /// Fetches the Prometheus text exposition.
    pub fn metrics_text(&mut self) -> std::io::Result<Response> {
        self.call_raw(&metrics_text_request(0))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.call_raw(&shutdown_request(0))
    }
}

/// `multistage` request line for Design `design` (1 or 2).
pub fn multistage_request(id: i64, design: u8, mats: &[Matrix<MinPlus>]) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "multistage")
        .with("design", u64::from(design))
        .with(
            "mats",
            Json::Array(mats.iter().map(matrix_to_json).collect()),
        )
        .render()
}

/// `matmul` request line (min-plus product of `a` and `b`).
pub fn matmul_request(id: i64, a: &Matrix<MinPlus>, b: &Matrix<MinPlus>) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "matmul")
        .with("a", matrix_to_json(a))
        .with("b", matrix_to_json(b))
        .render()
}

/// `edit` request line (edit distance between two strings).
pub fn edit_request(id: i64, a: &str, b: &str) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "edit")
        .with("a", a)
        .with("b", b)
        .render()
}

/// `chain` request line (matrix-chain ordering over `dims`).
pub fn chain_request(id: i64, dims: &[u64]) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "chain")
        .with(
            "dims",
            Json::Array(dims.iter().map(|&d| Json::from(d)).collect()),
        )
        .render()
}

/// `bst` request line (optimal BST over access frequencies).
pub fn bst_request(id: i64, freq: &[u64]) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "bst")
        .with(
            "freq",
            Json::Array(freq.iter().map(|&f| Json::from(f)).collect()),
        )
        .render()
}

/// `metrics` request line.
pub fn metrics_request(id: i64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "metrics")
        .render()
}

/// `metrics_text` request line (Prometheus exposition).
pub fn metrics_text_request(id: i64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "metrics_text")
        .render()
}

/// `shutdown` request line.
pub fn shutdown_request(id: i64) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("kind", "shutdown")
        .render()
}
