//! The NDJSON wire protocol: typed requests, canonical cache keys, and
//! response rendering.
//!
//! One request per line, one response per line.  Every request carries
//! an `id` echoed back verbatim and a `kind` naming the engine family:
//!
//! | kind         | payload                                      | engine            |
//! |--------------|----------------------------------------------|-------------------|
//! | `multistage` | `design` (1/2), `mats` (min-plus matrices)   | Design 1/2 arrays |
//! | `matmul`     | `a`, `b` (min-plus matrices)                 | matmul mesh       |
//! | `edit`       | `a`, `b` (strings)                           | edit-distance mesh|
//! | `chain`      | `dims` (r₀…r_N)                              | chain array       |
//! | `bst`        | `freq` (access frequencies)                  | interval DP       |
//! | `andor`      | `nodes` (postorder), `root`                  | AND/OR evaluation |
//! | `align`      | `a`, `b` (strings), `match`/`mismatch`/`gap` | Smith–Waterman mesh |
//! | `knapsack`   | `weights`, `values`, `capacity`              | knapsack array    |
//! | `metrics`    | —                                            | server introspection |
//! | `metrics_text` | —                                          | Prometheus text exposition |
//! | `shutdown`   | —                                            | graceful drain    |
//!
//! Matrices are `{"rows":r,"cols":c,"data":[..]}` row-major with `null`
//! for +∞.  Responses are `{"id":..,"ok":true,"result":..,"cached":..,
//! "batch":..}` or `{"id":..,"ok":false,"error":{"kind":..,"message":..}}`.

use crate::json::{self, Json};
use sdp_andor::graph::AndOrGraph;
use sdp_core::knapsack_array::KnapsackItem;
use sdp_fault::SdpError;
use sdp_semiring::{Cost, Matrix, MinPlus};

/// Engine class of a request — the unit of batch coalescing and of the
/// per-class metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// Design 1 (pipelined array) over a min-plus matrix string.
    Multistage1,
    /// Design 2 (broadcast array) over a min-plus matrix string.
    Multistage2,
    /// Result-stationary matmul mesh (min-plus product).
    Matmul,
    /// Edit-distance mesh.
    Edit,
    /// Matrix-chain parenthesization on the chain array.
    Chain,
    /// Optimal BST / alphabetic merge tree (interval DP).
    Bst,
    /// AND/OR-graph evaluation.
    AndOr,
    /// Smith–Waterman local-alignment mesh (simple scoring, linear gap).
    Align,
    /// 0/1 knapsack on the capacity-indexed streaming array.
    Knapsack,
}

/// All engine classes, in metrics order.
pub const CLASSES: [Class; 9] = [
    Class::Multistage1,
    Class::Multistage2,
    Class::Matmul,
    Class::Edit,
    Class::Chain,
    Class::Bst,
    Class::AndOr,
    Class::Align,
    Class::Knapsack,
];

impl Class {
    /// Stable wire/metrics name.
    pub fn name(self) -> &'static str {
        match self {
            Class::Multistage1 => "multistage1",
            Class::Multistage2 => "multistage2",
            Class::Matmul => "matmul",
            Class::Edit => "edit",
            Class::Chain => "chain",
            Class::Bst => "bst",
            Class::AndOr => "andor",
            Class::Align => "align",
            Class::Knapsack => "knapsack",
        }
    }

    /// Index into per-class metric tables.
    pub fn index(self) -> usize {
        CLASSES.iter().position(|c| *c == self).expect("listed")
    }
}

/// A decoded compute request body (control requests are handled before
/// this level).
#[derive(Clone, Debug)]
pub enum Body {
    /// Min-plus matrix string for Design 1 or Design 2.
    Multistage {
        /// 1 = pipelined array, 2 = broadcast array.
        design: u8,
        /// The string `M₁ … M_N`.
        mats: Vec<Matrix<MinPlus>>,
    },
    /// One min-plus matrix product.
    Matmul {
        /// Left operand.
        a: Matrix<MinPlus>,
        /// Right operand.
        b: Matrix<MinPlus>,
    },
    /// One edit-distance comparison.
    Edit {
        /// First operand.
        a: Vec<u8>,
        /// Second operand.
        b: Vec<u8>,
    },
    /// Matrix-chain dimensions `r₀ … r_N`.
    Chain {
        /// Dimension vector (≥ 2 entries).
        dims: Vec<u64>,
    },
    /// Optimal-BST access frequencies.
    Bst {
        /// Frequencies (≥ 1 entry).
        freq: Vec<u64>,
    },
    /// An AND/OR graph plus the node to evaluate.
    AndOr {
        /// The graph, already validated (children precede parents).
        graph: AndOrGraph,
        /// Node whose value is requested.
        root: usize,
    },
    /// One Smith–Waterman local alignment under simple scoring.
    Align {
        /// First operand.
        a: Vec<u8>,
        /// Second operand.
        b: Vec<u8>,
        /// Score for a matching symbol pair.
        matched: i64,
        /// Score for a mismatching symbol pair.
        mismatched: i64,
        /// Per-symbol gap penalty (subtracted).
        gap: i64,
    },
    /// One 0/1 knapsack instance.
    Knapsack {
        /// The items (weight, value), in stream order.
        items: Vec<KnapsackItem>,
        /// Knapsack capacity.
        capacity: u64,
    },
}

impl Body {
    /// The engine class this body dispatches to.
    pub fn class(&self) -> Class {
        match self {
            Body::Multistage { design: 1, .. } => Class::Multistage1,
            Body::Multistage { .. } => Class::Multistage2,
            Body::Matmul { .. } => Class::Matmul,
            Body::Edit { .. } => Class::Edit,
            Body::Chain { .. } => Class::Chain,
            Body::Bst { .. } => Class::Bst,
            Body::AndOr { .. } => Class::AndOr,
            Body::Align { .. } => Class::Align,
            Body::Knapsack { .. } => Class::Knapsack,
        }
    }

    /// Canonical byte encoding of the problem — the exact-match cache
    /// key.  Two requests get the same encoding iff they describe the
    /// same problem instance, independent of JSON field order, spacing,
    /// or numeric spelling on the wire.
    pub fn canonical_key(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let push_cost = |out: &mut Vec<u8>, c: Cost| {
            // INF shares no encoding with any finite cost (raw i64::MAX
            // is reserved by `Cost`), so raw bits are canonical.
            out.extend_from_slice(&c.raw().to_le_bytes())
        };
        let push_mat = |out: &mut Vec<u8>, m: &Matrix<MinPlus>| {
            push_u64(out, m.rows() as u64);
            push_u64(out, m.cols() as u64);
            for i in 0..m.rows() {
                for &MinPlus(c) in m.row(i) {
                    push_cost(out, c);
                }
            }
        };
        match self {
            Body::Multistage { design, mats } => {
                out.push(*design);
                push_u64(&mut out, mats.len() as u64);
                for m in mats {
                    push_mat(&mut out, m);
                }
            }
            Body::Matmul { a, b } => {
                out.push(10);
                push_mat(&mut out, a);
                push_mat(&mut out, b);
            }
            Body::Edit { a, b } => {
                out.push(20);
                push_u64(&mut out, a.len() as u64);
                out.extend_from_slice(a);
                push_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
            Body::Chain { dims } => {
                out.push(30);
                for &d in dims {
                    push_u64(&mut out, d);
                }
            }
            Body::Bst { freq } => {
                out.push(40);
                for &f in freq {
                    push_u64(&mut out, f);
                }
            }
            Body::AndOr { graph, root } => {
                out.push(50);
                push_u64(&mut out, *root as u64);
                push_u64(&mut out, graph.len() as u64);
                for id in 0..graph.len() {
                    let n = graph.node(id);
                    out.push(match n.kind {
                        sdp_andor::graph::NodeKind::Leaf => 0,
                        sdp_andor::graph::NodeKind::And => 1,
                        sdp_andor::graph::NodeKind::Or => 2,
                    });
                    push_u64(&mut out, n.level as u64);
                    push_cost(&mut out, n.local_cost);
                    push_cost(&mut out, n.leaf_value);
                    push_u64(&mut out, n.children.len() as u64);
                    for &c in &n.children {
                        push_u64(&mut out, c as u64);
                    }
                }
            }
            Body::Align {
                a,
                b,
                matched,
                mismatched,
                gap,
            } => {
                out.push(60);
                push_u64(&mut out, a.len() as u64);
                out.extend_from_slice(a);
                push_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
                for s in [matched, mismatched, gap] {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Body::Knapsack { items, capacity } => {
                out.push(70);
                push_u64(&mut out, *capacity);
                push_u64(&mut out, items.len() as u64);
                for it in items {
                    push_u64(&mut out, it.weight);
                    push_u64(&mut out, it.value);
                }
            }
        }
        out
    }

    /// FNV-1a hash of the canonical key — used for shape-independent
    /// telemetry and as the coalescing bucket discriminator's mix-in.
    pub fn canonical_hash(&self) -> u64 {
        fnv1a(&self.canonical_key())
    }

    /// The *shape* discriminator for batch coalescing: requests sharing
    /// a class and shape key can ride the same `run_batch` dispatch
    /// (the batched engines require uniform shapes).  Classes without a
    /// batched engine coalesce freely (shape 0) and are looped by the
    /// dispatch task.
    pub fn shape_key(&self) -> u64 {
        let mut bytes = Vec::new();
        match self {
            Body::Multistage { design, mats } => {
                bytes.push(*design);
                for m in mats {
                    bytes.extend_from_slice(&(m.rows() as u64).to_le_bytes());
                    bytes.extend_from_slice(&(m.cols() as u64).to_le_bytes());
                }
            }
            Body::Matmul { a, b } => {
                bytes.push(10);
                for d in [a.rows(), a.cols(), b.cols()] {
                    bytes.extend_from_slice(&(d as u64).to_le_bytes());
                }
            }
            Body::Edit { a, b } => {
                bytes.push(20);
                bytes.extend_from_slice(&(a.len() as u64).to_le_bytes());
                bytes.extend_from_slice(&(b.len() as u64).to_le_bytes());
            }
            // No batched engine: any mix coalesces into one pool task.
            Body::Chain { .. } => bytes.push(30),
            Body::Bst { .. } => bytes.push(40),
            Body::AndOr { .. } => bytes.push(50),
            Body::Align {
                a,
                b,
                matched,
                mismatched,
                gap,
            } => {
                // The batched mesh takes one shared scoring scheme, so
                // the scoring parameters are part of the shape.
                bytes.push(60);
                bytes.extend_from_slice(&(a.len() as u64).to_le_bytes());
                bytes.extend_from_slice(&(b.len() as u64).to_le_bytes());
                for s in [matched, mismatched, gap] {
                    bytes.extend_from_slice(&s.to_le_bytes());
                }
            }
            Body::Knapsack { capacity, .. } => {
                // The batch array schedule is launch-driven, so riders
                // may carry different item counts — only the capacity
                // (the array length) must agree.
                bytes.push(70);
                bytes.extend_from_slice(&capacity.to_le_bytes());
            }
        }
        fnv1a(&bytes)
    }
}

/// 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// A compute request destined for the admission queue.
    Compute {
        /// Client-chosen correlation id, echoed in the response.
        id: i64,
        /// The decoded problem.
        body: Body,
        /// Client-supplied deadline in milliseconds (`None`: the
        /// server default applies).
        deadline_ms: Option<u64>,
    },
    /// Metrics snapshot request (answered inline).
    Metrics {
        /// Correlation id.
        id: i64,
    },
    /// Prometheus text-exposition request (answered inline).
    MetricsText {
        /// Correlation id.
        id: i64,
    },
    /// Graceful-drain request (answered inline, then the server drains).
    Shutdown {
        /// Correlation id.
        id: i64,
    },
}

fn bad(reason: impl Into<String>) -> SdpError {
    SdpError::MalformedRequest {
        reason: reason.into(),
    }
}

fn parse_matrix(doc: &Json, field: &str) -> Result<Matrix<MinPlus>, SdpError> {
    let rows = json::get(doc, "rows")
        .and_then(json::as_i64)
        .ok_or_else(|| bad(format!("{field}: missing integer 'rows'")))?;
    let cols = json::get(doc, "cols")
        .and_then(json::as_i64)
        .ok_or_else(|| bad(format!("{field}: missing integer 'cols'")))?;
    if rows < 1 || cols < 1 {
        return Err(bad(format!("{field}: dimensions must be positive")));
    }
    let (rows, cols) = (rows as usize, cols as usize);
    if rows.saturating_mul(cols) > 1 << 20 {
        return Err(bad(format!("{field}: matrix larger than 2^20 entries")));
    }
    let data = json::get(doc, "data")
        .and_then(json::as_array)
        .ok_or_else(|| bad(format!("{field}: missing array 'data'")))?;
    if data.len() != rows * cols {
        return Err(bad(format!(
            "{field}: data has {} entries, want rows*cols = {}",
            data.len(),
            rows * cols
        )));
    }
    let mut cells = Vec::with_capacity(data.len());
    for (i, cell) in data.iter().enumerate() {
        let cost = match cell {
            Json::Null => Cost::INF,
            Json::Int(v) => {
                if *v == i64::MAX {
                    return Err(bad(format!(
                        "{field}: data[{i}] overflows (use null for inf)"
                    )));
                }
                Cost::new(*v)
            }
            _ => return Err(bad(format!("{field}: data[{i}] must be int or null"))),
        };
        cells.push(MinPlus(cost));
    }
    Ok(Matrix::from_rows(rows, cols, cells))
}

fn parse_u64_list(doc: &Json, field: &str, min_len: usize) -> Result<Vec<u64>, SdpError> {
    let arr = json::get(doc, field)
        .and_then(json::as_array)
        .ok_or_else(|| bad(format!("missing array '{field}'")))?;
    if arr.len() < min_len {
        return Err(bad(format!("'{field}' needs at least {min_len} entries")));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Json::Int(x) if *x >= 0 => Ok(*x as u64),
            _ => Err(bad(format!("{field}[{i}] must be a non-negative integer"))),
        })
        .collect()
}

fn parse_andor(doc: &Json) -> Result<Body, SdpError> {
    let nodes = json::get(doc, "nodes")
        .and_then(json::as_array)
        .ok_or_else(|| bad("missing array 'nodes'"))?;
    if nodes.is_empty() {
        return Err(bad("'nodes' must be non-empty"));
    }
    if nodes.len() > 1 << 16 {
        return Err(bad("more than 2^16 AND/OR nodes"));
    }
    let mut graph = AndOrGraph::new();
    for (i, n) in nodes.iter().enumerate() {
        let op = json::get(n, "op")
            .and_then(json::as_str)
            .ok_or_else(|| bad(format!("nodes[{i}]: missing string 'op'")))?;
        let level = json::get(n, "level").and_then(json::as_i64).unwrap_or(0);
        if !(0..=json::MAX_DEPTH as i64 * 1024).contains(&level) {
            return Err(bad(format!("nodes[{i}]: bad level")));
        }
        let children = || -> Result<Vec<usize>, SdpError> {
            let kids = json::get(n, "children")
                .and_then(json::as_array)
                .ok_or_else(|| bad(format!("nodes[{i}]: missing array 'children'")))?;
            if kids.is_empty() {
                return Err(bad(format!("nodes[{i}]: needs at least one child")));
            }
            kids.iter()
                .map(|k| match json::as_i64(k) {
                    // Children must already exist: ids are postorder, so
                    // the graph is acyclic by construction.
                    Some(c) if (0..i as i64).contains(&c) => Ok(c as usize),
                    _ => Err(bad(format!("nodes[{i}]: child out of range 0..{i}"))),
                })
                .collect()
        };
        match op {
            "leaf" => {
                let value = json::get(n, "value").and_then(json::as_i64).unwrap_or(0);
                if value == i64::MAX {
                    return Err(bad(format!("nodes[{i}]: value overflows")));
                }
                graph.add_leaf(level as usize, Cost::new(value));
            }
            "and" => {
                let cost = json::get(n, "cost").and_then(json::as_i64).unwrap_or(0);
                if cost == i64::MAX {
                    return Err(bad(format!("nodes[{i}]: cost overflows")));
                }
                let kids = children()?;
                // Arcs must point down-level for bottom-up evaluation.
                if kids.iter().any(|&c| graph.node(c).level >= level as usize) {
                    return Err(bad(format!("nodes[{i}]: children must be at lower levels")));
                }
                graph.add_and(level as usize, kids, Cost::new(cost));
            }
            "or" => {
                let kids = children()?;
                if kids.iter().any(|&c| graph.node(c).level >= level as usize) {
                    return Err(bad(format!("nodes[{i}]: children must be at lower levels")));
                }
                graph.add_or(level as usize, kids);
            }
            other => return Err(bad(format!("nodes[{i}]: unknown op '{other}'"))),
        }
    }
    let root = json::get(doc, "root")
        .and_then(json::as_i64)
        .unwrap_or(nodes.len() as i64 - 1);
    if !(0..nodes.len() as i64).contains(&root) {
        return Err(bad("'root' out of range"));
    }
    Ok(Body::AndOr {
        graph,
        root: root as usize,
    })
}

/// Decodes one request line (already JSON-parsed into `doc`).
pub fn decode(doc: &Json) -> Result<Request, SdpError> {
    let id = json::get(doc, "id").and_then(json::as_i64).unwrap_or(0);
    let kind = json::get(doc, "kind")
        .and_then(json::as_str)
        .ok_or_else(|| bad("missing string 'kind'"))?;
    let body = match kind {
        "metrics" => return Ok(Request::Metrics { id }),
        "metrics_text" => return Ok(Request::MetricsText { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "multistage" => {
            let design = match json::get(doc, "design").and_then(json::as_i64).unwrap_or(1) {
                1 => 1u8,
                2 => 2u8,
                other => return Err(bad(format!("design {other} not served (use 1 or 2)"))),
            };
            let mats_json = json::get(doc, "mats")
                .and_then(json::as_array)
                .ok_or_else(|| bad("missing array 'mats'"))?;
            if mats_json.is_empty() {
                return Err(bad("'mats' must be non-empty"));
            }
            let mats = mats_json
                .iter()
                .enumerate()
                .map(|(i, m)| parse_matrix(m, &format!("mats[{i}]")))
                .collect::<Result<Vec<_>, _>>()?;
            Body::Multistage { design, mats }
        }
        "matmul" => {
            let a = parse_matrix(json::get(doc, "a").ok_or_else(|| bad("missing 'a'"))?, "a")?;
            let b = parse_matrix(json::get(doc, "b").ok_or_else(|| bad("missing 'b'"))?, "b")?;
            if a.cols() != b.rows() {
                return Err(SdpError::InnerDimMismatch {
                    left_cols: a.cols(),
                    right_rows: b.rows(),
                });
            }
            Body::Matmul { a, b }
        }
        "edit" => {
            let a = json::get(doc, "a")
                .and_then(json::as_str)
                .ok_or_else(|| bad("missing string 'a'"))?;
            let b = json::get(doc, "b")
                .and_then(json::as_str)
                .ok_or_else(|| bad("missing string 'b'"))?;
            Body::Edit {
                a: a.as_bytes().to_vec(),
                b: b.as_bytes().to_vec(),
            }
        }
        "align" => {
            let a = json::get(doc, "a")
                .and_then(json::as_str)
                .ok_or_else(|| bad("missing string 'a'"))?;
            let b = json::get(doc, "b")
                .and_then(json::as_str)
                .ok_or_else(|| bad("missing string 'b'"))?;
            let param = |field: &str, default: i64| -> Result<i64, SdpError> {
                match json::get(doc, field) {
                    None | Some(Json::Null) => Ok(default),
                    Some(v) => json::as_i64(v)
                        .filter(|s| s.unsigned_abs() <= 1 << 20)
                        .ok_or_else(|| bad(format!("'{field}' must be an integer within ±2^20"))),
                }
            };
            Body::Align {
                a: a.as_bytes().to_vec(),
                b: b.as_bytes().to_vec(),
                matched: param("match", 2)?,
                mismatched: param("mismatch", -1)?,
                gap: param("gap", 1)?,
            }
        }
        "knapsack" => {
            let weights = parse_u64_list(doc, "weights", 1)?;
            let values = parse_u64_list(doc, "values", 1)?;
            if weights.len() != values.len() {
                return Err(bad(format!(
                    "'weights' has {} entries but 'values' has {}",
                    weights.len(),
                    values.len()
                )));
            }
            let capacity = json::get(doc, "capacity")
                .and_then(json::as_i64)
                .ok_or_else(|| bad("missing integer 'capacity'"))?;
            if !(0..=100_000).contains(&capacity) {
                return Err(bad("'capacity' must be in 0..=100000"));
            }
            let items = weights
                .into_iter()
                .zip(values)
                .map(|(w, v)| KnapsackItem::new(w, v))
                .collect();
            Body::Knapsack {
                items,
                capacity: capacity as u64,
            }
        }
        "chain" => Body::Chain {
            dims: parse_u64_list(doc, "dims", 2)?,
        },
        "bst" => Body::Bst {
            freq: parse_u64_list(doc, "freq", 1)?,
        },
        "andor" => parse_andor(doc)?,
        other => return Err(bad(format!("unknown kind '{other}'"))),
    };
    let deadline_ms = match json::get(doc, "deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => match json::as_i64(v) {
            Some(ms) if ms >= 0 => Some(ms as u64),
            _ => return Err(bad("'deadline_ms' must be a non-negative integer")),
        },
    };
    Ok(Request::Compute {
        id,
        body,
        deadline_ms,
    })
}

/// Renders a min-plus matrix as wire JSON (`null` = +∞).
pub fn matrix_to_json(m: &Matrix<MinPlus>) -> Json {
    let mut data = Vec::with_capacity(m.rows() * m.cols());
    for i in 0..m.rows() {
        for &MinPlus(c) in m.row(i) {
            data.push(cost_to_json(c));
        }
    }
    Json::object()
        .with("rows", m.rows())
        .with("cols", m.cols())
        .with("data", Json::Array(data))
}

/// Renders a cost (`null` = +∞).
pub fn cost_to_json(c: Cost) -> Json {
    match c.finite() {
        Some(v) => Json::Int(v),
        None => Json::Null,
    }
}

/// A successful response line.
pub fn ok_response(id: i64, result: Json, cached: bool, batch: usize) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("ok", true)
        .with("result", result)
        .with("cached", cached)
        .with("batch", batch)
        .render()
}

/// The cache-hit success line, assembled from a *pre-rendered* result
/// payload by string concatenation.  Byte-identical to
/// `ok_response(id, parse(payload), true, 0)` — the cache stores the
/// payload exactly as [`Json::render`] produced it, so splicing it
/// into the envelope skips the parse/clone/re-render round trip on
/// the server's hottest path.
pub fn ok_cached_response(id: i64, payload: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{payload},\"cached\":true,\"batch\":0}}")
}

/// A success response for a freshly-computed request, tagged with the
/// backend that answered it (`"sim"` or `"direct"`).  Cached replays
/// and control replies stay untagged — the cache stores payloads, not
/// provenance, and the payload is bit-identical either way.
pub fn ok_engine_response(id: i64, result: Json, batch: usize, engine: &str) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("ok", true)
        .with("result", result)
        .with("cached", false)
        .with("batch", batch)
        .with("engine", engine)
        .render()
}

/// Stable wire name for an error variant.
pub fn error_kind(e: &SdpError) -> &'static str {
    match e {
        SdpError::MalformedRequest { .. } => "malformed_request",
        SdpError::PayloadTooLarge { .. } => "payload_too_large",
        SdpError::QueueFull { .. } => "queue_full",
        SdpError::ShuttingDown => "shutting_down",
        SdpError::TaskPanicked { .. } => "task_panicked",
        SdpError::InnerDimMismatch { .. } => "inner_dim_mismatch",
        SdpError::EmptyMatrixString => "empty_matrix_string",
        SdpError::NotSquare { .. } => "not_square",
        SdpError::WrongStageWidth { .. } => "wrong_stage_width",
        SdpError::StringTooShort { .. } => "string_too_short",
        SdpError::BadParameter { .. } => "bad_parameter",
        SdpError::EmptyBatch => "empty_batch",
        SdpError::BatchShapeMismatch { .. } => "batch_shape_mismatch",
        SdpError::DeadlineExceeded { .. } => "deadline_exceeded",
        SdpError::Overloaded { .. } => "overloaded",
        SdpError::CircuitOpen { .. } => "circuit_open",
        _ => "engine_error",
    }
}

/// A successful response computed by the degraded fallback path (the
/// circuit breaker routed around a failing engine to the reference
/// solver); flagged so clients can tell, and never cached.
pub fn degraded_response(id: i64, result: Json) -> String {
    Json::object()
        .with("id", Json::Int(id))
        .with("ok", true)
        .with("result", result)
        .with("cached", false)
        .with("batch", 0usize)
        .with("degraded", true)
        .render()
}

/// An error response line — the server's contract is that *every*
/// failure becomes one of these, never a dropped connection.
/// Backpressure errors carry a machine-readable `retry_after_ms` hint
/// the client retry policy honours.
pub fn error_response(id: i64, e: &SdpError) -> String {
    let mut err = Json::object()
        .with("kind", error_kind(e))
        .with("message", e.to_string());
    if let SdpError::Overloaded { retry_after_ms } | SdpError::CircuitOpen { retry_after_ms } = e {
        err = err.with("retry_after_ms", *retry_after_ms);
    }
    Json::object()
        .with("id", Json::Int(id))
        .with("ok", false)
        .with("error", err)
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn decodes_every_kind() {
        let lines = [
            r#"{"id":1,"kind":"edit","a":"kitten","b":"sitting"}"#,
            r#"{"id":2,"kind":"matmul","a":{"rows":2,"cols":2,"data":[1,2,3,4]},"b":{"rows":2,"cols":2,"data":[5,6,7,null]}}"#,
            r#"{"id":3,"kind":"multistage","design":2,"mats":[{"rows":2,"cols":2,"data":[1,2,3,4]},{"rows":2,"cols":2,"data":[1,2,3,4]}]}"#,
            r#"{"id":4,"kind":"chain","dims":[4,2,3,7]}"#,
            r#"{"id":5,"kind":"bst","freq":[3,1,4]}"#,
            r#"{"id":6,"kind":"andor","nodes":[{"op":"leaf","value":2},{"op":"leaf","value":5},{"op":"and","level":1,"children":[0,1],"cost":1},{"op":"or","level":2,"children":[2]}],"root":3}"#,
            r#"{"id":7,"kind":"metrics"}"#,
            r#"{"id":8,"kind":"shutdown"}"#,
            r#"{"id":9,"kind":"metrics_text"}"#,
            r#"{"id":10,"kind":"align","a":"acacacta","b":"agcacaca"}"#,
            r#"{"id":11,"kind":"align","a":"gat","b":"cat","match":3,"mismatch":-2,"gap":2}"#,
            r#"{"id":12,"kind":"knapsack","weights":[1,3,4,5],"values":[1,4,5,7],"capacity":7}"#,
        ];
        for line in lines {
            decode(&parse(line).unwrap()).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn canonical_key_ignores_wire_spelling() {
        let a = decode(&parse(r#"{"id":1,"kind":"edit","a":"ab","b":"cd"}"#).unwrap()).unwrap();
        let b =
            decode(&parse(r#"{ "b" : "cd", "kind" : "edit", "a" : "ab", "id" : 99 }"#).unwrap())
                .unwrap();
        let (Request::Compute { body: ba, .. }, Request::Compute { body: bb, .. }) = (a, b) else {
            panic!("compute");
        };
        assert_eq!(ba.canonical_key(), bb.canonical_key());
        assert_eq!(ba.canonical_hash(), bb.canonical_hash());
    }

    #[test]
    fn canonical_key_separates_operands() {
        // ("ab","") vs ("a","b") must not collide: lengths frame bytes.
        let k1 = Body::Edit {
            a: b"ab".to_vec(),
            b: Vec::new(),
        }
        .canonical_key();
        let k2 = Body::Edit {
            a: b"a".to_vec(),
            b: b"b".to_vec(),
        }
        .canonical_key();
        assert_ne!(k1, k2);
    }

    #[test]
    fn shape_key_groups_same_shape_only() {
        let e1 = Body::Edit {
            a: b"abc".to_vec(),
            b: b"de".to_vec(),
        };
        let e2 = Body::Edit {
            a: b"xyz".to_vec(),
            b: b"qw".to_vec(),
        };
        let e3 = Body::Edit {
            a: b"x".to_vec(),
            b: b"qw".to_vec(),
        };
        assert_eq!(e1.shape_key(), e2.shape_key());
        assert_ne!(e1.shape_key(), e3.shape_key());
    }

    #[test]
    fn workload_shape_keys_group_batchable_requests_only() {
        let align = |a: &[u8], b: &[u8], gap: i64| Body::Align {
            a: a.to_vec(),
            b: b.to_vec(),
            matched: 2,
            mismatched: -1,
            gap,
        };
        // Same lengths + same scoring ride one batched mesh; a scoring
        // or length change is a different shape.
        assert_eq!(
            align(b"abc", b"de", 1).shape_key(),
            align(b"xyz", b"qw", 1).shape_key()
        );
        assert_ne!(
            align(b"abc", b"de", 1).shape_key(),
            align(b"abc", b"de", 2).shape_key()
        );
        assert_ne!(
            align(b"abc", b"de", 1).shape_key(),
            align(b"ab", b"de", 1).shape_key()
        );
        // Knapsacks batch on capacity alone: item counts may differ.
        let sack = |weights: &[u64], capacity: u64| Body::Knapsack {
            items: weights.iter().map(|&w| KnapsackItem::new(w, w)).collect(),
            capacity,
        };
        assert_eq!(sack(&[1, 2, 3], 9).shape_key(), sack(&[5], 9).shape_key());
        assert_ne!(
            sack(&[1, 2, 3], 9).shape_key(),
            sack(&[1, 2, 3], 8).shape_key()
        );
    }

    #[test]
    fn align_decode_defaults_match_the_served_scheme() {
        let r = decode(&parse(r#"{"id":1,"kind":"align","a":"ab","b":"ab"}"#).unwrap()).unwrap();
        let Request::Compute { body, .. } = r else {
            panic!("compute");
        };
        let Body::Align {
            matched,
            mismatched,
            gap,
            ..
        } = body
        else {
            panic!("align");
        };
        assert_eq!((matched, mismatched, gap), (2, -1, 1));
    }

    #[test]
    fn rejects_malformed_bodies() {
        let lines = [
            r#"{"id":1}"#,
            r#"{"id":1,"kind":"warp"}"#,
            r#"{"id":1,"kind":"edit","a":"x"}"#,
            r#"{"id":1,"kind":"matmul","a":{"rows":2,"cols":2,"data":[1,2,3]},"b":{"rows":2,"cols":2,"data":[1,2,3,4]}}"#,
            r#"{"id":1,"kind":"matmul","a":{"rows":2,"cols":3,"data":[1,2,3,1,2,3]},"b":{"rows":2,"cols":2,"data":[1,2,3,4]}}"#,
            r#"{"id":1,"kind":"chain","dims":[4]}"#,
            r#"{"id":1,"kind":"bst","freq":[]}"#,
            r#"{"id":1,"kind":"multistage","mats":[]}"#,
            r#"{"id":1,"kind":"andor","nodes":[{"op":"and","children":[0],"level":1}]}"#,
            r#"{"id":1,"kind":"andor","nodes":[{"op":"leaf","value":1},{"op":"or","children":[1],"level":1}]}"#,
            r#"{"id":1,"kind":"align","a":"x"}"#,
            r#"{"id":1,"kind":"align","a":"x","b":"y","gap":99999999999}"#,
            r#"{"id":1,"kind":"knapsack","weights":[1,2],"values":[1],"capacity":5}"#,
            r#"{"id":1,"kind":"knapsack","weights":[1],"values":[1],"capacity":200000}"#,
            r#"{"id":1,"kind":"knapsack","weights":[1],"values":[1]}"#,
        ];
        for line in lines {
            let doc = parse(line).unwrap();
            assert!(decode(&doc).is_err(), "{line} should be rejected");
        }
    }

    #[test]
    fn error_responses_are_typed() {
        let r = error_response(7, &SdpError::QueueFull { depth: 64 });
        assert!(r.contains("\"ok\":false"));
        assert!(r.contains("\"kind\":\"queue_full\""));
        assert!(r.contains("\"id\":7"));
    }

    #[test]
    fn decodes_optional_deadline() {
        let r = decode(&parse(r#"{"id":1,"kind":"edit","a":"x","b":"y"}"#).unwrap()).unwrap();
        let Request::Compute { deadline_ms, .. } = r else {
            panic!("compute");
        };
        assert_eq!(deadline_ms, None);
        let r =
            decode(&parse(r#"{"id":1,"kind":"edit","a":"x","b":"y","deadline_ms":250}"#).unwrap())
                .unwrap();
        let Request::Compute { deadline_ms, .. } = r else {
            panic!("compute");
        };
        assert_eq!(deadline_ms, Some(250));
        let bad = parse(r#"{"id":1,"kind":"edit","a":"x","b":"y","deadline_ms":-3}"#).unwrap();
        assert!(decode(&bad).is_err(), "negative deadline must be rejected");
    }

    #[test]
    fn backpressure_errors_carry_retry_hints() {
        let r = error_response(3, &SdpError::Overloaded { retry_after_ms: 40 });
        assert!(r.contains("\"kind\":\"overloaded\""));
        assert!(r.contains("\"retry_after_ms\":40"));
        let r = error_response(4, &SdpError::CircuitOpen { retry_after_ms: 75 });
        assert!(r.contains("\"kind\":\"circuit_open\""));
        assert!(r.contains("\"retry_after_ms\":75"));
        let r = error_response(
            5,
            &SdpError::DeadlineExceeded {
                waited_ms: 9,
                deadline_ms: 5,
            },
        );
        assert!(r.contains("\"kind\":\"deadline_exceeded\""));
        assert!(!r.contains("retry_after_ms"), "no hint on deadline errors");
    }

    #[test]
    fn cached_response_splice_matches_the_rendered_envelope() {
        // The fast path concatenates a pre-rendered payload; it must
        // stay byte-identical to building the envelope through Json,
        // or cached and fresh replies would diverge on the wire.
        for payload in [
            Json::object().with("distance", 3u64),
            Json::object()
                .with("cost", 12u64)
                .with("order", Json::Array(vec![Json::Int(1), Json::Int(2)])),
            Json::object().with("value", -7i64).with("ratio", 0.5f64),
        ] {
            let rendered = payload.render();
            assert_eq!(
                ok_cached_response(42, &rendered),
                ok_response(42, payload, true, 0),
            );
        }
    }

    #[test]
    fn degraded_responses_are_flagged_and_uncached() {
        let r = degraded_response(11, Json::object().with("distance", 3u64));
        assert!(r.contains("\"ok\":true"));
        assert!(r.contains("\"degraded\":true"));
        assert!(r.contains("\"cached\":false"));
        assert!(r.contains("\"id\":11"));
    }
}
