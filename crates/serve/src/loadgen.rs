//! A single-threaded, poll-driven load generator for the serving
//! stack (the `sdp_loadgen` binary).
//!
//! Thousands of concurrent connections, one thread: every client
//! socket is nonblocking and multiplexed over the same
//! [`poll(2)`](crate::evloop) readiness loop the server front-end
//! uses.  Two arrival disciplines:
//!
//! - **Closed loop** ([`Arrival::Closed`]): each connection keeps
//!   `pipeline` requests outstanding and tops one up per reply.
//!   Measures the server's sustainable completion rate — offered load
//!   adapts to service rate, so the queue never grows without bound.
//! - **Open loop** ([`Arrival::Open`]): requests are injected at a
//!   fixed `rate_per_s` regardless of completions (token pacing,
//!   round-robin across connections).  This is the honest saturation
//!   probe: unlike closed-loop, a slow server does not throttle the
//!   arrival stream, so queueing delay and shedding become visible
//!   instead of silently flattening the load.
//!
//! Replies are matched to requests per connection in FIFO order — the
//! server answers each connection's pipelined lines in order, so no id
//! bookkeeping is needed for latency attribution.  Latency is measured
//! from the instant a request is queued for the socket to the instant
//! its reply line is parsed off, into the same log₂ histogram the
//! server's own metrics use.

use crate::evloop::{poll_fds, PollFd, POLLIN, POLLOUT};
use sdp_metrics::{hist, us_to_ms, Histogram, HistogramSnapshot};
use sdp_trace::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Arrival discipline for [`run`].
#[derive(Clone, Copy, Debug)]
pub enum Arrival {
    /// Keep `pipeline` requests outstanding per connection.
    Closed {
        /// Outstanding requests per connection.
        pipeline: usize,
    },
    /// Inject `rate_per_s` requests per second, independent of
    /// completions.
    Open {
        /// Aggregate injection rate across all connections.
        rate_per_s: f64,
    },
}

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// How long to inject load.
    pub duration: Duration,
    /// Arrival discipline.
    pub arrival: Arrival,
    /// After the injection window, how long to wait for outstanding
    /// replies before counting them unanswered.
    pub drain_grace: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            connections: 64,
            duration: Duration::from_secs(1),
            arrival: Arrival::Closed { pipeline: 4 },
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// What a load run observed.
#[derive(Clone, Debug)]
pub struct Report {
    /// Requests written toward the server.
    pub sent: u64,
    /// Reply lines received.
    pub completed: u64,
    /// Replies with `"ok":true`.
    pub ok: u64,
    /// Replies served from the result cache.
    pub cached: u64,
    /// Replies answered by the degraded oracle fallback.
    pub degraded: u64,
    /// Replies with `"ok":false`, by error kind.
    pub error_kinds: BTreeMap<String, u64>,
    /// Requests with no reply by the end of the drain grace.
    pub unanswered: u64,
    /// Injection window wall time (excludes the drain grace).
    pub elapsed: Duration,
    /// Completions per second of wall time (completions landing
    /// during the drain count toward the rate's numerator but the
    /// denominator stays the injection window — the standard
    /// open-loop convention).
    pub req_per_s: f64,
    /// Request latency (queued → reply parsed), µs.
    pub latency: HistogramSnapshot,
}

impl Report {
    /// Total error replies.
    pub fn errors(&self) -> u64 {
        self.error_kinds.values().sum()
    }

    /// The report as a JSON document (the `sdp_loadgen` output and the
    /// saturation experiment's building block).  Wall-clock fields
    /// follow the `*_ms` redaction convention.
    pub fn to_json(&self) -> Json {
        let mut errors = Json::object();
        for (kind, n) in &self.error_kinds {
            errors = errors.with(kind, *n);
        }
        Json::object()
            .with("sent", self.sent)
            .with("completed", self.completed)
            .with("ok", self.ok)
            .with("cached", self.cached)
            .with("degraded", self.degraded)
            .with("errors", self.errors())
            .with("error_kinds", errors)
            .with("unanswered", self.unanswered)
            .with("elapsed_ms", self.elapsed.as_secs_f64() * 1000.0)
            .with("req_per_s", self.req_per_s)
            .with(
                "latency",
                Json::object()
                    .with("samples", self.latency.count)
                    .with(
                        "mean_ms",
                        us_to_ms(self.latency.sum) / (self.latency.count.max(1) as f64),
                    )
                    .with("p50_ms", us_to_ms(self.latency.quantile(0.50)))
                    .with("p99_ms", us_to_ms(self.latency.quantile(0.99)))
                    .with("max_ms", us_to_ms(self.latency.max)),
            )
    }
}

struct LoadConn {
    stream: TcpStream,
    /// Request bytes not yet accepted by the socket.
    outbox: Vec<u8>,
    /// Partial reply line.
    partial: Vec<u8>,
    /// Queue times of requests awaiting replies, FIFO.
    sends: VecDeque<Instant>,
    /// Socket died (error or EOF).
    dead: bool,
}

/// Runs one load session: `gen(seq)` produces the request line
/// (without trailing newline) for the `seq`-th request.  Returns the
/// aggregate [`Report`]; fails only if no connection can be opened.
pub fn run(cfg: &LoadConfig, mut gen: impl FnMut(u64) -> String) -> std::io::Result<Report> {
    let mut conns = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections.max(1) {
        let stream = TcpStream::connect(&cfg.addr)?;
        stream.set_nonblocking(true)?;
        // One-line requests; never Nagle them.
        let _ = stream.set_nodelay(true);
        conns.push(LoadConn {
            stream,
            outbox: Vec::new(),
            partial: Vec::new(),
            sends: VecDeque::new(),
            dead: false,
        });
    }

    let latency = Histogram::new(hist::LATENCY_BUCKETS);
    let mut sent = 0u64;
    let mut completed = 0u64;
    let mut ok = 0u64;
    let mut cached = 0u64;
    let mut degraded = 0u64;
    let mut error_kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut next_conn = 0usize;

    let t0 = Instant::now();
    let inject_until = t0 + cfg.duration;
    let hard_stop = inject_until + cfg.drain_grace;
    loop {
        let now = Instant::now();
        let injecting = now < inject_until;
        // Top up offered load.
        if injecting {
            match cfg.arrival {
                Arrival::Closed { pipeline } => {
                    let pipeline = pipeline.max(1);
                    for conn in conns.iter_mut().filter(|c| !c.dead) {
                        while conn.sends.len() < pipeline {
                            let line = gen(sent);
                            conn.outbox.extend_from_slice(line.as_bytes());
                            conn.outbox.push(b'\n');
                            conn.sends.push_back(Instant::now());
                            sent += 1;
                        }
                    }
                }
                Arrival::Open { rate_per_s } => {
                    // Token pacing: how many requests the clock says
                    // should have been injected by now, minus what has.
                    let due = (now.duration_since(t0).as_secs_f64() * rate_per_s) as u64;
                    let mut budget = due.saturating_sub(sent);
                    let n_conns = conns.len();
                    while budget > 0 {
                        let conn = &mut conns[next_conn % n_conns];
                        next_conn = next_conn.wrapping_add(1);
                        if conn.dead {
                            // All-dead is caught below; skip here.
                            if conns.iter().all(|c| c.dead) {
                                break;
                            }
                            continue;
                        }
                        let line = gen(sent);
                        conn.outbox.extend_from_slice(line.as_bytes());
                        conn.outbox.push(b'\n');
                        conn.sends.push_back(Instant::now());
                        sent += 1;
                        budget -= 1;
                    }
                }
            }
        }

        // Push writes, pull replies.
        for conn in conns.iter_mut().filter(|c| !c.dead) {
            flush_outbox(conn);
        }
        let outstanding: usize = conns.iter().map(|c| c.sends.len()).sum();
        if !injecting && outstanding == 0 {
            break;
        }
        if now >= hard_stop {
            break;
        }

        // Poll every live socket that has something to do.
        let mut fds = Vec::with_capacity(conns.len());
        let mut fd_conns = Vec::with_capacity(conns.len());
        for (i, conn) in conns.iter().enumerate() {
            if conn.dead {
                continue;
            }
            let mut events = 0i16;
            if !conn.sends.is_empty() {
                events |= POLLIN;
            }
            if !conn.outbox.is_empty() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                fd_conns.push(i);
            }
        }
        if fds.is_empty() {
            if conns.iter().all(|c| c.dead) {
                break;
            }
            // Nothing in flight yet (open loop between tokens): sleep
            // to the next token/window edge.
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        // Poll timeout: the open-loop pacer needs the clock back every
        // millisecond even when the server is quiet; closed-loop only
        // needs to notice the end of the window.
        let cap = if injecting {
            match cfg.arrival {
                Arrival::Open { .. } => Duration::from_millis(1),
                Arrival::Closed { .. } => inject_until
                    .saturating_duration_since(now)
                    .min(Duration::from_millis(20)),
            }
        } else {
            hard_stop
                .saturating_duration_since(now)
                .min(Duration::from_millis(20))
        };
        poll_fds(&mut fds, Some(cap));
        for (k, pfd) in fds.iter().enumerate() {
            if !pfd.ready() {
                continue;
            }
            let conn = &mut conns[fd_conns[k]];
            if pfd.revents & POLLOUT != 0 {
                flush_outbox(conn);
            }
            if pfd.revents & !POLLOUT != 0 {
                read_replies(
                    conn,
                    &mut rbuf,
                    &latency,
                    &mut completed,
                    &mut ok,
                    &mut cached,
                    &mut degraded,
                    &mut error_kinds,
                );
            }
        }
    }
    let elapsed = inject_until
        .min(Instant::now())
        .saturating_duration_since(t0);
    let unanswered: u64 = conns.iter().map(|c| c.sends.len() as u64).sum();
    Ok(Report {
        sent,
        completed,
        ok,
        cached,
        degraded,
        error_kinds,
        unanswered,
        elapsed,
        req_per_s: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: latency.snapshot(),
    })
}

fn flush_outbox(conn: &mut LoadConn) {
    while !conn.outbox.is_empty() {
        match (&conn.stream).write(&conn.outbox) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.outbox.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Pulls the `"field":value` scan the classifier needs without a full
/// JSON parse: reply classification must not become the bottleneck of
/// a generator whose entire point is out-pacing the server.
fn classify(line: &[u8]) -> (bool, bool, bool, Option<String>) {
    let text = String::from_utf8_lossy(line);
    let ok = text.contains("\"ok\":true");
    let cached = text.contains("\"cached\":true");
    let degraded = text.contains("\"degraded\":true");
    let kind = if ok {
        None
    } else {
        text.split("\"kind\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .map(str::to_owned)
    };
    (ok, cached, degraded, kind)
}

#[allow(clippy::too_many_arguments)]
fn read_replies(
    conn: &mut LoadConn,
    rbuf: &mut [u8],
    latency: &Histogram,
    completed: &mut u64,
    ok: &mut u64,
    cached: &mut u64,
    degraded: &mut u64,
    error_kinds: &mut BTreeMap<String, u64>,
) {
    loop {
        match (&conn.stream).read(rbuf) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                let mut rest = &rbuf[..n];
                while let Some(pos) = rest.iter().position(|b| *b == b'\n') {
                    let (head, tail) = rest.split_at(pos + 1);
                    rest = tail;
                    conn.partial.extend_from_slice(&head[..head.len() - 1]);
                    let line = std::mem::take(&mut conn.partial);
                    if let Some(queued) = conn.sends.pop_front() {
                        latency.record(queued.elapsed().as_micros() as u64);
                    }
                    *completed += 1;
                    let (is_ok, is_cached, is_degraded, kind) = classify(&line);
                    if is_ok {
                        *ok += 1;
                    }
                    if is_cached {
                        *cached += 1;
                    }
                    if is_degraded {
                        *degraded += 1;
                    }
                    if let Some(kind) = kind {
                        *error_kinds.entry(kind).or_insert(0) += 1;
                    }
                }
                conn.partial.extend_from_slice(rest);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}
