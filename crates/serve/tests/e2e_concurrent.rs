//! The PR acceptance end-to-end: 64+ concurrent requests across four
//! engine classes against a live server, with four properties checked:
//!
//! (a) every served payload is bit-identical to the direct engine call
//!     *and* to the independent oracle's expectation;
//! (b) at least one dispatched batch coalesced more than one request;
//! (c) repeated problems hit the result cache;
//! (d) the three panic paths fixed in this PR (scheduler worker
//!     selection, steal-pool lock poisoning, recompute exhaustion)
//!     surface as typed errors / clean recoveries, not panics.

use sdp_fault::SdpError;
use sdp_oracle::served;
use sdp_serve::client::{self, Client};
use sdp_serve::engine::run_bucket;
use sdp_serve::protocol::Body;
use sdp_serve::{json, Config};
use sdp_systolic::scheduler::{DagScheduler, DagTask};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 4; // 64 total

/// The traffic mix: four classes, two distinct problems per class, so
/// every problem repeats across clients (cache + coalescing pressure).
fn request_line(id: i64, slot: usize) -> String {
    match slot % 8 {
        0 => client::edit_request(id, "kitten", "sitting"),
        1 => client::edit_request(id, "saturn", "urbane"),
        2 => client::chain_request(id, &[10, 20, 50, 1, 30]),
        3 => client::chain_request(id, &[5, 40, 3, 12, 20]),
        4 => client::bst_request(id, &[3, 1, 4, 1, 5]),
        5 => client::bst_request(id, &[2, 7, 1, 8, 2]),
        6 => r#"{"id":ID,"kind":"matmul","a":{"rows":2,"cols":2,"data":[1,5,2,0]},"b":{"rows":2,"cols":2,"data":[3,1,4,1]}}"#
            .replace("ID", &id.to_string()),
        _ => r#"{"id":ID,"kind":"matmul","a":{"rows":2,"cols":2,"data":[0,9,null,2]},"b":{"rows":2,"cols":2,"data":[1,1,6,0]}}"#
            .replace("ID", &id.to_string()),
    }
}

/// The oracle's expected `result` payload for traffic slot `slot`,
/// compared field-by-field where the served object carries extra
/// timing facts (chain `steps`).
fn check_against_oracle(slot: usize, result: &sdp_trace::json::Json) {
    use sdp_semiring::{Cost, Matrix, MinPlus};
    let mk = |vals: &[Option<i64>]| {
        Matrix::from_rows(
            2,
            2,
            vals.iter()
                .map(|v| MinPlus(v.map_or(Cost::INF, Cost::new)))
                .collect(),
        )
    };
    match slot % 8 {
        0 => assert_eq!(
            result.render(),
            served::served_edit(b"kitten", b"sitting").render()
        ),
        1 => assert_eq!(
            result.render(),
            served::served_edit(b"saturn", b"urbane").render()
        ),
        2 => assert_eq!(
            json::get(result, "cost").unwrap().render(),
            served::served_chain_cost(&[10, 20, 50, 1, 30]).render()
        ),
        3 => assert_eq!(
            json::get(result, "cost").unwrap().render(),
            served::served_chain_cost(&[5, 40, 3, 12, 20]).render()
        ),
        4 => assert_eq!(
            result.render(),
            served::served_bst(&[3, 1, 4, 1, 5]).render()
        ),
        5 => assert_eq!(
            result.render(),
            served::served_bst(&[2, 7, 1, 8, 2]).render()
        ),
        6 => assert_eq!(
            result.render(),
            served::served_matmul(
                &mk(&[Some(1), Some(5), Some(2), Some(0)]),
                &mk(&[Some(3), Some(1), Some(4), Some(1)]),
            )
            .render()
        ),
        _ => assert_eq!(
            result.render(),
            served::served_matmul(
                &mk(&[Some(0), Some(9), None, Some(2)]),
                &mk(&[Some(1), Some(1), Some(6), Some(0)]),
            )
            .render()
        ),
    }
}

/// The direct (unserved) engine payload for traffic slot `slot`.
fn direct_payload(slot: usize) -> String {
    let body = match slot % 8 {
        0 => Body::Edit {
            a: b"kitten".to_vec(),
            b: b"sitting".to_vec(),
        },
        1 => Body::Edit {
            a: b"saturn".to_vec(),
            b: b"urbane".to_vec(),
        },
        2 => Body::Chain {
            dims: vec![10, 20, 50, 1, 30],
        },
        3 => Body::Chain {
            dims: vec![5, 40, 3, 12, 20],
        },
        4 => Body::Bst {
            freq: vec![3, 1, 4, 1, 5],
        },
        5 => Body::Bst {
            freq: vec![2, 7, 1, 8, 2],
        },
        n => {
            let line = request_line(0, n);
            let doc = json::parse(&line).unwrap();
            match sdp_serve::protocol::decode(&doc).unwrap() {
                sdp_serve::protocol::Request::Compute { body, .. } => body,
                _ => unreachable!(),
            }
        }
    };
    let class = body.class();
    run_bucket(class, &[body])[0]
        .as_ref()
        .expect("direct engine call succeeds")
        .render()
}

#[test]
fn sixty_four_concurrent_requests_match_oracle_batch_and_cache() {
    let handle = sdp_serve::serve(Config {
        max_delay: Duration::from_millis(15),
        workers: 4,
        ..Config::default()
    })
    .expect("bind");
    let addr = handle.addr();

    // (payload, cached, batch) per traffic slot, collected across all
    // clients for post-hoc agreement checks.
    let seen: Arc<Mutex<Vec<(usize, String, bool, i64)>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    let slot = c * REQUESTS_PER_CLIENT + r;
                    let id = slot as i64 + 1;
                    let resp = client.call_raw(&request_line(id, slot)).expect("call");
                    assert!(resp.ok, "request {id} failed: {:?}", resp.error_message);
                    assert_eq!(resp.id, id);
                    let payload = resp.result.expect("result").render();
                    seen.lock()
                        .unwrap()
                        .push((slot, payload, resp.cached, resp.batch));
                }
                // Second pass: repeat the client's last problem.  The
                // dispatcher inserts into the cache before replying, so
                // a repeat after a received response MUST hit.
                let slot = c * REQUESTS_PER_CLIENT + (REQUESTS_PER_CLIENT - 1);
                let id = 1000 + slot as i64;
                let resp = client.call_raw(&request_line(id, slot)).expect("repeat");
                assert!(
                    resp.ok && resp.cached,
                    "repeat of slot {slot} should be a cache hit"
                );
                seen.lock().unwrap().push((
                    slot,
                    resp.result.expect("result").render(),
                    true,
                    resp.batch,
                ));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), CLIENTS * (REQUESTS_PER_CLIENT + 1));

    // (a) bit-identical to the oracle AND to the direct engine call,
    // for every response — cold, coalesced, or cached alike.
    for (slot, payload, _, _) in seen.iter() {
        let doc = json::parse(payload).unwrap();
        check_against_oracle(*slot, &doc);
        assert_eq!(
            payload,
            &direct_payload(*slot),
            "served payload for slot {slot} diverged from the direct engine call"
        );
    }

    // (b) dynamic batching actually coalesced something.
    assert!(
        handle.max_coalesced() > 1,
        "expected at least one coalesced batch >1, max was {}",
        handle.max_coalesced()
    );

    // (c) repeats hit the cache.
    assert!(
        handle.cache_hits() > 0,
        "expected cache hits on repeated problems"
    );
    assert!(seen.iter().any(|(_, _, cached, _)| *cached));

    // Metrics agree with what the clients saw.
    let mut client = Client::connect(addr).expect("connect");
    let m = client.metrics().expect("metrics");
    let doc = m.result.expect("metrics payload");
    let served_n = json::get(&doc, "served").and_then(json::as_i64).unwrap();
    assert!(served_n >= seen.len() as i64);

    handle.shutdown();
}

/// (d) the three panic paths fixed by this PR's satellites stay typed.
#[test]
fn satellite_panic_paths_are_typed_errors_not_panics() {
    // 1. Scheduler worker selection with zero workers.
    let tasks = vec![DagTask {
        duration: 3,
        deps: vec![],
    }];
    assert_eq!(
        DagScheduler.try_schedule(&tasks, 0).unwrap_err(),
        SdpError::BadParameter {
            name: "workers",
            got: 0,
            min: 1
        }
    );

    // 2. A poisoned shared lock is recovered, not propagated.
    let shared = Arc::new(Mutex::new(7usize));
    {
        let shared = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.lock().unwrap();
            panic!("poison it");
        })
        .join();
    }
    assert!(shared.lock().is_err(), "lock really is poisoned");
    assert_eq!(*sdp_par::lock_recover(&shared), 7);

    // 3. Recompute exhaustion is a typed error carrying the attempt
    //    budget.
    let (result, _stats) = sdp_fault::recover::recompute_on_mismatch(1, |attempt| attempt as u64);
    assert_eq!(
        result.unwrap_err(),
        SdpError::RecoveryExhausted { attempts: 3 }
    );
}
