//! Protocol hardening: every client-triggerable failure is a typed
//! error response on a connection (and server) that keeps working —
//! malformed JSON, unknown kinds, invalid problems, oversized lines,
//! overload, shutdown, and mid-request disconnects.

use sdp_serve::client::{self, Client};
use sdp_serve::Config;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn small_server() -> sdp_serve::ServerHandle {
    sdp_serve::serve(Config {
        max_delay: Duration::from_millis(2),
        workers: 2,
        max_request_bytes: 4096,
        ..Config::default()
    })
    .expect("bind")
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let handle = small_server();
    let mut c = Client::connect(handle.addr()).expect("connect");
    for bad in [
        "{not json",
        "[1,2,3",
        "\"just a string\"",
        r#"{"kind":"edit"}"#,                    // missing operands
        r#"{"id":1,"kind":"warp"}"#,             // unknown kind
        r#"{"id":1,"kind":"chain","dims":[7]}"#, // too few dims
        r#"{"id":1,"kind":"matmul","a":{"rows":2,"cols":2,"data":[1,2,3]},"b":{"rows":2,"cols":2,"data":[1,2,3,4]}}"#,
        r#"{"id":1,"kind":"edit","a":5,"b":"x"}"#,
        r#"{"id":1,"kind":"andor","nodes":[{"op":"leaf","value":1}],"root":9}"#,
    ] {
        let resp = c.call_raw(bad).expect("call");
        assert!(!resp.ok, "{bad} should fail");
        assert_eq!(
            resp.error_kind.as_deref(),
            Some("malformed_request"),
            "{bad}"
        );
    }
    // Deep nesting is rejected by the parser's depth cap.
    let deep = format!(
        r#"{{"id":1,"kind":"edit","a":{}{}"#,
        "[".repeat(80),
        "]".repeat(80)
    );
    let resp = c.call_raw(&deep).expect("call");
    assert!(!resp.ok);

    // The same connection still serves valid work.
    let resp = c
        .call_raw(&client::edit_request(9, "ab", "ba"))
        .expect("call");
    assert!(resp.ok && resp.id == 9);
    handle.shutdown();
}

#[test]
fn engine_rejections_are_typed_not_fatal() {
    let handle = small_server();
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Valid protocol, invalid problem: a multistage string whose inner
    // dimensions do not chain.
    let resp = c
        .call_raw(
            r#"{"id":2,"kind":"multistage","mats":[{"rows":2,"cols":2,"data":[1,2,3,4]},{"rows":3,"cols":3,"data":[1,2,3,4,5,6,7,8,9]}]}"#,
        )
        .expect("call");
    assert!(!resp.ok);
    // The decode layer admits it (shapes are per-matrix valid); the
    // engine rejects it with its own typed error.
    assert_eq!(resp.error_kind.as_deref(), Some("not_square"));

    // i64::MAX is the ∞ sentinel and must be rejected at decode time,
    // not panic inside `Cost::new`.
    let resp = c
        .call_raw(&format!(
            r#"{{"id":3,"kind":"matmul","a":{{"rows":1,"cols":1,"data":[{max}]}},"b":{{"rows":1,"cols":1,"data":[0]}}}}"#,
            max = i64::MAX
        ))
        .expect("call");
    assert!(!resp.ok);
    let resp = c.call_raw(&client::bst_request(4, &[1, 2])).expect("call");
    assert!(resp.ok, "server still healthy after rejections");
    handle.shutdown();
}

#[test]
fn oversized_line_is_rejected_then_the_next_request_parses_cleanly() {
    let handle = small_server();
    let mut c = Client::connect(handle.addr()).expect("connect");
    let huge = format!(
        r#"{{"id":5,"kind":"edit","a":"{}","b":"x"}}"#,
        "a".repeat(100_000)
    );
    let resp = c.call_raw(&huge).expect("call");
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some("payload_too_large"));
    // The oversized line was drained up to its newline; the connection
    // is at a clean boundary.
    let resp = c
        .call_raw(&client::edit_request(6, "abc", "abd"))
        .expect("call");
    assert!(resp.ok && resp.id == 6);
    handle.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_kill_the_server() {
    let handle = small_server();
    let addr = handle.addr();
    {
        // Half a request, then an abrupt close.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(br#"{"id":7,"kind":"edit","a":"kit"#)
            .expect("write");
        s.flush().expect("flush");
    } // dropped without a newline
    {
        // A full request whose client vanishes before reading the
        // response: the dispatcher's send just fails silently.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(br#"{"id":8,"kind":"edit","a":"kitten","b":"sitting"}"#)
            .expect("write");
        s.write_all(b"\n").expect("write");
        s.flush().expect("flush");
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut c = Client::connect(addr).expect("connect after disconnects");
    let resp = c
        .call_raw(&client::edit_request(9, "ok", "ko"))
        .expect("call");
    assert!(resp.ok, "server survived both disconnect shapes");
    handle.shutdown();
}

#[test]
fn zero_capacity_queue_rejects_with_queue_full() {
    let handle = sdp_serve::serve(Config {
        max_queue: 0,
        ..Config::default()
    })
    .expect("bind");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let resp = c
        .call_raw(&client::edit_request(1, "a", "b"))
        .expect("call");
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some("queue_full"));
    handle.shutdown();
}

#[test]
fn shutdown_drains_then_rejects_new_work() {
    let handle = small_server();
    let mut c = Client::connect(handle.addr()).expect("connect");
    let resp = c
        .call_raw(&client::edit_request(1, "abc", "abd"))
        .expect("call");
    assert!(resp.ok);
    let resp = c.shutdown().expect("shutdown request");
    assert!(resp.ok);
    // New compute work on the open connection: a *novel* problem (the
    // cache would still answer repeats) is refused with a typed error.
    let resp = c
        .call_raw(&client::edit_request(2, "novel", "problem"))
        .expect("call");
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some("shutting_down"));
    handle.shutdown();
}
