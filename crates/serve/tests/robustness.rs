//! The serving path's failure model, end to end: per-request
//! deadlines, load shedding with retry hints (and the client retry
//! policy that honors them), and the per-class circuit breaker with
//! its oracle fallback.

use sdp_fault::{ChaosEvent, ChaosPlan, ServeChaos};
use sdp_oracle::served;
use sdp_par::watchdog;
use sdp_serve::client::{self, Client, RetryPolicy};
use sdp_serve::protocol::Class;
use sdp_serve::{breaker, json, Config};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn zero_deadline_expires_typed_while_generous_deadline_succeeds() {
    watchdog("deadline", Duration::from_secs(30), || {
        let handle = sdp_serve::serve(Config {
            cache_capacity: 0,
            ..Config::default()
        })
        .expect("bind");
        let mut c = Client::connect(handle.addr()).expect("connect");

        // deadline_ms: 0 is already expired by the time the dispatcher
        // sees it — typed error, no engine work.
        let line = client::with_deadline(&client::edit_request(1, "expired", "already"), 0);
        let resp = c.call_raw(&line).expect("call");
        assert!(!resp.ok);
        assert_eq!(resp.error_kind.as_deref(), Some("deadline_exceeded"));
        assert_eq!(resp.batch, 0, "expired jobs never ride an engine batch");

        // A generous explicit deadline and the server default both work.
        let line = client::with_deadline(&client::edit_request(2, "kitten", "sitting"), 60_000);
        let resp = c.call_raw(&line).expect("call");
        assert!(resp.ok, "{:?}", resp.error_message);
        let resp = c
            .call_raw(&client::edit_request(3, "kitten", "sitting"))
            .expect("call");
        assert!(resp.ok, "{:?}", resp.error_message);

        handle.shutdown();
    });
}

#[test]
fn shed_requests_carry_retry_hints_and_the_retry_policy_recovers() {
    watchdog("load-shed", Duration::from_secs(30), || {
        // shed_queue 1 with a long coalescing window: the first queued
        // job keeps depth at 1 for ~1 s, so a second request sheds.
        // drain_tick is pinned to the window so the adaptive flush does
        // not release the lone job the moment the arrival stream
        // pauses, and the window is generous because the sibling tests
        // in this binary compete for the same cores.
        let window = Duration::from_millis(1000);
        let handle = sdp_serve::serve(Config {
            shed_queue: 1,
            max_delay: window,
            drain_tick: window,
            cache_capacity: 0,
            ..Config::default()
        })
        .expect("bind");
        let addr = handle.addr();

        let mut pinner = Client::connect(addr).expect("connect");
        pinner
            .send_raw(&client::edit_request(1, "queue", "pinner"))
            .expect("pin the queue");

        let mut shed = Client::connect(addr).expect("connect");
        let line = client::edit_request(2, "shed", "me");
        let resp = shed.call_raw(&line).expect("call");
        assert!(!resp.ok);
        assert_eq!(resp.error_kind.as_deref(), Some("overloaded"));
        let hint = resp.retry_after_ms.expect("overloaded carries a hint");
        assert!(
            hint >= window.as_millis() as i64,
            "retry hint {hint} shorter than the flush window"
        );

        // The jittered-backoff retry outlives the congestion window.
        let policy = RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            seed: 0xC0FFEE,
        };
        let resp = shed.call_with_retry(&line, &policy).expect("retry");
        assert!(resp.ok, "retry never recovered: {:?}", resp.error_kind);

        // The pinned request was answered normally, exactly once.
        let resp = pinner.read_response().expect("pinned response");
        assert!(resp.ok && resp.id == 1);

        handle.shutdown();
    });
}

#[test]
fn breaker_trips_degrades_small_inputs_and_recloses_after_probe() {
    watchdog("breaker", Duration::from_secs(30), || {
        // Chaos panics the first two engine buckets; trip_after 2 means
        // the edit breaker opens right after them.
        let plan = ChaosPlan::new()
            .with(ChaosEvent::EnginePanic { dispatch: 0 })
            .with(ChaosEvent::EnginePanic { dispatch: 1 });
        let cooldown = Duration::from_millis(400);
        let handle = sdp_serve::serve(Config {
            cache_capacity: 0,
            breaker_trip_after: 2,
            breaker_cooldown: cooldown,
            breaker_fallback_max_bytes: 80,
            chaos: Some(Arc::new(ServeChaos::new(&plan))),
            ..Config::default()
        })
        .expect("bind");
        let mut c = Client::connect(handle.addr()).expect("connect");

        // Two chaos-panicked buckets: typed task_panicked, breaker trips.
        for id in 1..=2 {
            let resp = c
                .call_raw(&client::edit_request(id, "boom", "town"))
                .expect("call");
            assert!(!resp.ok);
            assert_eq!(resp.error_kind.as_deref(), Some("task_panicked"));
        }
        assert_eq!(handle.breaker_code(Class::Edit), breaker::STATE_OPEN);

        // Open breaker, small input: degraded oracle answer, flagged,
        // uncached, byte-identical to the reference solver.
        let resp = c
            .call_raw(&client::edit_request(3, "kitten", "sitting"))
            .expect("call");
        assert!(resp.ok, "{:?}", resp.error_message);
        assert!(resp.degraded && !resp.cached);
        assert_eq!(
            resp.result.expect("payload").render(),
            served::served_edit(b"kitten", b"sitting").render()
        );

        // Open breaker, large input: fast typed rejection with the
        // remaining cooldown as the retry hint.
        let big = "x".repeat(120);
        let resp = c
            .call_raw(&client::edit_request(4, &big, &big))
            .expect("call");
        assert!(!resp.ok);
        assert_eq!(resp.error_kind.as_deref(), Some("circuit_open"));
        assert!(resp.retry_after_ms.unwrap_or(0) >= 1);

        // After the cooldown the half-open probe reaches the (now
        // chaos-free) engine and the breaker recloses.
        std::thread::sleep(cooldown + Duration::from_millis(100));
        let resp = c
            .call_raw(&client::edit_request(5, "probe", "prove"))
            .expect("call");
        assert!(resp.ok && !resp.degraded, "{:?}", resp.error_kind);
        assert_eq!(handle.breaker_code(Class::Edit), breaker::STATE_CLOSED);

        // Closed again: responses come from the engine, not the oracle.
        let resp = c
            .call_raw(&client::edit_request(6, "back", "form"))
            .expect("call");
        assert!(resp.ok && !resp.degraded);

        // The whole episode landed in the metrics registry.
        let m = c.metrics().expect("metrics");
        let doc = m.result.expect("payload");
        let degraded = json::get(&doc, "degraded").and_then(json::as_i64).unwrap();
        assert!(degraded >= 1, "degraded counter missing the fallback");

        handle.shutdown();
    });
}
