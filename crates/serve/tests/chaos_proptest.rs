//! Property: under ANY chaos seed and ANY concurrent request mix,
//! every request the server accepts yields exactly one reply or one
//! typed error — no duplicates, no silent losses — and the server
//! drains cleanly afterwards.
//!
//! Client-side accounting rules (the TCP subtleties matter):
//! - a write failure means the request never reached the server; it is
//!   retried on a fresh connection, not counted;
//! - a read failure after a successful write is a lost reply — legal
//!   only when connection-drop chaos was actually injected, and one
//!   injected drop can cost at most two observations (the in-flight
//!   reply plus one racing write that buffered into a dying socket).

use proptest::proptest;
use sdp_fault::{ChaosDomain, ChaosPlan, ChaosRates, ServeChaos};
use sdp_oracle::served;
use sdp_par::watchdog;
use sdp_serve::client::{self, Client};
use sdp_serve::{json, Config};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Chaos-injected engine panics print no backtrace noise: the hook
/// swallows payloads carrying the "chaos" marker and defers everything
/// else to the default hook.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.contains("chaos") {
                return;
            }
            prev(info);
        }));
    });
}

/// The fixed traffic palette: small problems with known oracle answers
/// across three request classes (cache is off, so every ok response
/// crossed an engine or the degraded fallback — either way the payload
/// must match).
const PAIRS: [(&str, &str); 4] = [
    ("kitten", "sitting"),
    ("saturn", "urbane"),
    ("flaw", "lawn"),
    ("gumbo", "gambol"),
];

/// Request line and expected oracle payload for palette slot `slot`.
fn palette(id: i64, slot: usize) -> (String, String) {
    match slot % 6 {
        s @ 0..=3 => {
            let (a, b) = PAIRS[s];
            (
                client::edit_request(id, a, b),
                served::served_edit(a.as_bytes(), b.as_bytes()).render(),
            )
        }
        4 => (
            client::align_request(id, "acacacta", "agcacaca", None),
            served::served_align(b"acacacta", b"agcacaca", 2, -1, 1).render(),
        ),
        _ => (
            client::knapsack_request(id, &[1, 3, 4, 5], &[1, 4, 5, 7], 7),
            served::served_knapsack(&[(1, 1), (3, 4), (4, 5), (5, 7)], 7).render(),
        ),
    }
}

struct ClientTally {
    ok: u64,
    typed: u64,
    lost: u64,
}

fn run_client(addr: std::net::SocketAddr, client_idx: usize, reqs: usize) -> ClientTally {
    let mut tally = ClientTally {
        ok: 0,
        typed: 0,
        lost: 0,
    };
    let mut conn = Client::connect(addr).expect("connect");
    for r in 0..reqs {
        let id = (client_idx * reqs + r) as i64 + 1;
        let (line, expect) = palette(id, client_idx + r);
        // Bounded write retries: a failed write never reached the
        // server, so resending cannot double-submit.
        let mut outcome = None;
        for _ in 0..4 {
            match conn.send_raw(&line) {
                Ok(()) => {}
                Err(_) => {
                    conn = Client::connect(addr).expect("reconnect");
                    continue;
                }
            }
            match conn.read_response() {
                Ok(resp) => {
                    outcome = Some(Some(resp));
                    break;
                }
                Err(_) => {
                    // Reply lost to a connection drop (or a write that
                    // buffered into a dying socket).
                    outcome = Some(None);
                    conn = Client::connect(addr).expect("reconnect");
                    break;
                }
            }
        }
        match outcome.expect("write retries exhausted without reaching the server") {
            Some(resp) => {
                assert_eq!(resp.id, id, "response correlation broke");
                if resp.ok {
                    assert_eq!(
                        resp.result.expect("payload").render(),
                        expect,
                        "ok response diverged from the oracle (degraded={})",
                        resp.degraded
                    );
                    tally.ok += 1;
                } else {
                    assert!(resp.error_kind.is_some(), "untyped error: {}", resp.raw);
                    tally.typed += 1;
                }
            }
            None => tally.lost += 1,
        }
    }
    // Duplicate sentinel: any stray extra reply in the stream would
    // surface as an id mismatch here.
    if let Ok(resp) = conn.call_raw(&client::metrics_request(900_000 + client_idx as i64)) {
        assert_eq!(
            resp.id,
            900_000 + client_idx as i64,
            "stray duplicate reply"
        );
    }
    tally
}

fn run_case(seed: u64, clients: usize, reqs: usize) {
    quiet_chaos_panics();
    let total = (clients * reqs) as u64;
    let plan = ChaosPlan::random(
        seed,
        ChaosRates {
            engine_panics: 2,
            engine_stalls: 2,
            torn_writes: 3,
            connection_drops: 2,
        },
        ChaosDomain {
            dispatches: total,
            replies: total,
            max_stall_ms: 20,
        },
    );
    let chaos = Arc::new(ServeChaos::new(&plan));
    let handle = sdp_serve::serve(Config {
        max_delay: Duration::from_millis(2),
        cache_capacity: 0,
        breaker_trip_after: 2,
        breaker_cooldown: Duration::from_millis(50),
        breaker_fallback_max_bytes: 64,
        chaos: Some(Arc::clone(&chaos)),
        ..Config::default()
    })
    .expect("bind");
    let addr = handle.addr();

    let tallies: Arc<Mutex<Vec<ClientTally>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let tallies = Arc::clone(&tallies);
            std::thread::spawn(move || {
                let t = run_client(addr, c, reqs);
                tallies.lock().unwrap().push(t);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let tallies = tallies.lock().unwrap();
    let (ok, typed, lost) = tallies.iter().fold((0, 0, 0), |(o, t, l), x| {
        (o + x.ok, t + x.typed, l + x.lost)
    });
    // Exactly one outcome per request.
    assert_eq!(
        ok + typed + lost,
        total,
        "outcome accounting broke (ok={ok} typed={typed} lost={lost})"
    );
    // Losses are explained by injected drops and nothing else: each
    // injected drop loses the in-flight reply (≥1) and can additionally
    // eat one racing write that buffered into the dying socket (≤2).
    let drops = chaos.drops_injected();
    assert!(
        lost >= drops,
        "{drops} drops injected but only {lost} replies lost"
    );
    assert!(
        lost <= 2 * drops,
        "lost {lost} replies but only {drops} drops injected"
    );

    // The server is still fully functional and drains cleanly.
    let mut c = Client::connect(addr).expect("post-chaos connect");
    let m = c.metrics().expect("metrics");
    let doc = m.result.expect("payload");
    assert_eq!(
        json::get(&doc, "queue_depth").and_then(json::as_i64),
        Some(0),
        "queue did not drain"
    );
    drop(c);
    handle.shutdown();
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(12))]
    #[test]
    fn every_accepted_request_has_exactly_one_outcome(
        seed in 0u64..(1u64 << 48),
        clients in 1usize..=3,
        reqs in 2usize..=6,
    ) {
        watchdog("chaos-case", Duration::from_secs(60), move || {
            run_case(seed, clients, reqs);
        });
    }
}
