//! Regression for the old accept-loop shutdown hack: `begin_shutdown`
//! used to dial a loopback connection at itself purely to unblock the
//! blocking `accept()`, which raced the flag check (a real client
//! winning the race could swallow the wake-up) and depended on being
//! able to open one more socket mid-shutdown.  The acceptor now polls
//! a nonblocking listener, so shutdown is just a flag store.
//!
//! This test hammers the lifecycle: 100 start→shutdown cycles (some
//! with live traffic) must neither hang nor leak server threads.

use sdp_par::watchdog;
use sdp_serve::client::{self, Client};
use sdp_serve::Config;
use std::time::Duration;

/// Thread count of this process from `/proc/self/status` (Linux only;
/// `None` elsewhere skips the leak assertion, not the hang check).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn hundred_start_shutdown_cycles_without_hang_or_thread_leak() {
    let baseline = thread_count();
    // The watchdog turns a wedged accept loop into a failure instead of
    // a test suite that never finishes.
    watchdog("shutdown-stress", Duration::from_secs(120), || {
        for cycle in 0..100u32 {
            let handle = sdp_serve::serve(Config::default()).expect("bind");
            // Every tenth cycle, run real traffic through the server so
            // connection threads participate in the teardown too.
            if cycle % 10 == 0 {
                let mut c = Client::connect(handle.addr()).expect("connect");
                let resp = c
                    .call_raw(&client::edit_request(1, "tear", "down"))
                    .expect("call");
                assert!(resp.ok, "cycle {cycle}: {:?}", resp.error_message);
                // Close the client before the drain so its connection
                // thread sees EOF promptly.
                drop(c);
            }
            handle.shutdown();
        }
    });
    // Server threads (acceptor + dispatcher + pool + connections) must
    // all be gone.  Detached connection threads need a beat to observe
    // EOF, so poll with slack before judging.
    if let Some(base) = baseline {
        let budget = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let now = thread_count().expect("/proc stays readable");
            // +2 slack: the test harness itself may keep helpers around.
            if now <= base + 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < budget,
                "thread leak after 100 cycles: baseline {base}, now {now}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
