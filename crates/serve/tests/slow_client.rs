//! Slow-loris protection end-to-end: a client that sends half a
//! request line (or nothing at all) and stalls must not block other
//! clients, must be reaped after the idle timeout, and the connection
//! gauge must return to baseline.  Plus the client-side dual: a server
//! that accepts but never answers surfaces as a typed read timeout.

use sdp_par::watchdog;
use sdp_serve::client::{self, Client};
use sdp_serve::Config;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Polls `cond` until true or `timeout`; false on expiry.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

#[test]
fn half_written_lines_are_reaped_and_do_not_block_other_clients() {
    watchdog("slow-client", Duration::from_secs(60), || {
        let handle = sdp_serve::serve(Config {
            idle_timeout: Duration::from_millis(300),
            ..Config::default()
        })
        .expect("bind");
        let addr = handle.addr();

        // Two pathological connections: one totally silent, one that
        // sends half an NDJSON line and stalls mid-request.
        let silent = TcpStream::connect(addr).expect("silent connect");
        let mut torn = TcpStream::connect(addr).expect("torn connect");
        torn.write_all(br#"{"id":7,"kind":"edit","a":"kit"#)
            .expect("half line");
        torn.flush().expect("flush");

        // A well-behaved client keeps getting answers while the two
        // stalled connections sit there.
        let mut c = Client::connect(addr).expect("connect");
        for i in 0..5 {
            let resp = c
                .call_raw(&client::edit_request(i, "abcde", "abxde"))
                .expect("healthy client call");
            assert!(resp.ok, "healthy request {i}: {:?}", resp.error_message);
        }

        // Both stalled connections get reaped once their idle window
        // passes — never the healthy one.
        assert!(
            eventually(Duration::from_secs(10), || handle.reaped_count() >= 2),
            "stalled connections were not reaped (reaped={})",
            handle.reaped_count()
        );
        assert_eq!(handle.reaped_count(), 2, "healthy connection reaped too");

        // The healthy client still works after the reaping.
        let resp = c
            .call_raw(&client::edit_request(99, "still", "alive"))
            .expect("post-reap call");
        assert!(resp.ok);

        // Gauge: only the healthy connection remains, and closing it
        // returns the count to zero.
        assert!(
            eventually(Duration::from_secs(5), || handle.active_connections() == 1),
            "connection gauge stuck at {}",
            handle.active_connections()
        );
        drop(c);
        assert!(
            eventually(Duration::from_secs(5), || handle.active_connections() == 0),
            "connection gauge did not return to baseline: {}",
            handle.active_connections()
        );

        drop(silent);
        drop(torn);
        handle.shutdown();
    });
}

#[test]
fn client_read_timeout_turns_a_dead_server_into_a_typed_error() {
    // A "server" that accepts the connection and then says nothing.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
    let acceptor = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        // Keep the socket open (no reply, no EOF) until the test ends.
        let _ = hold_rx.recv();
        drop(stream);
    });

    let mut c = Client::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_millis(200)))
        .expect("set timeout");
    c.send_raw(&client::metrics_request(1)).expect("send");
    let err = c.read_response().expect_err("must not block forever");
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::TimedOut,
        "expected a typed timeout, got {err:?}"
    );

    hold_tx.send(()).ok();
    acceptor.join().expect("acceptor thread");
}
