//! End-to-end serving of the PR 9 workload classes — `align` and
//! `knapsack` — with the four serving-path properties checked:
//!
//! (a) every served payload is bit-identical to the direct engine call
//!     *and* to the independent oracle's expectation;
//! (b) at least one dispatched batch coalesced more than one request;
//! (c) repeated problems hit the result cache;
//! (d) the size-based crossover routes sim/direct with identical
//!     payloads, and an open breaker degrades to the oracle's bytes.

use sdp_fault::{ChaosEvent, ChaosPlan, ServeChaos};
use sdp_oracle::served;
use sdp_par::watchdog;
use sdp_serve::client::{self, Client};
use sdp_serve::engine::run_bucket;
use sdp_serve::protocol::Class;
use sdp_serve::{breaker, json, Config};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 4; // 32 total

const WEIGHTS_A: [u64; 4] = [1, 3, 4, 5];
const VALUES_A: [u64; 4] = [1, 4, 5, 7];
const WEIGHTS_B: [u64; 3] = [2, 2, 6];
const VALUES_B: [u64; 3] = [3, 5, 9];

/// The traffic mix: both workload classes, two distinct problems per
/// class, so every problem repeats across clients (cache + coalescing
/// pressure).  The two align problems share lengths and scoring, so
/// they can ride one batched mesh.
fn request_line(id: i64, slot: usize) -> String {
    match slot % 4 {
        0 => client::align_request(id, "acacacta", "agcacaca", None),
        1 => client::align_request(id, "gattacaa", "gcatgcta", None),
        2 => client::knapsack_request(id, &WEIGHTS_A, &VALUES_A, 7),
        _ => client::knapsack_request(id, &WEIGHTS_B, &VALUES_B, 7),
    }
}

/// The oracle's expected `result` payload for traffic slot `slot`.
fn oracle_payload(slot: usize) -> String {
    let items = |w: &[u64], v: &[u64]| -> Vec<(u64, u64)> {
        w.iter().copied().zip(v.iter().copied()).collect()
    };
    match slot % 4 {
        0 => served::served_align(b"acacacta", b"agcacaca", 2, -1, 1).render(),
        1 => served::served_align(b"gattacaa", b"gcatgcta", 2, -1, 1).render(),
        2 => served::served_knapsack(&items(&WEIGHTS_A, &VALUES_A), 7).render(),
        _ => served::served_knapsack(&items(&WEIGHTS_B, &VALUES_B), 7).render(),
    }
}

/// The unserved engine payload for traffic slot `slot`, via a direct
/// single-body bucket.
fn engine_payload(slot: usize) -> String {
    let line = request_line(0, slot);
    let doc = json::parse(&line).unwrap();
    let sdp_serve::protocol::Request::Compute { body, .. } =
        sdp_serve::protocol::decode(&doc).unwrap()
    else {
        unreachable!("compute line");
    };
    let class = body.class();
    run_bucket(class, &[body])[0]
        .as_ref()
        .expect("engine call succeeds")
        .render()
}

#[test]
fn concurrent_workload_requests_match_oracle_batch_and_cache() {
    let handle = sdp_serve::serve(Config {
        max_delay: Duration::from_millis(15),
        workers: 4,
        ..Config::default()
    })
    .expect("bind");
    let addr = handle.addr();

    let seen: Arc<Mutex<Vec<(usize, String, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    let slot = c * REQUESTS_PER_CLIENT + r;
                    let id = slot as i64 + 1;
                    let resp = client.call_raw(&request_line(id, slot)).expect("call");
                    assert!(resp.ok, "request {id} failed: {:?}", resp.error_message);
                    assert_eq!(resp.id, id);
                    let payload = resp.result.expect("result").render();
                    seen.lock().unwrap().push((slot, payload, resp.cached));
                }
                // Repeat the client's last problem: the dispatcher
                // inserts into the cache before replying, so this hits.
                let slot = c * REQUESTS_PER_CLIENT + (REQUESTS_PER_CLIENT - 1);
                let resp = client
                    .call_raw(&request_line(1000 + slot as i64, slot))
                    .expect("repeat");
                assert!(
                    resp.ok && resp.cached,
                    "repeat of slot {slot} should be a cache hit"
                );
                seen.lock()
                    .unwrap()
                    .push((slot, resp.result.expect("result").render(), true));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), CLIENTS * (REQUESTS_PER_CLIENT + 1));

    // (a) bit-identical to the oracle AND to the engine, for every
    // response — cold, coalesced, or cached alike.
    for (slot, payload, _) in seen.iter() {
        assert_eq!(payload, &oracle_payload(*slot), "slot {slot} vs oracle");
        assert_eq!(payload, &engine_payload(*slot), "slot {slot} vs engine");
    }

    // (b) dynamic batching coalesced something.
    assert!(
        handle.max_coalesced() > 1,
        "expected a coalesced batch >1, max was {}",
        handle.max_coalesced()
    );

    // (c) repeats hit the cache.
    assert!(handle.cache_hits() > 0, "expected cache hits on repeats");
    assert!(seen.iter().any(|(_, _, cached)| *cached));

    handle.shutdown();
}

#[test]
fn workload_crossover_routes_by_size_with_identical_payloads() {
    // Threshold 100: 8×8 align (work 64) and 4-item/C=7 knapsack
    // (work 32) stay on the sim; a 20×20 align and a C=499 knapsack
    // cross to the direct backends.
    let boot = |threshold: u64| {
        sdp_serve::serve(Config {
            direct_threshold: threshold,
            max_delay: Duration::from_millis(1),
            workers: 2,
            cache_capacity: 0,
            ..Config::default()
        })
        .expect("bind")
    };
    let handle = boot(100);
    let mut c = Client::connect(handle.addr()).expect("connect");

    let small_lines = [
        client::align_request(1, "acacacta", "agcacaca", None),
        client::knapsack_request(2, &WEIGHTS_A, &VALUES_A, 7),
    ];
    for line in &small_lines {
        let resp = c.call_raw(line).expect("small call");
        assert!(resp.ok, "{:?}", resp.error_message);
        assert_eq!(resp.engine.as_deref(), Some("sim"), "{line}");
    }

    let a = "abcdabcdabcdabcdabcd";
    let b = "abddabcdabedabcdabcf";
    let big_lines = [
        client::align_request(3, a, b, Some((3, -2, 2))),
        client::knapsack_request(4, &WEIGHTS_B, &VALUES_B, 499),
    ];
    let mut direct_payloads = Vec::new();
    for line in &big_lines {
        let resp = c.call_raw(line).expect("big call");
        assert!(resp.ok, "{:?}", resp.error_message);
        assert_eq!(resp.engine.as_deref(), Some("direct"), "{line}");
        direct_payloads.push(resp.result.expect("payload").render());
    }
    handle.shutdown();

    // The same big requests on a sim-pinned server yield byte-identical
    // payloads — only the engine tag differs.
    let handle = boot(u64::MAX);
    let mut c = Client::connect(handle.addr()).expect("connect");
    for (line, direct) in big_lines.iter().zip(&direct_payloads) {
        let resp = c.call_raw(line).expect("sim call");
        assert!(resp.ok, "{:?}", resp.error_message);
        assert_eq!(resp.engine.as_deref(), Some("sim"), "{line}");
        assert_eq!(
            &resp.result.expect("payload").render(),
            direct,
            "dispatch must be invisible in the payload"
        );
    }
    handle.shutdown();
}

#[test]
fn open_breakers_degrade_workloads_to_oracle_bytes() {
    watchdog("workload breaker", Duration::from_secs(30), || {
        // Chaos panics the first four engine buckets: two align
        // dispatches trip the align breaker, two knapsack dispatches
        // trip the knapsack breaker (trip_after 2, per class).
        let plan = ChaosPlan::new()
            .with(ChaosEvent::EnginePanic { dispatch: 0 })
            .with(ChaosEvent::EnginePanic { dispatch: 1 })
            .with(ChaosEvent::EnginePanic { dispatch: 2 })
            .with(ChaosEvent::EnginePanic { dispatch: 3 });
        let handle = sdp_serve::serve(Config {
            cache_capacity: 0,
            breaker_trip_after: 2,
            breaker_cooldown: Duration::from_secs(30),
            breaker_fallback_max_bytes: 256,
            chaos: Some(Arc::new(ServeChaos::new(&plan))),
            ..Config::default()
        })
        .expect("bind");
        let mut c = Client::connect(handle.addr()).expect("connect");

        for id in 1..=2 {
            let resp = c
                .call_raw(&client::align_request(id, "boom", "town", None))
                .expect("call");
            assert!(!resp.ok);
            assert_eq!(resp.error_kind.as_deref(), Some("task_panicked"));
        }
        assert_eq!(handle.breaker_code(Class::Align), breaker::STATE_OPEN);
        for id in 3..=4 {
            let resp = c
                .call_raw(&client::knapsack_request(id, &[1], &[1], 3))
                .expect("call");
            assert!(!resp.ok);
            assert_eq!(resp.error_kind.as_deref(), Some("task_panicked"));
        }
        assert_eq!(handle.breaker_code(Class::Knapsack), breaker::STATE_OPEN);

        // Open breakers, small inputs: degraded oracle answers, flagged
        // and uncached, byte-identical to the reference solvers.
        let resp = c
            .call_raw(&client::align_request(5, "acacacta", "agcacaca", None))
            .expect("call");
        assert!(resp.ok, "{:?}", resp.error_message);
        assert!(resp.degraded && !resp.cached);
        assert_eq!(
            resp.result.expect("payload").render(),
            served::served_align(b"acacacta", b"agcacaca", 2, -1, 1).render()
        );

        let resp = c
            .call_raw(&client::knapsack_request(6, &WEIGHTS_A, &VALUES_A, 7))
            .expect("call");
        assert!(resp.ok, "{:?}", resp.error_message);
        assert!(resp.degraded && !resp.cached);
        let items: Vec<(u64, u64)> = WEIGHTS_A.into_iter().zip(VALUES_A).collect();
        assert_eq!(
            resp.result.expect("payload").render(),
            served::served_knapsack(&items, 7).render()
        );

        // The degraded episodes landed in the metrics registry.
        let m = c.metrics().expect("metrics");
        let doc = m.result.expect("payload");
        let degraded = json::get(&doc, "degraded").and_then(json::as_i64).unwrap();
        assert!(degraded >= 2, "degraded counter missing the fallbacks");

        handle.shutdown();
    });
}
