//! End-to-end smoke of the poll-driven load generator against a live
//! server: a short closed-loop burst must come back fully answered and
//! all-ok, and the admission stream it creates must actually coalesce
//! into multi-request batches.  CI runs this as the cheap stand-in for
//! the full E24 saturation experiment.

use sdp_par::watchdog;
use sdp_serve::client::{self, Client};
use sdp_serve::json;
use sdp_serve::loadgen::{run, Arrival, LoadConfig};
use sdp_serve::Config;
use std::time::Duration;

/// Distinct same-shape edit-distance lines: every request is a cache
/// miss (capacity is 0 anyway) but all land in one coalescing bucket.
fn edit_line(seq: u64) -> String {
    let mut a = String::new();
    let mut b = String::new();
    let mut x = seq.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for _ in 0..8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        a.push(char::from(b'a' + (x % 26) as u8));
        b.push(char::from(b'a' + ((x >> 8) % 26) as u8));
    }
    format!("{{\"id\":{seq},\"kind\":\"edit\",\"a\":\"{a}\",\"b\":\"{b}\"}}")
}

#[test]
fn a_closed_loop_burst_completes_cleanly_and_coalesces() {
    watchdog("loadgen-smoke", Duration::from_secs(60), || {
        let handle = sdp_serve::serve(Config {
            cache_capacity: 0,
            max_delay: Duration::from_millis(2),
            workers: 2,
            ..Config::default()
        })
        .expect("bind");

        let cfg = LoadConfig {
            addr: handle.addr().to_string(),
            connections: 32,
            duration: Duration::from_millis(400),
            arrival: Arrival::Closed { pipeline: 2 },
            drain_grace: Duration::from_secs(20),
        };
        let report = run(&cfg, edit_line).expect("load run");

        assert!(report.sent > 0, "generator never injected");
        assert_eq!(
            report.completed, report.sent,
            "lost replies (sent {} completed {})",
            report.sent, report.completed
        );
        assert_eq!(report.unanswered, 0);
        assert_eq!(
            report.errors(),
            0,
            "error replies: {:?}",
            report.error_kinds
        );
        assert_eq!(
            report.ok, report.completed,
            "non-ok replies slipped through"
        );
        assert_eq!(report.latency.count, report.completed);

        // 64 outstanding same-shape requests against a 2 ms window must
        // ride coalesced batches: the server's batch-size histogram has
        // to show mass above size 2.
        let mut c = Client::connect(handle.addr()).expect("connect");
        let m = c.metrics().expect("metrics");
        let doc = m.result.expect("payload");
        let hist = json::get(&doc, "batch_size_histogram").expect("histogram");
        let above_two: i64 = ["3_4", "5_8", "9_16", "gt_16"]
            .iter()
            .map(|b| json::get(hist, b).and_then(json::as_i64).unwrap_or(0))
            .sum();
        assert!(
            above_two >= 1,
            "no coalescing observed: histogram {}",
            hist.render()
        );

        handle.shutdown();
    });
}

#[test]
fn an_open_loop_run_paces_arrivals_and_reports_the_rate() {
    watchdog("loadgen-open", Duration::from_secs(60), || {
        let handle = sdp_serve::serve(Config {
            max_delay: Duration::from_millis(2),
            workers: 2,
            ..Config::default()
        })
        .expect("bind");

        // A deliberately modest rate the server trivially sustains:
        // the pacer, not the server, should set the sent count.
        let cfg = LoadConfig {
            addr: handle.addr().to_string(),
            connections: 8,
            duration: Duration::from_millis(500),
            arrival: Arrival::Open { rate_per_s: 400.0 },
            drain_grace: Duration::from_secs(20),
        };
        // One repeated problem: after the first miss this measures the
        // cached hot path, so most replies must carry `cached:true`.
        let line = client::edit_request(1, "kitten", "sitting");
        let report = run(&cfg, |_| line.clone()).expect("load run");

        assert_eq!(report.completed, report.sent);
        assert_eq!(report.unanswered, 0);
        assert_eq!(
            report.errors(),
            0,
            "error replies: {:?}",
            report.error_kinds
        );
        // Token pacing: ~rate × window requests, with generous slack
        // for a contended box (the pacer can only undershoot).
        let target = 400.0 * 0.5;
        assert!(
            (report.sent as f64) <= target * 1.1 + 8.0,
            "pacer overshot: sent {}",
            report.sent
        );
        assert!(
            (report.sent as f64) >= target * 0.3,
            "pacer starved: sent {}",
            report.sent
        );
        assert!(report.cached >= report.completed / 2, "cache never warmed");

        handle.shutdown();
    });
}
