//! End-to-end auto-dispatch: requests below the crossover threshold run
//! on the cycle-accurate simulator, requests at or beyond it on the
//! `sdp-backend` direct solvers, the choice is visible in the response
//! `engine` tag and the per-class metrics — and the payload bytes are
//! identical on both paths.

use sdp_serve::client::{self, Client};
use sdp_serve::{json, Config};
use std::time::Duration;

fn boot(direct_threshold: u64) -> sdp_serve::ServerHandle {
    sdp_serve::serve(Config {
        direct_threshold,
        max_delay: Duration::from_millis(1),
        workers: 2,
        cache_capacity: 0, // every call is a fresh dispatch
        ..Config::default()
    })
    .expect("bind")
}

fn engine_count(c: &mut Client, class: &str, engine: &str) -> i64 {
    let snap = c.metrics().expect("metrics").result.expect("payload");
    let classes = json::get(&snap, "classes").expect("classes");
    let cls = json::get(classes, class).expect("class entry");
    let engines = json::get(cls, "engine").expect("engine split");
    json::get(engines, engine)
        .and_then(json::as_i64)
        .expect("count")
}

#[test]
fn threshold_routes_between_sim_and_direct_with_identical_payloads() {
    // Threshold 100: "ab"x"cd" (work 4) stays on the sim,
    // 20x20 edit (work 400) crosses to the direct backend.
    let handle = boot(100);
    let mut c = Client::connect(handle.addr()).expect("connect");

    let small = c
        .call_raw(&client::edit_request(1, "ab", "cd"))
        .expect("small call");
    assert!(small.ok);
    assert_eq!(small.engine.as_deref(), Some("sim"));

    let a = "abcdabcdabcdabcdabcd";
    let b = "abddabcdabedabcdabcf";
    let big = c
        .call_raw(&client::edit_request(2, a, b))
        .expect("big call");
    assert!(big.ok);
    assert_eq!(big.engine.as_deref(), Some("direct"));

    assert_eq!(engine_count(&mut c, "edit", "sim"), 1);
    assert_eq!(engine_count(&mut c, "edit", "direct"), 1);
    handle.shutdown();

    // The same big request on a sim-pinned server yields byte-identical
    // result payloads — only the engine tag differs.
    let handle = boot(u64::MAX);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let sim_big = c
        .call_raw(&client::edit_request(2, a, b))
        .expect("sim call");
    assert!(sim_big.ok);
    assert_eq!(sim_big.engine.as_deref(), Some("sim"));
    assert_eq!(
        sim_big.result.expect("sim payload").render(),
        big.result.expect("direct payload").render(),
        "dispatch must be invisible in the payload"
    );
    handle.shutdown();
}

#[test]
fn every_class_dispatches_direct_above_threshold() {
    // Threshold 1 sends everything with nonzero work to the direct
    // backend; the tag and the per-class counters must agree.
    let handle = boot(1);
    let mut c = Client::connect(handle.addr()).expect("connect");
    use sdp_semiring::{Matrix, MinPlus};
    let m = Matrix::<MinPlus>::from_rows(
        2,
        2,
        vec![1i64, 5, 2, 0].into_iter().map(MinPlus::from).collect(),
    );
    let lines = [
        (
            "multistage1",
            client::multistage_request(1, 1, &[m.clone(), m.clone()]),
        ),
        (
            "multistage2",
            client::multistage_request(2, 2, &[m.clone(), m.clone()]),
        ),
        ("matmul", client::matmul_request(3, &m, &m)),
        ("edit", client::edit_request(4, "kitten", "sitting")),
        ("chain", client::chain_request(5, &[10, 20, 50, 1])),
        ("bst", client::bst_request(6, &[3, 1, 4, 1, 5])),
        (
            "align",
            client::align_request(7, "acacacta", "agcacaca", None),
        ),
        (
            "knapsack",
            client::knapsack_request(8, &[1, 3, 4, 5], &[1, 4, 5, 7], 7),
        ),
    ];
    for (class, line) in &lines {
        let resp = c.call_raw(line).expect("call");
        assert!(resp.ok, "[{class}] {:?}", resp.error_message);
        assert_eq!(resp.engine.as_deref(), Some("direct"), "[{class}]");
        assert_eq!(engine_count(&mut c, class, "direct"), 1, "[{class}]");
        assert_eq!(engine_count(&mut c, class, "sim"), 0, "[{class}]");
    }
    handle.shutdown();
}
