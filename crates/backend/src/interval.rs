//! Direct interval DP (matrix chain, optimal BST) mirroring the
//! AND/OR reference recurrences and the chain array's schedule length.
//!
//! The reference solvers in `sdp-andor` walk nested `Vec<Vec<Cost>>`
//! tables whose inner split loop reads `cost[k+1][j]` — a strided
//! column walk that misses cache on every step once the table outgrows
//! L2.  The direct solvers sweep the same diagonals over flat row-major
//! tables and keep a *transposed mirror* of the cost table, so both
//! terms of the split scan (`cost[i][k]` and `costᵀ[j][k+1]`) are
//! contiguous.  The candidate expression, its saturating-add
//! association, and the first-strict-minimum split tie-break are
//! replicated literally, so cost *and* split table are bit-identical
//! to `matrix_chain_order` / `optimal_bst`.

use sdp_andor::chain::ChainSolution;
use sdp_fault::SdpError;
use sdp_semiring::Cost;

/// Saturating `r_{i−1}·r_k·r_j` as a finite [`Cost`] (the reference
/// solver's overflow clamp, replicated).
fn triple_product_cost(a: u64, b: u64, c: u64) -> Cost {
    Cost::saturating_from_u64(a.saturating_mul(b).saturating_mul(c))
}

/// Flat `n × n` cost table plus its transposed mirror and split table.
struct Tables {
    n: usize,
    cost: Vec<Cost>,
    cost_t: Vec<Cost>,
    split: Vec<usize>,
}

impl Tables {
    fn new(n: usize) -> Tables {
        Tables {
            n,
            cost: vec![Cost::ZERO; n * n],
            cost_t: vec![Cost::ZERO; n * n],
            split: vec![0usize; n * n],
        }
    }

    fn set(&mut self, i: usize, j: usize, c: Cost, k: usize) {
        self.cost[i * self.n + j] = c;
        self.cost_t[j * self.n + i] = c;
        self.split[i * self.n + j] = k;
    }

    fn solution(self) -> ChainSolution {
        let n = self.n;
        ChainSolution {
            cost: self.cost[n - 1], // (0, n−1)
            split: (0..n)
                .map(|i| self.split[i * n..(i + 1) * n].to_vec())
                .collect(),
            n,
        }
    }
}

/// Direct matrix-chain order: bit-identical cost *and* split table to
/// `sdp_andor::chain::try_matrix_chain_order`, computed over flat
/// tables with contiguous split scans.
pub fn chain_direct(dims: &[u64]) -> Result<ChainSolution, SdpError> {
    if dims.len() < 2 {
        return Err(SdpError::BadParameter {
            name: "dims.len()",
            got: dims.len() as u64,
            min: 2,
        });
    }
    if let Some(&bad) = dims.iter().find(|&&d| d == 0) {
        return Err(SdpError::BadParameter {
            name: "dims[i]",
            got: bad,
            min: 1,
        });
    }
    let n = dims.len() - 1;
    let mut t = Tables::new(n);
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut best = Cost::INF;
            let mut arg = i;
            let row_i = &t.cost[i * n..];
            let row_jt = &t.cost_t[j * n..];
            for k in i..j {
                let c = row_i[k]
                    + row_jt[k + 1]
                    + triple_product_cost(dims[i], dims[k + 1], dims[j + 1]);
                if c < best {
                    best = c;
                    arg = k;
                }
            }
            t.set(i, j, best, arg);
        }
    }
    Ok(t.solution())
}

/// Direct optimal BST: bit-identical cost *and* root table to
/// `sdp_andor::chain::try_optimal_bst`.
pub fn bst_direct(freq: &[u64]) -> Result<ChainSolution, SdpError> {
    if freq.is_empty() {
        return Err(SdpError::BadParameter {
            name: "freq.len()",
            got: 0,
            min: 1,
        });
    }
    let n = freq.len();
    let mut pre = vec![0u64; n + 1];
    for (i, &f) in freq.iter().enumerate() {
        pre[i + 1] = pre[i] + f;
    }
    let weight = |i: usize, j: usize| (pre[j + 1] - pre[i]) as i64;
    let mut t = Tables::new(n);
    for (i, &f) in freq.iter().enumerate() {
        t.set(i, i, Cost::from(f as i64), i);
    }
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut best = Cost::INF;
            let mut arg = i;
            let w = Cost::from(weight(i, j));
            let row_i = &t.cost[i * n..];
            let row_jt = &t.cost_t[j * n..];
            for r in i..=j {
                let left = if r > i { row_i[r - 1] } else { Cost::ZERO };
                let right = if r < j { row_jt[r + 1] } else { Cost::ZERO };
                let c = left + right + w;
                if c < best {
                    best = c;
                    arg = r;
                }
            }
            t.set(i, j, best, arg);
        }
    }
    Ok(t.solution())
}

/// Steps the chain array takes to retire an `n`-matrix chain under the
/// broadcast mapping: Prop. 2's top-down recurrence gives exactly `n`
/// (`td_recurrence(n) = n`), pinned against the simulator by test.
pub fn chain_steps(n: usize) -> u64 {
    n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_andor::chain::{
        matrix_chain_order, optimal_bst, try_matrix_chain_order, try_optimal_bst,
    };
    use sdp_core::chain_array::{simulate_chain_array, ChainMapping};

    fn dims(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..=n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                1 + s % 40
            })
            .collect()
    }

    #[test]
    fn chain_matches_reference_exactly() {
        assert_eq!(
            chain_direct(&[30, 35, 15, 5, 10, 20, 25]).unwrap(),
            matrix_chain_order(&[30, 35, 15, 5, 10, 20, 25])
        );
        for n in 1..=12 {
            let d = dims(n as u64, n);
            assert_eq!(chain_direct(&d).unwrap(), matrix_chain_order(&d), "{d:?}");
        }
        // Saturating dimensions clamp identically.
        let big = 2_100_000u64;
        assert_eq!(
            chain_direct(&[big, big, big, big]).unwrap(),
            matrix_chain_order(&[big, big, big, big])
        );
    }

    #[test]
    fn bst_matches_reference_exactly() {
        for n in 1..=12 {
            let f = dims(100 + n as u64, n - 1);
            assert_eq!(bst_direct(&f).unwrap(), optimal_bst(&f), "{f:?}");
        }
    }

    #[test]
    fn errors_match_reference() {
        assert_eq!(chain_direct(&[7]).err(), try_matrix_chain_order(&[7]).err());
        assert_eq!(
            chain_direct(&[3, 0, 2]).err(),
            try_matrix_chain_order(&[3, 0, 2]).err()
        );
        assert_eq!(bst_direct(&[]).err(), try_optimal_bst(&[]).err());
    }

    #[test]
    fn chain_steps_matches_broadcast_simulation() {
        for n in 1..=24 {
            let d = dims(7 + n as u64, n);
            let sim = simulate_chain_array(&d, ChainMapping::Broadcast);
            assert_eq!(chain_steps(n), sim.finish, "n {n}");
        }
    }
}
