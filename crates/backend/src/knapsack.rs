//! Direct 0/1 knapsack mirroring the capacity-indexed linear array.
//!
//! The array streams items through `C + 1` PEs with value trains
//! closing the `c − w_i` dependency gap; the direct solver runs the
//! classic one-row sweep (capacity descending, so each item is used at
//! most once) with the array's exact decision rule — take iff
//! `base + value > current` (strictly, ties leave the item) with
//! saturating adds — so rows *and* recovered item sets are
//! bit-identical.
//!
//! Stats are the array's closed forms: `n + Σ w_i + 2·(C + 1)` cycles,
//! every PE busy once per item (one decision each), `n + 1` input
//! words (items plus the flush), `n + Σ min(w_i, C + 1) + C + 2`
//! output words (each item word, its tail-visible value train, the
//! flush, and the drained row), and stalls on exactly the relay-only
//! cycles of the launch schedule.

use sdp_core::knapsack_array::{knapsack_cycle_count, BatchKnapsackRun, KnapsackItem, KnapsackRun};
use sdp_fault::SdpError;
use sdp_systolic::Stats;

/// One row sweep with the array's decision rule; returns the final row
/// and (when `decisions` is given) each capacity's take/leave bit per
/// item, appended in item order.
fn sweep(
    items: &[KnapsackItem],
    capacity: u64,
    mut decisions: Option<&mut [Vec<bool>]>,
) -> Vec<u64> {
    let c = capacity as usize;
    let mut row = vec![0u64; c + 1];
    for it in items {
        let w = it.weight as usize;
        for cap in (0..=c).rev() {
            let take = cap >= w && row[cap - w].saturating_add(it.value) > row[cap];
            if let Some(d) = decisions.as_deref_mut() {
                d[cap].push(take);
            }
            if take {
                row[cap] = row[cap - w].saturating_add(it.value);
            }
        }
    }
    row
}

/// Closed-form array Stats for one instance.
fn array_stats(items: &[KnapsackItem], capacity: u64) -> Stats {
    let (n, c) = (items.len() as u64, capacity);
    let cycles = knapsack_cycle_count(items, capacity);
    let tail_train: u64 = items.iter().map(|it| it.weight.min(c + 1)).sum();
    // Mark the decision cycles of the launch schedule; the rest are
    // relay-only stalls.  Item i launches at s_i = i + Σ_{k<i} w_k;
    // PE j decides at s_i + j (immediate: j < w_i, or w_i = 0) or at
    // s_i + j + w_i (train resolution: j ≥ w_i).
    let mut busy_cycle = vec![false; cycles as usize];
    let mut s = 0u64;
    for it in items {
        let wi = it.weight;
        if wi == 0 {
            for t in s..=s + c {
                busy_cycle[t as usize] = true;
            }
        } else {
            for t in s..=s + (wi - 1).min(c) {
                busy_cycle[t as usize] = true;
            }
            if wi <= c {
                for t in s + 2 * wi..=s + wi + c {
                    busy_cycle[t as usize] = true;
                }
            }
        }
        s += wi + 1;
    }
    let stalls = busy_cycle.iter().filter(|&&b| !b).count() as u64;
    Stats::from_parts(
        cycles,
        vec![n; c as usize + 1],
        n + 1,
        n + tail_train + c + 2,
        0,
        0,
        stalls,
    )
}

/// Direct 0/1 knapsack: bit-identical to
/// `sdp_core::knapsack_array::knapsack_array` (final row, optimum,
/// Stats) without simulating the array.
pub fn knapsack_direct(items: &[KnapsackItem], capacity: u64) -> KnapsackRun {
    if items.is_empty() {
        return KnapsackRun {
            best: 0,
            per_capacity: vec![0; capacity as usize + 1],
            cycles: 0,
            stats: Stats::new(0),
        };
    }
    let per_capacity = sweep(items, capacity, None);
    let stats = array_stats(items, capacity);
    KnapsackRun {
        best: per_capacity[capacity as usize],
        cycles: stats.cycles(),
        per_capacity,
        stats,
    }
}

/// [`knapsack_direct`] plus item-set recovery: replays the array's
/// per-capacity decision bits (ties leave the item) and walks them back
/// from full capacity, so the set matches
/// `sdp_core::knapsack_array::knapsack_array_recovered` exactly.
pub fn knapsack_direct_recovered(
    items: &[KnapsackItem],
    capacity: u64,
) -> (KnapsackRun, Vec<usize>) {
    if items.is_empty() {
        return (knapsack_direct(items, capacity), Vec::new());
    }
    let mut decisions = vec![Vec::with_capacity(items.len()); capacity as usize + 1];
    let per_capacity = sweep(items, capacity, Some(&mut decisions));
    let stats = array_stats(items, capacity);
    let mut c = capacity as usize;
    let mut set = Vec::new();
    for i in (0..items.len()).rev() {
        if decisions[c][i] {
            set.push(i);
            c -= items[i].weight as usize;
        }
    }
    set.reverse();
    (
        KnapsackRun {
            best: per_capacity[capacity as usize],
            cycles: stats.cycles(),
            per_capacity,
            stats,
        },
        set,
    )
}

/// Direct batched knapsack: same rows and typed errors as
/// `sdp_core::knapsack_array::knapsack_array_batch` with the streamed
/// array's Stats.
pub fn knapsack_direct_batch(
    batch: &[&[KnapsackItem]],
    capacity: u64,
) -> Result<BatchKnapsackRun, SdpError> {
    if batch.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let c = capacity as usize;
    if batch.iter().all(|items| items.is_empty()) {
        return Ok(BatchKnapsackRun {
            bests: vec![0; batch.len()],
            per_capacity: vec![vec![0; c + 1]; batch.len()],
            cycles: 0,
            stats: Stats::new(0),
        });
    }
    let per_capacity: Vec<Vec<u64>> = batch
        .iter()
        .map(|items| sweep(items, capacity, None))
        .collect();
    // The batch schedule: each instance's items at w + 1 spacing, its
    // flush, then a C + 2 gap before the next; cycles run to the last
    // flush plus the drain.  Busy/stall/IO accounting is per instance,
    // offset by its launch cycle.
    let mut s = 0u64;
    let mut last_flush = 0u64;
    let mut offsets = Vec::with_capacity(batch.len());
    for items in batch {
        offsets.push(s);
        let w: u64 = items.iter().map(|it| it.weight).sum();
        s += items.len() as u64 + w;
        last_flush = s;
        s += c as u64 + 2;
    }
    let cycles = last_flush + 2 * (c as u64 + 1);
    let mut busy_cycle = vec![false; cycles as usize];
    let mut input_words = 0u64;
    let mut output_words = 0u64;
    for (items, &offset) in batch.iter().zip(&offsets) {
        let mut s = offset;
        for it in items.iter() {
            let wi = it.weight;
            if wi == 0 {
                for t in s..=s + c as u64 {
                    busy_cycle[t as usize] = true;
                }
            } else {
                for t in s..=s + (wi - 1).min(c as u64) {
                    busy_cycle[t as usize] = true;
                }
                if wi <= c as u64 {
                    for t in s + 2 * wi..=s + wi + c as u64 {
                        busy_cycle[t as usize] = true;
                    }
                }
            }
            s += wi + 1;
        }
        let tail_train: u64 = items.iter().map(|it| it.weight.min(c as u64 + 1)).sum();
        input_words += items.len() as u64 + 1;
        output_words += items.len() as u64 + tail_train + c as u64 + 2;
    }
    let stalls = busy_cycle.iter().filter(|&&b| !b).count() as u64;
    let n_total: u64 = batch.iter().map(|items| items.len() as u64).sum();
    let stats = Stats::from_parts(
        cycles,
        vec![n_total; c + 1],
        input_words,
        output_words,
        0,
        0,
        stalls,
    );
    Ok(BatchKnapsackRun {
        bests: per_capacity.iter().map(|row| row[c]).collect(),
        per_capacity,
        cycles: stats.cycles(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_core::knapsack_array::{
        knapsack_array, knapsack_array_batch, knapsack_array_recovered,
    };

    fn items(raw: &[(u64, u64)]) -> Vec<KnapsackItem> {
        raw.iter().map(|&(w, v)| KnapsackItem::new(w, v)).collect()
    }

    fn rng(mut state: u64) -> impl FnMut() -> u64 {
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        }
    }

    #[test]
    fn single_matches_sim_exactly() {
        let mut next = rng(13);
        for case in 0..30 {
            let n = (next() % 8) as usize;
            let capacity = next() % 12;
            let its: Vec<KnapsackItem> = (0..n)
                .map(|_| KnapsackItem::new(next() % 7, next() % 10))
                .collect();
            let sim = knapsack_array(&its, capacity);
            let direct = knapsack_direct(&its, capacity);
            assert_eq!(direct, sim, "case {case}: {its:?} cap {capacity}");
        }
    }

    #[test]
    fn recovered_sets_match_sim_exactly() {
        let mut next = rng(29);
        for case in 0..30 {
            let n = 1 + (next() % 6) as usize;
            let capacity = next() % 10;
            let its: Vec<KnapsackItem> = (0..n)
                .map(|_| KnapsackItem::new(next() % 5, next() % 9))
                .collect();
            let (sim, sim_set) = knapsack_array_recovered(&its, capacity);
            let (direct, direct_set) = knapsack_direct_recovered(&its, capacity);
            assert_eq!(direct, sim, "case {case}");
            assert_eq!(direct_set, sim_set, "case {case}: {its:?} cap {capacity}");
        }
    }

    #[test]
    fn batch_matches_sim_exactly() {
        let a = items(&[(1, 1), (3, 4), (4, 5), (5, 7)]);
        let b = items(&[(2, 2), (2, 3)]);
        let c = items(&[(1, 9)]);
        let refs: Vec<&[KnapsackItem]> = vec![&a, &b, &c];
        let sim = knapsack_array_batch(&refs, 7).unwrap();
        let direct = knapsack_direct_batch(&refs, 7).unwrap();
        assert_eq!(direct, sim);
        assert!(matches!(
            knapsack_direct_batch(&[], 7),
            Err(SdpError::EmptyBatch)
        ));
    }

    #[test]
    fn oversized_and_zero_weight_items_match_sim() {
        for (raw, cap) in [
            (&[(10u64, 100u64)][..], 4u64),
            (&[(0, 3), (2, 9), (0, 4)], 0),
            (&[(0, 1), (0, 2)], 5),
            (&[(6, 6), (1, 1)], 5),
        ] {
            let its = items(raw);
            assert_eq!(
                knapsack_direct(&its, cap),
                knapsack_array(&its, cap),
                "{raw:?} cap {cap}"
            );
        }
    }
}
