//! Compiled direct-execution backends for the four DP classes.
//!
//! The cycle-accurate engines in `sdp-core` pay O(cycles × PEs) of host
//! work per instance — the right cost model for *validating* the
//! paper's Eq. 9 / Thm 1 claims, and the wrong one for *serving*
//! production-sized problems.  This crate re-solves each recurrence as
//! a blocked, cache-aware sweep over plain arrays and returns the exact
//! result types of the simulated engines:
//!
//! * **answers are bit-identical** — every value, path, split, and
//!   distance matches the simulator's output exactly (the min-plus
//!   folds are order-independent, and where a tie-break is observable,
//!   such as the Design 2 path latches, the scan order is replicated
//!   literally);
//! * **`Stats` are analytic** — cycle counts, busy vectors, and I/O
//!   words come from the paper's closed forms (Design 1's pipelined
//!   `items + m − 1`, Design 2's `N·m` broadcast count, the mesh's
//!   `p + q + r − 2` and `|a| + |b| − 1` makespans, and their batched
//!   variants) via [`sdp_systolic::Stats::from_parts`], so downstream
//!   Stats consumers cannot tell a direct run from a simulated one.
//!
//! The `sdp-oracle` `conformance_backend` suite differential-tests
//! every solver here against both the simulator and the from-scratch
//! reference solvers, including full-field `Stats` equality on every
//! overlapping size.
//!
//! | module | class | direct strategy |
//! |--------|-------|-----------------|
//! | [`multistage`] | monadic serial | right-to-left row-major min-plus vector folds |
//! | [`matmul`] | polyadic serial | the blocked `Matrix::mul` kernel |
//! | [`edit`] | monadic nonserial | column-strip tiled rolling rows, O(min(m,n)) memory |
//! | [`interval`] | polyadic nonserial | diagonal sweep with a transposed mirror table |
//! | [`align`] | monadic nonserial | rolling-row SW/Gotoh/banded with in-flight argmax |
//! | [`knapsack`] | monadic serial | descending one-row sweep with the array's tie-break |

pub mod align;
pub mod edit;
pub mod interval;
pub mod knapsack;
pub mod matmul;
pub mod multistage;

pub use align::{
    gotoh_direct, gotoh_direct_batch, sw_banded_direct, sw_banded_direct_batch, sw_direct,
    sw_direct_batch,
};
pub use edit::{edit_direct, edit_direct_batch};
pub use interval::{bst_direct, chain_direct, chain_steps};
pub use knapsack::{knapsack_direct, knapsack_direct_batch, knapsack_direct_recovered};
pub use matmul::{matmul_direct, matmul_direct_batch};
pub use multistage::{design1_direct, design1_direct_batch, design2_direct, design2_direct_batch};
