//! Direct (min,+)/semiring matrix products mirroring the
//! result-stationary mesh.
//!
//! The mesh computes each cell as a k-ascending fold, exactly the order
//! of the blocked [`Matrix::mul`] kernel (property-tested identical to
//! the naive oracle), so the direct product is bit-identical.  The
//! Stats are the mesh's closed forms: `T₁ = p + q + r − 2` cycles
//! (`T₁ + (B−1)·q` batched), every PE busy `q` cycles per instance, and
//! `q·(p + r)` words in and out per instance — every operand word
//! enters an edge, traverses the mesh, and leaves the opposite edge.

use sdp_core::matmul_array::{BatchMatmulRun, MatmulArray, MatmulRun};
use sdp_fault::SdpError;
use sdp_semiring::{Matrix, Semiring};
use sdp_systolic::Stats;

/// Closed-form mesh Stats for a batch of `bn` same-shaped products.
fn mesh_stats(p: usize, q: usize, r: usize, bn: usize) -> Stats {
    let io = (bn * q * (p + r)) as u64;
    Stats::from_parts(
        MatmulArray::t_batch(p, q, r, bn),
        vec![(bn * q) as u64; p * r],
        io,
        io,
        0,
        0,
        0,
    )
}

/// Direct product: bit-identical to `MatmulArray::multiply` with the
/// analytic Stats of the `p × r` mesh.
pub fn matmul_direct<S: Semiring>(a: &Matrix<S>, b: &Matrix<S>) -> Result<MatmulRun<S>, SdpError> {
    if a.cols() != b.rows() {
        return Err(SdpError::InnerDimMismatch {
            left_cols: a.cols(),
            right_rows: b.rows(),
        });
    }
    let (p, q, r) = (a.rows(), a.cols(), b.cols());
    Ok(MatmulRun {
        product: a.mul(b),
        cycles: MatmulArray::t1(p, q, r),
        stats: mesh_stats(p, q, r, 1),
    })
}

/// Direct batch product: bit-identical to `MatmulArray::multiply_batch`
/// (same products, same typed errors) with the analytic Stats of the
/// back-to-back mesh schedule.
pub fn matmul_direct_batch<S: Semiring>(
    pairs: &[(Matrix<S>, Matrix<S>)],
) -> Result<BatchMatmulRun<S>, SdpError> {
    if pairs.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let (p, q, r) = (pairs[0].0.rows(), pairs[0].0.cols(), pairs[0].1.cols());
    for (index, (a, b)) in pairs.iter().enumerate() {
        if a.cols() != b.rows() {
            return Err(SdpError::InnerDimMismatch {
                left_cols: a.cols(),
                right_rows: b.rows(),
            });
        }
        if (a.rows(), a.cols(), b.cols()) != (p, q, r) {
            return Err(SdpError::BatchShapeMismatch { index });
        }
    }
    let bn = pairs.len();
    Ok(BatchMatmulRun {
        products: pairs.iter().map(|(a, b)| a.mul(b)).collect(),
        cycles: MatmulArray::t_batch(p, q, r, bn),
        serial_ops: (bn * p * q * r) as u64,
        stats: mesh_stats(p, q, r, bn),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_semiring::MinPlus;

    fn mat(seed: u64, rows: usize, cols: usize) -> Matrix<MinPlus> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            MinPlus::from((s % 50) as i64)
        })
    }

    #[test]
    fn single_matches_sim_exactly() {
        for (p, q, r) in [(1, 1, 1), (2, 3, 4), (4, 4, 4), (5, 2, 3)] {
            let (a, b) = (mat(p as u64, p, q), mat(100 + r as u64, q, r));
            let sim = MatmulArray::multiply(&a, &b);
            let direct = matmul_direct(&a, &b).unwrap();
            assert_eq!(direct.product, sim.product, "{p}x{q}x{r}");
            assert_eq!(direct.cycles, sim.cycles);
            assert_eq!(direct.stats, sim.stats);
        }
    }

    #[test]
    fn batch_matches_sim_exactly() {
        for bn in [1usize, 2, 5] {
            let pairs: Vec<_> = (0..bn as u64)
                .map(|s| (mat(s, 3, 2), mat(50 + s, 2, 4)))
                .collect();
            let sim = MatmulArray::multiply_batch(&pairs).unwrap();
            let direct = matmul_direct_batch(&pairs).unwrap();
            assert_eq!(direct.products, sim.products, "bn {bn}");
            assert_eq!(direct.cycles, sim.cycles);
            assert_eq!(direct.serial_ops, sim.serial_ops);
            assert_eq!(direct.stats, sim.stats);
        }
    }

    #[test]
    fn errors_match_sim() {
        let (a, b) = (mat(1, 2, 3), mat(2, 2, 2));
        assert_eq!(
            matmul_direct(&a, &b).err(),
            MatmulArray::try_multiply(&a, &b).err()
        );
        assert_eq!(
            matmul_direct_batch::<MinPlus>(&[]).err(),
            MatmulArray::multiply_batch::<MinPlus>(&[]).err()
        );
        let pairs = vec![(mat(1, 2, 2), mat(2, 2, 2)), (mat(3, 3, 2), mat(4, 2, 2))];
        assert_eq!(
            matmul_direct_batch(&pairs).err(),
            MatmulArray::multiply_batch(&pairs).err()
        );
    }
}
