//! Direct edit distance mirroring the wavefront mesh.
//!
//! The mesh assigns one PE per cell of the `|a| × |b|` DP table and
//! sweeps it in `|a| + |b| − 1` anti-diagonal wavefronts.  The direct
//! solver computes the same table with rolling rows — O(min(m, n))
//! memory — tiled into column strips so the active row segment and the
//! strip's boundary column stay cache-resident on large inputs.
//! Levenshtein distance is a single u64 per pair, so any correct
//! evaluation order is bit-identical to the mesh.
//!
//! Stats are the mesh's closed forms: `|a| + |b| − 1` cycles
//! (`p + q − 2 + B` batched, wavefronts one cycle apart), each of the
//! `|a|·|b|` PEs busy once per instance, `|a| + |b|` words in and out
//! per instance, and the mesh's empty-operand short-circuit (a 0-sized
//! mesh: zero cycles, zero PEs).

use sdp_core::edit_array::{BatchEditRun, EditRun};
use sdp_fault::SdpError;
use sdp_systolic::Stats;

/// Column-strip width: strips of 1024 u64 cells (8 KiB) plus the two
/// boundary columns stay L1-resident regardless of operand lengths.
const STRIP: usize = 1024;

/// Tiled rolling-row Levenshtein.  The shorter operand is the inner
/// (column) dimension — distance is symmetric — so memory is
/// O(min(|a|, |b|)) plus the two O(max) boundary columns.
fn levenshtein_tiled(a: &[u8], b: &[u8]) -> u64 {
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let (m, n) = (outer.len(), inner.len());
    // `left[i]` = D[i][j₀−1], the column entering the current strip;
    // `right[i]` collects D[i][j₁] leaving it.
    let mut left: Vec<u64> = (0..=m as u64).collect();
    let mut right: Vec<u64> = vec![0; m + 1];
    let mut seg = [0u64; STRIP];
    let mut j0 = 1usize;
    while j0 <= n {
        let j1 = (j0 + STRIP - 1).min(n); // inclusive strip end
        let w = j1 - j0 + 1;
        for (t, s) in seg.iter_mut().take(w).enumerate() {
            *s = (j0 + t) as u64; // row 0: D[0][j] = j
        }
        right[0] = j1 as u64;
        for i in 1..=m {
            let mut diag = left[i - 1]; // D[i−1][j₀−1]
            let mut cur = left[i]; // D[i][j−1], starting at the boundary
            let oc = outer[i - 1];
            for (t, s) in seg.iter_mut().take(w).enumerate() {
                let up = *s; // D[i−1][j]
                let sub = if oc == inner[j0 + t - 1] { 0 } else { 1 };
                cur = (up + 1).min(cur + 1).min(diag + sub);
                diag = up;
                *s = cur;
            }
            right[i] = cur;
        }
        std::mem::swap(&mut left, &mut right);
        j0 = j1 + 1;
    }
    left[m]
}

/// Closed-form mesh Stats for a batch of `bn` same-shaped comparisons.
fn mesh_stats(p: usize, q: usize, bn: usize) -> Stats {
    let io = (bn * (p + q)) as u64;
    Stats::from_parts(
        (p + q - 2 + bn) as u64,
        vec![bn as u64; p * q],
        io,
        io,
        0,
        0,
        0,
    )
}

/// Direct edit distance: bit-identical to
/// `sdp_core::edit_array::edit_distance_mesh` with the analytic Stats
/// of the `|a| × |b|` wavefront mesh.
pub fn edit_direct(a: &[u8], b: &[u8]) -> EditRun {
    if a.is_empty() || b.is_empty() {
        return EditRun {
            distance: (a.len() + b.len()) as u64,
            cycles: 0,
            stats: Stats::new(0),
        };
    }
    let stats = mesh_stats(a.len(), b.len(), 1);
    EditRun {
        distance: levenshtein_tiled(a, b),
        cycles: stats.cycles(),
        stats,
    }
}

/// Direct batch edit distance: bit-identical to
/// `sdp_core::edit_array::edit_distance_mesh_batch` (same distances,
/// same typed errors) with the analytic Stats of the streamed mesh.
pub fn edit_direct_batch(pairs: &[(&[u8], &[u8])]) -> Result<BatchEditRun, SdpError> {
    if pairs.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let (p, q) = (pairs[0].0.len(), pairs[0].1.len());
    for (index, (a, b)) in pairs.iter().enumerate() {
        if (a.len(), b.len()) != (p, q) {
            return Err(SdpError::BatchShapeMismatch { index });
        }
    }
    let bn = pairs.len();
    if p == 0 || q == 0 {
        return Ok(BatchEditRun {
            distances: vec![(p + q) as u64; bn],
            cycles: 0,
            stats: Stats::new(0),
        });
    }
    let stats = mesh_stats(p, q, bn);
    Ok(BatchEditRun {
        distances: pairs.iter().map(|(a, b)| levenshtein_tiled(a, b)).collect(),
        cycles: stats.cycles(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_core::edit_array::{edit_distance_mesh, edit_distance_mesh_batch, edit_distance_seq};

    fn word(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                b'a' + (s % 4) as u8
            })
            .collect()
    }

    #[test]
    fn single_matches_sim_exactly() {
        for (la, lb) in [(0, 0), (0, 3), (4, 0), (1, 1), (6, 9), (17, 5)] {
            let (a, b) = (word(la as u64, la), word(100 + lb as u64, lb));
            let sim = edit_distance_mesh(&a, &b);
            let direct = edit_direct(&a, &b);
            assert_eq!(direct.distance, sim.distance, "{la}x{lb}");
            assert_eq!(direct.cycles, sim.cycles);
            assert_eq!(direct.stats, sim.stats);
        }
    }

    #[test]
    fn batch_matches_sim_exactly() {
        for bn in [1usize, 2, 7] {
            let words: Vec<(Vec<u8>, Vec<u8>)> = (0..bn as u64)
                .map(|s| (word(s, 5), word(50 + s, 8)))
                .collect();
            let pairs: Vec<(&[u8], &[u8])> = words
                .iter()
                .map(|(a, b)| (a.as_slice(), b.as_slice()))
                .collect();
            let sim = edit_distance_mesh_batch(&pairs).unwrap();
            let direct = edit_direct_batch(&pairs).unwrap();
            assert_eq!(direct.distances, sim.distances, "bn {bn}");
            assert_eq!(direct.cycles, sim.cycles);
            assert_eq!(direct.stats, sim.stats);
        }
    }

    #[test]
    fn tiling_is_exact_across_strip_boundaries() {
        // Lengths straddling the strip width exercise the boundary
        // columns; the plain rolling-row reference is the oracle.
        for (la, lb) in [
            (STRIP - 1, 40),
            (STRIP, 40),
            (STRIP + 3, 40),
            (40, STRIP + 1),
        ] {
            let (a, b) = (word(7, la), word(11, lb));
            assert_eq!(
                levenshtein_tiled(&a, &b),
                edit_distance_seq(&a, &b),
                "{la}x{lb}"
            );
        }
    }

    #[test]
    fn errors_match_sim() {
        assert_eq!(
            edit_direct_batch(&[]).err(),
            edit_distance_mesh_batch(&[]).err()
        );
        let pairs: Vec<(&[u8], &[u8])> = vec![(b"abc", b"de"), (b"ab", b"de")];
        assert_eq!(
            edit_direct_batch(&pairs).err(),
            edit_distance_mesh_batch(&pairs).err()
        );
    }
}
