//! Direct multistage shortest-path solvers mirroring Designs 1 and 2.
//!
//! Both designs compute the same right-to-left min-plus fold
//! `v ← Mᵢ · v` over the matrix string; the simulators differ only in
//! *how* the fold is scheduled onto PEs (pipelined vs broadcast), which
//! changes the Stats but not the values.  The direct solvers run the
//! fold row-major (contiguous matrix reads, no per-cycle machinery) and
//! attach each design's closed-form Stats:
//!
//! * **Design 1** injects every item on consecutive cycles (the tail
//!   feedback of a moving phase is ready exactly one cycle before the
//!   following phase needs it), so a schedule of `T` items on `m` PEs
//!   takes `T + m − 1` cycles with every PE busy `T` times, `T` words
//!   in, `T` words out, and no stalls.
//! * **Design 2** broadcasts one word per cycle: `m` cycles per
//!   interior matrix (all `m` PEs busy) plus `m` cycles for the final
//!   row phase (only `P₁` busy), every cycle one input and one bus
//!   word, and nothing leaves through the tail (results are read from
//!   the `S` registers).
//!
//! The Design 2 path is recovered from per-stage argmin latches whose
//! tie-break (first strict improvement, broadcast index ascending) is
//! replicated literally so recovered paths are bit-identical too.

use sdp_core::design1::{Design1BatchResult, Design1Result};
use sdp_core::design2::{Design2BatchResult, Design2Result};
use sdp_fault::SdpError;
use sdp_semiring::{Cost, Matrix, MinPlus, Semiring};
use sdp_systolic::Stats;

/// `m ≥ 1` check shared with `Design1Array::try_new`/`Design2Array::try_new`.
fn validate_m(m: usize) -> Result<(), SdpError> {
    if m < 1 {
        return Err(SdpError::BadParameter {
            name: "m",
            got: m as u64,
            min: 1,
        });
    }
    Ok(())
}

/// Design 1's shape checks (verbatim from `Design1Array::validate`).
fn validate_d1(m: usize, mats: &[Matrix<MinPlus>]) -> Result<(bool, bool), SdpError> {
    if mats.is_empty() {
        return Err(SdpError::EmptyMatrixString);
    }
    let has_row = mats[0].rows() == 1 && m > 1;
    let has_col = mats[mats.len() - 1].cols() == 1 && m > 1;
    if mats.len() < has_row as usize + has_col as usize {
        return Err(SdpError::StringTooShort {
            got: mats.len(),
            need: has_row as usize + has_col as usize,
        });
    }
    let mid_range = (has_row as usize)..(mats.len() - has_col as usize);
    for (off, mat) in mats[mid_range.clone()].iter().enumerate() {
        if (mat.rows(), mat.cols()) != (m, m) {
            return Err(SdpError::NotSquare {
                index: mid_range.start + off,
                m,
            });
        }
    }
    if has_row && mats[0].cols() != m {
        return Err(SdpError::WrongStageWidth {
            stage: 0,
            m,
            got: mats[0].cols(),
        });
    }
    if has_col && mats[mats.len() - 1].rows() != m {
        return Err(SdpError::WrongStageWidth {
            stage: mats.len() - 1,
            m,
            got: mats[mats.len() - 1].rows(),
        });
    }
    Ok((has_row, has_col))
}

/// Design 2's shape checks (verbatim from `Design2Array::validate` —
/// note it does *not* check stage widths, matching the simulator).
fn validate_d2(m: usize, mats: &[Matrix<MinPlus>]) -> Result<(bool, bool), SdpError> {
    if mats.is_empty() {
        return Err(SdpError::EmptyMatrixString);
    }
    let has_row = mats[0].rows() == 1 && m > 1;
    let has_col = mats[mats.len() - 1].cols() == 1 && m > 1;
    if mats.len() < has_row as usize + has_col as usize {
        return Err(SdpError::StringTooShort {
            got: mats.len(),
            need: has_row as usize + has_col as usize,
        });
    }
    let interior = &mats[(has_row as usize)..(mats.len() - has_col as usize)];
    for (off, mat) in interior.iter().enumerate() {
        if (mat.rows(), mat.cols()) != (m, m) {
            return Err(SdpError::NotSquare {
                index: has_row as usize + off,
                m,
            });
        }
    }
    Ok((has_row, has_col))
}

/// Batch-uniformity check shared by both designs: every instance must
/// repeat instance 0's shape sequence.
fn validate_batch_shapes(instances: &[&[Matrix<MinPlus>]]) -> Result<(), SdpError> {
    let first = instances[0];
    for (index, mats) in instances.iter().enumerate().skip(1) {
        let same = mats.len() == first.len()
            && mats
                .iter()
                .zip(first.iter())
                .all(|(a, b)| (a.rows(), a.cols()) == (b.rows(), b.cols()));
        if !same {
            return Err(SdpError::BatchShapeMismatch { index });
        }
    }
    Ok(())
}

/// The initial vector: the degenerate last column, or the all-one
/// (zero-cost) vector for multi-sink strings.
fn v0(m: usize, mats: &[Matrix<MinPlus>], has_col: bool) -> Vec<MinPlus> {
    if has_col {
        (0..m).map(|i| mats[mats.len() - 1].get(i, 0)).collect()
    } else {
        vec![MinPlus::one(); m]
    }
}

/// One fold step `w = mat · v`, row-major.  Min is order-independent,
/// so the contiguous scan is bit-identical to the simulators' per-item
/// accumulation.
fn fold_step(m: usize, mat: &Matrix<MinPlus>, v: &[MinPlus]) -> Vec<MinPlus> {
    (0..m)
        .map(|i| {
            let row = mat.row(i);
            let mut acc = MinPlus::zero();
            for (j, &vj) in v.iter().enumerate() {
                acc = acc.add(row[j].mul(vj));
            }
            acc
        })
        .collect()
}

/// The final values of one instance: the fold over the interior
/// matrices right-to-left, contracted by the row vector if present.
fn fold_values(m: usize, mats: &[Matrix<MinPlus>], has_row: bool, has_col: bool) -> Vec<Cost> {
    let interior = &mats[(has_row as usize)..(mats.len() - has_col as usize)];
    let mut v = v0(m, mats, has_col);
    for mat in interior.iter().rev() {
        v = fold_step(m, mat, &v);
    }
    if has_row {
        let row = mats[0].row(0);
        let mut acc = MinPlus::zero();
        for (j, &vj) in v.iter().enumerate() {
            acc = acc.add(row[j].mul(vj));
        }
        vec![acc.0]
    } else {
        v.iter().map(|c| c.0).collect()
    }
}

/// Items one instance injects into the Design 1 pipeline: `m` per
/// interior phase, plus the final row phase (1 item when the preceding
/// phase left results moving, `m` when it streams head-side).
fn d1_instance_items(m: usize, p_count: usize, has_row: bool) -> usize {
    let row_items = if has_row {
        if p_count % 2 == 1 {
            1 // FinalRowMoving
        } else {
            m // FinalRowHead
        }
    } else {
        0
    };
    p_count * m + row_items
}

/// Flush items drained between batched instances whose results end in
/// the stationary registers (`m` after a stationary-ended string, 1
/// after a head-accumulated scalar); tail-extracted shapes need none.
fn d1_flush_items(m: usize, p_count: usize, has_row: bool) -> usize {
    if has_row {
        if p_count.is_multiple_of(2) {
            1 // RowHead-ended
        } else {
            0 // RowMoving-ended
        }
    } else if p_count % 2 == 1 {
        m // Stationary-ended
    } else {
        0 // Moving-ended
    }
}

/// Design 1's closed-form batch Stats: `total_items` injections on
/// consecutive cycles through `m` pipelined PEs.
fn d1_stats(m: usize, total_items: usize) -> Stats {
    let t = total_items as u64;
    Stats::from_parts(t + m as u64 - 1, vec![t; m], t, t, 0, 0, 0)
}

/// Direct Design 1: bit-identical to `Design1Array::run` with the
/// analytic Stats of the pipelined array.
pub fn design1_direct(m: usize, mats: &[Matrix<MinPlus>]) -> Result<Design1Result, SdpError> {
    let batch = design1_direct_batch(m, &[mats])?;
    let Design1BatchResult {
        mut values,
        cycles,
        paper_iterations,
        stats,
    } = batch;
    Ok(Design1Result {
        values: values.pop().expect("one instance"),
        cycles,
        paper_iterations,
        stats,
    })
}

/// Direct Design 1 batch: bit-identical to `Design1Array::run_batch`
/// (same values, same typed errors) with the analytic Stats of the
/// back-to-back pipelined schedule, including the identity flush passes
/// that drain register-extracted instances.
pub fn design1_direct_batch(
    m: usize,
    instances: &[&[Matrix<MinPlus>]],
) -> Result<Design1BatchResult, SdpError> {
    validate_m(m)?;
    if instances.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let first = instances[0];
    let (has_row, has_col) = validate_d1(m, first)?;
    validate_batch_shapes(instances)?;
    let bn = instances.len();
    let p_count = first.len() - has_row as usize - has_col as usize;
    let paper_iterations = (bn * first.len() * m) as u64;

    // Degenerate string: only the m×1 column — nothing to pipeline.
    if p_count == 0 && !has_row {
        return Ok(Design1BatchResult {
            values: instances
                .iter()
                .map(|mats| v0(m, mats, has_col).iter().map(|v| v.0).collect())
                .collect(),
            cycles: 0,
            paper_iterations,
            stats: Stats::new(m),
        });
    }

    let values = instances
        .iter()
        .map(|mats| fold_values(m, mats, has_row, has_col))
        .collect();
    let total_items = bn * d1_instance_items(m, p_count, has_row)
        + (bn - 1) * d1_flush_items(m, p_count, has_row);
    let stats = d1_stats(m, total_items);
    Ok(Design1BatchResult {
        values,
        cycles: stats.cycles(),
        paper_iterations,
        stats,
    })
}

/// One Design 2 instance: the fold plus the argmin latches the
/// simulator uses to recover the optimal path.  The latch update is the
/// simulator's literally — a strict `<` against the running
/// accumulator, broadcast index ascending, `None` when the optimum
/// stays at +∞.
fn d2_instance(
    m: usize,
    mats: &[Matrix<MinPlus>],
    has_row: bool,
    has_col: bool,
) -> (Vec<Cost>, Option<Vec<usize>>) {
    let interior = &mats[(has_row as usize)..(mats.len() - has_col as usize)];
    let mut source = v0(m, mats, has_col);
    let mut succ_rev: Vec<Vec<Option<usize>>> = Vec::with_capacity(interior.len());
    for mat in interior.iter().rev() {
        let mut arg: Vec<Option<usize>> = vec![None; m];
        let mut next = vec![MinPlus::zero(); m];
        for (i, (acc, ai)) in next.iter_mut().zip(arg.iter_mut()).enumerate() {
            let row = mat.row(i);
            for (j, &x) in source.iter().enumerate() {
                let cand = row[j].mul(x);
                if cand.0 < acc.0 {
                    *acc = cand;
                    *ai = Some(j);
                }
            }
        }
        source = next;
        succ_rev.push(arg);
    }

    let mut start_choice: Option<usize> = None;
    let values: Vec<Cost> = if has_row {
        let row = mats[0].row(0);
        let mut acc = MinPlus::zero();
        for (j, &x) in source.iter().enumerate() {
            let cand = row[j].mul(x);
            if cand.0 < acc.0 {
                acc = cand;
                start_choice = Some(j);
            }
        }
        vec![acc.0]
    } else {
        source.iter().map(|v| v.0).collect()
    };

    let path = {
        let first = if has_row {
            start_choice
        } else {
            values
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_finite())
                .min_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
        };
        first.map(|first| {
            let mut p = Vec::with_capacity(mats.len() + 1);
            if has_row {
                p.push(0); // the single source vertex
            }
            p.push(first);
            let mut v = first;
            for arg in succ_rev.iter().rev() {
                match arg[v] {
                    Some(next) => {
                        p.push(next);
                        v = next;
                    }
                    None => return Vec::new(), // dead end (all INF)
                }
            }
            if has_col {
                p.push(0); // the single sink vertex
            }
            p
        })
    }
    .filter(|p| !p.is_empty());

    (values, path)
}

/// Design 2's closed-form batch Stats: one broadcast word per cycle —
/// `m` cycles per interior matrix with every PE busy, `m` row-phase
/// cycles with only `P₁` busy, no tail output.
fn d2_stats(m: usize, bn: usize, interior: usize, has_row: bool) -> Stats {
    let interior_cycles = (bn * interior * m) as u64;
    let row_cycles = if has_row { (bn * m) as u64 } else { 0 };
    let cycles = interior_cycles + row_cycles;
    let mut busy = vec![interior_cycles; m];
    busy[0] = interior_cycles + row_cycles;
    Stats::from_parts(cycles, busy, cycles, 0, cycles, 0, 0)
}

/// Direct Design 2: bit-identical to `Design2Array::run` (values *and*
/// recovered path) with the analytic Stats of the broadcast array.
pub fn design2_direct(m: usize, mats: &[Matrix<MinPlus>]) -> Result<Design2Result, SdpError> {
    validate_m(m)?;
    let (has_row, has_col) = validate_d2(m, mats)?;
    let (values, path) = d2_instance(m, mats, has_row, has_col);
    let interior = mats.len() - has_row as usize - has_col as usize;
    let stats = d2_stats(m, 1, interior, has_row);
    Ok(Design2Result {
        values,
        path,
        cycles: stats.cycles(),
        paper_iterations: (mats.len() * m) as u64,
        broadcast_words: stats.bus_words(),
        stats,
    })
}

/// Direct Design 2 batch: bit-identical to `Design2Array::run_batch`
/// with the exact-concatenation Stats (the broadcast array has no
/// fill or drain to amortize).
pub fn design2_direct_batch(
    m: usize,
    instances: &[&[Matrix<MinPlus>]],
) -> Result<Design2BatchResult, SdpError> {
    validate_m(m)?;
    if instances.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let (has_row, has_col) = validate_d2(m, instances[0])?;
    validate_batch_shapes(instances)?;
    let first = instances[0];
    let mut values = Vec::with_capacity(instances.len());
    let mut paths = Vec::with_capacity(instances.len());
    for mats in instances {
        let (v, p) = d2_instance(m, mats, has_row, has_col);
        values.push(v);
        paths.push(p);
    }
    let interior = first.len() - has_row as usize - has_col as usize;
    let stats = d2_stats(m, instances.len(), interior, has_row);
    Ok(Design2BatchResult {
        values,
        paths,
        cycles: stats.cycles(),
        paper_iterations: (instances.len() * first.len() * m) as u64,
        broadcast_words: stats.bus_words(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_core::{Design1Array, Design2Array};
    use sdp_multistage::generate;

    fn strings(m: usize) -> Vec<Vec<Matrix<MinPlus>>> {
        let mut out = Vec::new();
        for seed in 0..6u64 {
            let stages = 3 + (seed as usize % 5);
            out.push(
                generate::random_single_source_sink(seed, stages, m, 0, 30)
                    .matrix_string()
                    .to_vec(),
            );
            out.push(
                generate::random_uniform(seed, 2 + (seed as usize % 5), m, 0, 25)
                    .matrix_string()
                    .to_vec(),
            );
        }
        out
    }

    #[test]
    fn design1_matches_sim_exactly() {
        for m in 1..=4 {
            let arr = Design1Array::new(m);
            for s in strings(m) {
                let sim = arr.run(&s);
                let direct = design1_direct(m, &s).unwrap();
                assert_eq!(direct.values, sim.values);
                assert_eq!(direct.cycles, sim.cycles, "m {m} len {}", s.len());
                assert_eq!(direct.paper_iterations, sim.paper_iterations);
                assert_eq!(direct.stats, sim.stats);
            }
        }
    }

    #[test]
    fn design1_batch_matches_sim_exactly() {
        for m in [1usize, 3] {
            let arr = Design1Array::new(m);
            for s in strings(m) {
                let refs: Vec<&[Matrix<MinPlus>]> = (0..3).map(|_| s.as_slice()).collect();
                let sim = arr.run_batch(&refs).unwrap();
                let direct = design1_direct_batch(m, &refs).unwrap();
                assert_eq!(direct.values, sim.values);
                assert_eq!(direct.cycles, sim.cycles, "m {m} len {}", s.len());
                assert_eq!(direct.stats, sim.stats);
            }
        }
    }

    #[test]
    fn design2_matches_sim_exactly() {
        for m in 1..=4 {
            let arr = Design2Array::new(m);
            for s in strings(m) {
                let sim = arr.run(&s);
                let direct = design2_direct(m, &s).unwrap();
                assert_eq!(direct.values, sim.values);
                assert_eq!(direct.path, sim.path, "m {m} len {}", s.len());
                assert_eq!(direct.cycles, sim.cycles);
                assert_eq!(direct.broadcast_words, sim.broadcast_words);
                assert_eq!(direct.stats, sim.stats);
            }
        }
    }

    #[test]
    fn errors_match_sim() {
        let arr = Design1Array::new(3);
        for mats in [
            vec![],
            vec![Matrix::<MinPlus>::zeros(2, 2)],
            vec![Matrix::from_rows(1, 1, vec![MinPlus::from(4)])],
        ] {
            assert_eq!(
                design1_direct(3, &mats).err(),
                arr.try_run(&mats).err(),
                "{mats:?}"
            );
            assert_eq!(
                design2_direct(3, &mats).err(),
                Design2Array::new(3).try_run(&mats).err()
            );
        }
    }
}
