//! Direct local alignment mirroring the wavefront mesh.
//!
//! The mesh assigns one PE per cell of the `|a| × |b|` table and sweeps
//! anti-diagonals, `|a| + |b| − 1` cycles per instance.  The direct
//! solvers compute the same tables with rolling rows — O(|b|) memory —
//! using the exact saturating arithmetic of the PEs, so scores *and*
//! argmax endpoints (ties toward the smallest `(i, j)` row-major) are
//! bit-identical.
//!
//! Stats are the mesh's closed forms: `p + q − 1` cycles
//! (`p + q − 2 + B` batched), each in-band PE busy once per instance
//! (out-of-band relays never), `p + q` words in and `p + q` words out
//! per instance (every boundary PE — relay or not — emits once per
//! crossing wavefront), and, for banded runs, a stall on every cycle
//! whose crossing anti-diagonals hold no in-band cell.

use sdp_core::align::{AlignRun, BatchAlignRun, Scoring, Subst};
use sdp_fault::SdpError;
use sdp_systolic::Stats;

/// The mesh's out-of-band sentinel, reproduced so banded dependency
/// skipping is bit-identical (`max(0, …)` floors it away).
const OUT_OF_BAND: i64 = i64::MIN / 4;

/// Replicates the mesh's symbol validation (the core helper is
/// private; the check is part of the public contract).
fn validate(subst: &Subst, operand: &[u8]) -> Result<(), SdpError> {
    if let Subst::Matrix { alphabet, .. } = subst {
        for (index, &symbol) in operand.iter().enumerate() {
            if symbol >= *alphabet {
                return Err(SdpError::SymbolOutOfRange {
                    index,
                    symbol,
                    alphabet: *alphabet,
                });
            }
        }
    }
    Ok(())
}

fn in_band(i: usize, j: usize, band: Option<usize>) -> bool {
    match band {
        None => true,
        Some(w) => (i as i64 - j as i64).unsigned_abs() <= w as u64,
    }
}

/// Whether anti-diagonal `t` of a `p × q` mesh holds an in-band cell.
fn diag_active(t: i64, p: usize, q: usize, band: Option<usize>) -> bool {
    let lo = 0i64.max(t - (q as i64 - 1));
    let hi = (p as i64 - 1).min(t);
    match band {
        None => lo <= hi,
        Some(w) => {
            // |2i − t| ≤ band intersected with the mesh rows.
            let blo = (t - w as i64 + 1).div_euclid(2);
            let bhi = (t + w as i64).div_euclid(2);
            lo.max(blo) <= hi.min(bhi)
        }
    }
}

/// Closed-form mesh Stats for `bn` same-shaped alignments: busy counts
/// per in-band cell, stalls on wavefront cycles with no in-band work.
fn mesh_stats(p: usize, q: usize, bn: usize, band: Option<usize>) -> Stats {
    let cycles = (p + q - 2 + bn) as u64;
    let busy = (0..p)
        .flat_map(|i| (0..q).map(move |j| (i, j)))
        .map(|(i, j)| if in_band(i, j, band) { bn as u64 } else { 0 })
        .collect();
    let io = (bn * (p + q)) as u64;
    let stalls = (0..cycles as i64)
        .filter(|&t| !(0..bn as i64).any(|k| diag_active(t - k, p, q, band)))
        .count() as u64;
    Stats::from_parts(cycles, busy, io, io, 0, 0, stalls)
}

/// The best-cell merge: higher score wins, ties toward smaller `(i, j)`.
type BestCell = (i64, usize, usize);

fn empty_run() -> AlignRun {
    AlignRun {
        score: 0,
        end: None,
        cycles: 0,
        stats: Stats::new(0),
    }
}

/// Rolling-row linear-gap Smith–Waterman over an optional band,
/// returning the score and argmax endpoint.
fn sw_rows(a: &[u8], b: &[u8], band: Option<usize>, sc: &Scoring) -> BestCell {
    let q = b.len();
    let mut prev = vec![0i64; q + 1]; // H[i−1][·], boundary 0
    let mut cur = vec![0i64; q + 1];
    let mut best: BestCell = (0, usize::MAX, usize::MAX);
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = 0;
        for (j, &cb) in b.iter().enumerate() {
            let h = if in_band(i, j, band) {
                0i64.max(prev[j].saturating_add(sc.subst.score(ca, cb)))
                    .max(prev[j + 1].saturating_sub(sc.gap))
                    .max(cur[j].saturating_sub(sc.gap))
            } else {
                OUT_OF_BAND
            };
            cur[j + 1] = h;
            if h > best.0 {
                best = (h, i, j);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Rolling-row Gotoh (affine gaps), same saturating arithmetic as the
/// three-layer PE.
fn gotoh_rows(a: &[u8], b: &[u8], sc: &Scoring) -> BestCell {
    let q = b.len();
    let mut h_prev = vec![0i64; q + 1];
    let mut h_cur = vec![0i64; q + 1];
    let mut f_prev = vec![OUT_OF_BAND; q + 1]; // F undefined above row 0
    let mut f_cur = vec![0i64; q + 1];
    let mut best: BestCell = (0, usize::MAX, usize::MAX);
    for (i, &ca) in a.iter().enumerate() {
        h_cur[0] = 0;
        let mut e = OUT_OF_BAND; // E undefined left of column 0
        for (j, &cb) in b.iter().enumerate() {
            e = h_cur[j]
                .saturating_sub(sc.gap_open)
                .max(e.saturating_sub(sc.gap_extend));
            let f = h_prev[j + 1]
                .saturating_sub(sc.gap_open)
                .max(f_prev[j + 1].saturating_sub(sc.gap_extend));
            let h = 0i64
                .max(h_prev[j].saturating_add(sc.subst.score(ca, cb)))
                .max(e)
                .max(f);
            h_cur[j + 1] = h;
            f_cur[j + 1] = f;
            if h > best.0 {
                best = (h, i, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }
    best
}

fn run_from(best: BestCell, stats: Stats) -> AlignRun {
    AlignRun {
        score: best.0,
        end: (best.0 > 0).then_some((best.1, best.2)),
        cycles: stats.cycles(),
        stats,
    }
}

fn single(
    a: &[u8],
    b: &[u8],
    band: Option<usize>,
    sc: &Scoring,
    affine: bool,
) -> Result<AlignRun, SdpError> {
    validate(&sc.subst, a)?;
    validate(&sc.subst, b)?;
    if a.is_empty() || b.is_empty() {
        return Ok(empty_run());
    }
    let best = if affine {
        gotoh_rows(a, b, sc)
    } else {
        sw_rows(a, b, band, sc)
    };
    Ok(run_from(best, mesh_stats(a.len(), b.len(), 1, band)))
}

fn batch(
    pairs: &[(&[u8], &[u8])],
    band: Option<usize>,
    sc: &Scoring,
    affine: bool,
) -> Result<BatchAlignRun, SdpError> {
    if pairs.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let (p, q) = (pairs[0].0.len(), pairs[0].1.len());
    for (index, (a, b)) in pairs.iter().enumerate() {
        if (a.len(), b.len()) != (p, q) {
            return Err(SdpError::BatchShapeMismatch { index });
        }
        validate(&sc.subst, a)?;
        validate(&sc.subst, b)?;
    }
    let bn = pairs.len();
    if p == 0 || q == 0 {
        return Ok(BatchAlignRun {
            scores: vec![0; bn],
            ends: vec![None; bn],
            cycles: 0,
            stats: Stats::new(0),
        });
    }
    let bests: Vec<BestCell> = pairs
        .iter()
        .map(|(a, b)| {
            if affine {
                gotoh_rows(a, b, sc)
            } else {
                sw_rows(a, b, band, sc)
            }
        })
        .collect();
    let stats = mesh_stats(p, q, bn, band);
    Ok(BatchAlignRun {
        scores: bests.iter().map(|b| b.0).collect(),
        ends: bests
            .iter()
            .map(|&b| (b.0 > 0).then_some((b.1, b.2)))
            .collect(),
        cycles: stats.cycles(),
        stats,
    })
}

/// Direct Smith–Waterman: bit-identical to `sdp_core::align::sw_mesh`
/// (score, endpoint, Stats) without simulating the mesh.
pub fn sw_direct(a: &[u8], b: &[u8], scoring: &Scoring) -> Result<AlignRun, SdpError> {
    single(a, b, None, scoring, false)
}

/// Direct banded Smith–Waterman: bit-identical to
/// `sdp_core::align::sw_banded_mesh`, including the relay cells' idle
/// busy counts and the empty-wavefront stall cycles.
pub fn sw_banded_direct(
    a: &[u8],
    b: &[u8],
    band: usize,
    scoring: &Scoring,
) -> Result<AlignRun, SdpError> {
    single(a, b, Some(band), scoring, false)
}

/// Direct Gotoh affine-gap alignment: bit-identical to
/// `sdp_core::align::gotoh_mesh`.
pub fn gotoh_direct(a: &[u8], b: &[u8], scoring: &Scoring) -> Result<AlignRun, SdpError> {
    single(a, b, None, scoring, true)
}

/// Direct batched Smith–Waterman: same results and typed errors as
/// `sdp_core::align::sw_mesh_batch` with the streamed mesh's Stats.
pub fn sw_direct_batch(
    pairs: &[(&[u8], &[u8])],
    scoring: &Scoring,
) -> Result<BatchAlignRun, SdpError> {
    batch(pairs, None, scoring, false)
}

/// Direct batched banded Smith–Waterman (one band for the batch).
pub fn sw_banded_direct_batch(
    pairs: &[(&[u8], &[u8])],
    band: usize,
    scoring: &Scoring,
) -> Result<BatchAlignRun, SdpError> {
    batch(pairs, Some(band), scoring, false)
}

/// Direct batched Gotoh.
pub fn gotoh_direct_batch(
    pairs: &[(&[u8], &[u8])],
    scoring: &Scoring,
) -> Result<BatchAlignRun, SdpError> {
    batch(pairs, None, scoring, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_core::align::{
        gotoh_mesh, gotoh_mesh_batch, sw_banded_mesh, sw_banded_mesh_batch, sw_mesh, sw_mesh_batch,
        try_sw_mesh,
    };

    fn word(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                b'a' + (s % 4) as u8
            })
            .collect()
    }

    fn scheme() -> Scoring {
        Scoring::simple(2, -1, 1)
    }

    #[test]
    fn sw_matches_sim_exactly() {
        for (la, lb) in [(0, 0), (0, 3), (4, 0), (1, 1), (6, 9), (17, 5)] {
            let (a, b) = (word(la as u64, la), word(100 + lb as u64, lb));
            let sim = sw_mesh(&a, &b, &scheme());
            let direct = sw_direct(&a, &b, &scheme()).unwrap();
            assert_eq!(direct, sim, "{la}x{lb}");
        }
    }

    #[test]
    fn banded_matches_sim_exactly_including_stalls() {
        for (la, lb, band) in [(6, 9, 0), (6, 9, 2), (17, 5, 1), (8, 8, 3), (9, 3, 20)] {
            let (a, b) = (word(la as u64, la), word(7 + lb as u64, lb));
            let sim = sw_banded_mesh(&a, &b, band, &scheme());
            let direct = sw_banded_direct(&a, &b, band, &scheme()).unwrap();
            assert_eq!(direct, sim, "{la}x{lb} band {band}");
            assert_eq!(direct.stats.stall_cycles(), sim.stats.stall_cycles());
        }
    }

    #[test]
    fn gotoh_matches_sim_exactly() {
        let sc = Scoring::affine(2, -3, 5, 1);
        for (la, lb) in [(1, 1), (6, 9), (11, 8), (17, 5)] {
            let (a, b) = (word(la as u64, la), word(300 + lb as u64, lb));
            let sim = gotoh_mesh(&a, &b, &sc);
            let direct = gotoh_direct(&a, &b, &sc).unwrap();
            assert_eq!(direct, sim, "{la}x{lb}");
        }
    }

    #[test]
    fn batches_match_sim_exactly() {
        let sc = scheme();
        let words: Vec<(Vec<u8>, Vec<u8>)> =
            (0..5u64).map(|s| (word(s, 6), word(50 + s, 8))).collect();
        let pairs: Vec<(&[u8], &[u8])> = words
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        assert_eq!(
            sw_direct_batch(&pairs, &sc).unwrap(),
            sw_mesh_batch(&pairs, &sc).unwrap()
        );
        assert_eq!(
            sw_banded_direct_batch(&pairs, 2, &sc).unwrap(),
            sw_banded_mesh_batch(&pairs, 2, &sc).unwrap()
        );
        let asc = Scoring::affine(2, -3, 5, 1);
        assert_eq!(
            gotoh_direct_batch(&pairs, &asc).unwrap(),
            gotoh_mesh_batch(&pairs, &asc).unwrap()
        );
    }

    #[test]
    fn errors_match_sim() {
        let sc = scheme();
        assert!(matches!(
            sw_direct_batch(&[], &sc),
            Err(SdpError::EmptyBatch)
        ));
        let pairs: Vec<(&[u8], &[u8])> = vec![(b"abc", b"de"), (b"ab", b"de")];
        assert_eq!(
            sw_direct_batch(&pairs, &sc).err(),
            sw_mesh_batch(&pairs, &sc).err()
        );
        let msc = Scoring::matrix(2, vec![3, -1, -1, 3], 1, 1, 1);
        assert_eq!(
            sw_direct(&[0, 2, 0], &[0, 1], &msc).err(),
            try_sw_mesh(&[0, 2, 0], &[0, 1], &msc).err()
        );
    }
}
