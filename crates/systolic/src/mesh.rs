//! A two-dimensional mesh of PEs with latched nearest-neighbour links.
//!
//! The divide-and-conquer analysis of §4 treats "a systolic array that
//! multiplies two matrices in T₁ time" as its unit of hardware; the
//! classic such array (Kung's design, the paper's reference \[17\]) is a
//! 2-D mesh where operands stream in from the west and north edges and
//! results accumulate in place.  This module provides the *engine* for
//! any such design: a rectangular grid of PEs where each PE reads the
//! words latched on its west and north links, computes, and drives its
//! east and south links — with the same two-phase (read-then-commit)
//! clock discipline as [`crate::array::LinearArray`].

// Grid/stage updates read clearer with explicit indices.
#![allow(clippy::needless_range_loop)]
use crate::instrument::Stats;
use sdp_fault::{FaultInjector, FaultyWord, SdpError};
use sdp_trace::{Event, NullSink, TraceSink};

/// One PE of a 2-D mesh.
pub trait MeshProcessingElement {
    /// Word type moving west → east.
    type Horiz: Copy;
    /// Word type moving north → south.
    type Vert: Copy;
    /// Broadcast control word.
    type Ctrl: Copy;

    /// One clock cycle: consume latched west/north words, produce
    /// east/south words (usually a pass-through plus local accumulate).
    fn step(
        &mut self,
        west: Option<Self::Horiz>,
        north: Option<Self::Vert>,
        ctrl: Self::Ctrl,
    ) -> (Option<Self::Horiz>, Option<Self::Vert>);

    /// Whether the previous `step` did useful work.
    fn was_busy(&self) -> bool {
        true
    }

    /// An observable register value for waveform export (usually the
    /// local accumulator).  `None` keeps the VCD value signal at `x`.
    fn probe(&self) -> Option<i64> {
        None
    }
}

/// A `rows × cols` mesh with latched links.
pub struct Mesh2D<P: MeshProcessingElement> {
    rows: usize,
    cols: usize,
    pes: Vec<P>,
    /// `h[r][c]` = word latched on the horizontal link *into* PE `(r, c)`;
    /// column index `cols` is the east edge output.
    h: Vec<Vec<Option<P::Horiz>>>,
    /// `v[r][c]` = word latched on the vertical link *into* PE `(r, c)`;
    /// row index `rows` is the south edge output.
    v: Vec<Vec<Option<P::Vert>>>,
    /// Double buffers for the link latches plus this cycle's edge
    /// injections — persistent so the cycle loop never allocates grid
    /// state (only the small per-cycle edge-output vectors it returns).
    h_next: Vec<Vec<Option<P::Horiz>>>,
    v_next: Vec<Vec<Option<P::Vert>>>,
    west_edge: Vec<Option<P::Horiz>>,
    north_edge: Vec<Option<P::Vert>>,
    stats: Stats,
}

impl<P: MeshProcessingElement> Mesh2D<P> {
    /// Builds a mesh from row-major PEs.
    pub fn new(rows: usize, cols: usize, pes: Vec<P>) -> Mesh2D<P> {
        Self::try_new(rows, cols, pes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a mesh, returning a typed [`SdpError`] instead of
    /// panicking on a zero dimension or a wrong PE count.
    pub fn try_new(rows: usize, cols: usize, pes: Vec<P>) -> Result<Mesh2D<P>, SdpError> {
        if rows == 0 || cols == 0 {
            return Err(SdpError::MeshDims { rows, cols });
        }
        if pes.len() != rows * cols {
            return Err(SdpError::PeCount {
                expected: rows * cols,
                got: pes.len(),
            });
        }
        Ok(Mesh2D {
            rows,
            cols,
            pes,
            h: vec![vec![None; cols + 1]; rows],
            v: vec![vec![None; cols]; rows + 1],
            h_next: vec![vec![None; cols + 1]; rows],
            v_next: vec![vec![None; cols]; rows + 1],
            west_edge: vec![None; rows],
            north_edge: vec![None; cols],
            stats: Stats::new(rows * cols),
        })
    }

    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to PE `(r, c)`.
    pub fn pe(&self, r: usize, c: usize) -> &P {
        &self.pes[r * self.cols + c]
    }

    /// Engine statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable engine statistics, for folding in co-simulated
    /// accounting.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Advances one clock cycle.
    ///
    /// * `west_in(r)` — word presented on row `r`'s west edge;
    /// * `north_in(c)` — word presented on column `c`'s north edge;
    /// * `ctrl(r, c)` — per-PE control word.
    ///
    /// Returns `(east_out, south_out)`: this cycle's edge outputs.
    #[allow(clippy::type_complexity)]
    pub fn cycle(
        &mut self,
        west_in: impl FnMut(usize) -> Option<P::Horiz>,
        north_in: impl FnMut(usize) -> Option<P::Vert>,
        ctrl: impl FnMut(usize, usize) -> P::Ctrl,
    ) -> (Vec<Option<P::Horiz>>, Vec<Option<P::Vert>>) {
        self.cycle_traced(west_in, north_in, ctrl, &mut NullSink)
    }

    /// [`cycle`](Self::cycle) with an event sink.  PE indices in the
    /// emitted events are row-major (`r * cols + c`); mesh latches are
    /// per-direction and internal, so no `LatchCommit` events are
    /// emitted — edge I/O appears as `WordIn`/`WordOut`.
    #[allow(clippy::type_complexity)]
    pub fn cycle_traced<S: TraceSink>(
        &mut self,
        west_in: impl FnMut(usize) -> Option<P::Horiz>,
        north_in: impl FnMut(usize) -> Option<P::Vert>,
        ctrl: impl FnMut(usize, usize) -> P::Ctrl,
        sink: &mut S,
    ) -> (Vec<Option<P::Horiz>>, Vec<Option<P::Vert>>) {
        self.cycle_core(west_in, north_in, ctrl, sink, |_, _, out, _| out)
    }

    /// [`cycle_traced`](Self::cycle_traced) with a [`FaultInjector`]
    /// deciding, per PE and cycle, whether the words the PE drives east
    /// and south are corrupted.  One injected fault corrupts both
    /// output latches of the PE (the classical single-PE failure
    /// model); with [`sdp_fault::NoFaults`] the hook folds away.
    #[allow(clippy::type_complexity)]
    pub fn cycle_fault_traced<S: TraceSink, F: FaultInjector>(
        &mut self,
        west_in: impl FnMut(usize) -> Option<P::Horiz>,
        north_in: impl FnMut(usize) -> Option<P::Vert>,
        ctrl: impl FnMut(usize, usize) -> P::Ctrl,
        injector: &mut F,
        sink: &mut S,
    ) -> (Vec<Option<P::Horiz>>, Vec<Option<P::Vert>>)
    where
        P::Horiz: FaultyWord,
        P::Vert: FaultyWord,
    {
        self.cycle_core(west_in, north_in, ctrl, sink, |pe, cycle, out, sink| {
            if F::ENABLED {
                let (east, south) = out;
                if east.is_some() || south.is_some() {
                    if let Some(fault) = injector.pe_fault(pe, cycle) {
                        if S::ENABLED {
                            sink.record(Event::FaultInjected {
                                kind: fault.kind(),
                                site: pe,
                            });
                        }
                        return (east.map(|w| w.apply(fault)), south.map(|w| w.apply(fault)));
                    }
                }
                return (east, south);
            }
            out
        })
    }

    /// The one true cycle body: `corrupt` observes each PE's
    /// `(east, south)` output pair and may replace it (identity on the
    /// fault-free path, where it inlines to nothing).
    #[allow(clippy::type_complexity)]
    fn cycle_core<S: TraceSink>(
        &mut self,
        mut west_in: impl FnMut(usize) -> Option<P::Horiz>,
        mut north_in: impl FnMut(usize) -> Option<P::Vert>,
        mut ctrl: impl FnMut(usize, usize) -> P::Ctrl,
        sink: &mut S,
        mut corrupt: impl FnMut(
            u32,
            u64,
            (Option<P::Horiz>, Option<P::Vert>),
            &mut S,
        ) -> (Option<P::Horiz>, Option<P::Vert>),
    ) -> (Vec<Option<P::Horiz>>, Vec<Option<P::Vert>>) {
        let (rows, cols) = (self.rows, self.cols);
        let now = self.stats.cycles();
        if S::ENABLED {
            sink.record(Event::CycleStart { cycle: now });
        }
        // Latch this cycle's edge injections; interior reads below use
        // the pre-cycle state still held in `h`/`v` while writes go to
        // the `*_next` double buffers — no per-cycle grid allocation.
        for r in 0..rows {
            self.west_edge[r] = west_in(r);
            if self.west_edge[r].is_some() {
                self.stats.record_input_word();
                if S::ENABLED {
                    sink.record(Event::WordIn);
                }
            }
        }
        for c in 0..cols {
            self.north_edge[c] = north_in(c);
            if self.north_edge[c].is_some() {
                self.stats.record_input_word();
                if S::ENABLED {
                    sink.record(Event::WordIn);
                }
            }
        }
        let mut any_busy = false;
        for r in 0..rows {
            for c in 0..cols {
                let west = if c == 0 {
                    self.west_edge[r]
                } else {
                    self.h[r][c]
                };
                let north = if r == 0 {
                    self.north_edge[c]
                } else {
                    self.v[r][c]
                };
                let pe = &mut self.pes[r * cols + c];
                let stepped = pe.step(west, north, ctrl(r, c));
                let (east, south) = corrupt((r * cols + c) as u32, now, stepped, &mut *sink);
                self.h_next[r][c + 1] = east;
                self.v_next[r + 1][c] = south;
                let busy = pe.was_busy();
                if busy {
                    self.stats.record_busy(r * cols + c);
                    any_busy = true;
                }
                if S::ENABLED {
                    sink.record(Event::PeFire {
                        pe: (r * cols + c) as u32,
                        busy,
                        value: pe.probe(),
                    });
                }
            }
        }
        // The west/north borders of the next state are edge-fed and never
        // written by the loop above; clear them before the swap.
        for r in 0..rows {
            self.h_next[r][0] = None;
        }
        for c in 0..cols {
            self.v_next[0][c] = None;
        }
        std::mem::swap(&mut self.h, &mut self.h_next);
        std::mem::swap(&mut self.v, &mut self.v_next);
        let east_out: Vec<_> = (0..rows).map(|r| self.h[r][cols]).collect();
        let south_out: Vec<_> = (0..cols).map(|c| self.v[rows][c]).collect();
        let out_words = east_out.iter().filter(|w| w.is_some()).count()
            + south_out.iter().filter(|w| w.is_some()).count();
        for _ in 0..out_words {
            self.stats.record_output_word();
            if S::ENABLED {
                sink.record(Event::WordOut);
            }
        }
        self.stats.record_cycle();
        if !any_busy {
            self.stats.record_stall_cycle();
        }
        (east_out, south_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pass-through PE: words cross the mesh unchanged.
    #[derive(Default)]
    struct Cross {
        busy: bool,
    }

    impl MeshProcessingElement for Cross {
        type Horiz = u32;
        type Vert = u32;
        type Ctrl = ();
        fn step(
            &mut self,
            west: Option<u32>,
            north: Option<u32>,
            _: (),
        ) -> (Option<u32>, Option<u32>) {
            self.busy = west.is_some() || north.is_some();
            (west, north)
        }
        fn was_busy(&self) -> bool {
            self.busy
        }
    }

    fn mesh(rows: usize, cols: usize) -> Mesh2D<Cross> {
        Mesh2D::new(
            rows,
            cols,
            (0..rows * cols).map(|_| Cross::default()).collect(),
        )
    }

    #[test]
    fn horizontal_word_crosses_in_cols_cycles() {
        let mut m = mesh(2, 3);
        let (e, _) = m.cycle(|r| (r == 0).then_some(7), |_| None, |_, _| ());
        assert_eq!(e, vec![None, None]);
        let (e, _) = m.cycle(|_| None, |_| None, |_, _| ());
        assert_eq!(e, vec![None, None]);
        let (e, _) = m.cycle(|_| None, |_| None, |_, _| ());
        assert_eq!(e, vec![Some(7), None]);
    }

    #[test]
    fn vertical_word_crosses_in_rows_cycles() {
        let mut m = mesh(2, 3);
        m.cycle(|_| None, |c| (c == 2).then_some(9), |_, _| ());
        let (_, s) = m.cycle(|_| None, |_| None, |_, _| ());
        assert_eq!(s, vec![None, None, Some(9)]);
    }

    #[test]
    fn streams_do_not_interfere() {
        let mut m = mesh(2, 2);
        // inject both directions simultaneously on all edges
        m.cycle(|r| Some(10 + r as u32), |c| Some(20 + c as u32), |_, _| ());
        let (e, s) = m.cycle(|_| None, |_| None, |_, _| ());
        assert_eq!(e, vec![Some(10), Some(11)]);
        assert_eq!(s, vec![Some(20), Some(21)]);
    }

    #[test]
    fn stats_track_io_and_busy() {
        let mut m = mesh(2, 2);
        m.cycle(|_| Some(1), |_| Some(2), |_, _| ());
        let u = m.stats();
        assert_eq!(u.input_words(), 4);
        assert_eq!(u.cycles(), 1);
        // first column + first row PEs busy: (0,0) got both, (0,1) got
        // vertical, (1,0) got horizontal -> 3 busy, (1,1) idle
        let busy: u64 = (0..4).map(|i| u.busy(i)).sum();
        assert_eq!(busy, 3);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn wrong_pe_count_rejected() {
        let _ = Mesh2D::new(2, 2, vec![Cross::default()]);
    }

    #[test]
    fn try_new_reports_shape_errors() {
        use sdp_fault::SdpError;
        assert!(matches!(
            Mesh2D::<Cross>::try_new(0, 2, vec![]),
            Err(SdpError::MeshDims { rows: 0, cols: 2 })
        ));
        assert!(matches!(
            Mesh2D::try_new(2, 2, vec![Cross::default()]),
            Err(SdpError::PeCount {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn injected_mesh_fault_corrupts_crossing_word() {
        use sdp_fault::{Fault, FaultPlan, NoFaults, PlanInjector};
        use sdp_trace::CountingSink;
        let plan = FaultPlan::new().with(Fault::StuckAt {
            pe: 0,
            cycle: 0,
            value: 99,
        });
        let mut inj = PlanInjector::new(plan);
        let mut sink = CountingSink::default();
        let mut m = mesh(1, 2);
        m.cycle_fault_traced(|_| Some(7u32), |_| None, |_, _| (), &mut inj, &mut sink);
        let (e, _) = m.cycle_fault_traced(|_| None, |_| None, |_, _| (), &mut inj, &mut sink);
        // PE (0,0) is stuck: the word arrives at the east edge as 99.
        assert_eq!(e, vec![Some(99)]);
        assert!(sink.faults_injected >= 1);

        // NoFaults is the identity.
        let mut plain = mesh(1, 2);
        let mut clean = mesh(1, 2);
        plain.cycle(|_| Some(7u32), |_| None, |_, _| ());
        clean.cycle_fault_traced(
            |_| Some(7u32),
            |_| None,
            |_, _| (),
            &mut NoFaults,
            &mut sdp_trace::NullSink,
        );
        assert_eq!(plain.stats(), clean.stats());
    }

    #[test]
    fn traced_mesh_counts_match_stats() {
        use sdp_trace::CountingSink;
        let mut m = mesh(2, 2);
        let mut sink = CountingSink::default();
        m.cycle_traced(|_| Some(1), |_| Some(2), |_, _| (), &mut sink);
        m.cycle_traced(|_| None, |_| None, |_, _| (), &mut sink);
        let s = m.stats();
        assert_eq!(sink.cycles, s.cycles());
        assert_eq!(sink.words_in, s.input_words());
        assert_eq!(sink.words_out, s.output_words());
        assert_eq!(sink.pe_fires, 8); // 4 PEs × 2 cycles
        assert_eq!(sink.busy_fires, (0..4).map(|i| s.busy(i)).sum::<u64>());
    }
}
