//! Broadcast bus with a circulating pick-up token.
//!
//! §3.2 of the paper notes that although Figure 5 draws `m` distinct
//! feedback lines, "only one of the feedback lines is used in any
//! iteration.  Hence a single broadcast bus suffices, and the station to
//! pick up the data from the bus is controlled by a circulating token."
//! [`TokenBus`] models exactly that: one word per cycle, delivered to the
//! single PE currently holding the token, with the token advancing
//! round-robin.
//!
//! Bus accounting lives in the shared [`Stats`] registry rather than in
//! private counters, so a design's bus-word and token-rotation claims
//! (§3.2's I/O analysis) are verifiable from the same report as its
//! cycle and utilization numbers: use the `*_traced` variants and pass
//! the owning array's `stats_mut()`.

use crate::instrument::Stats;
use sdp_trace::{Event, NullSink, TraceSink};

/// A single-word broadcast bus with a circulating pick-up token over `m`
/// stations.
#[derive(Clone, Debug)]
pub struct TokenBus<W> {
    m: usize,
    token: usize,
    word: Option<W>,
}

impl<W: Copy> TokenBus<W> {
    /// A bus over `m` stations; the token starts at station 0.
    pub fn new(m: usize) -> TokenBus<W> {
        assert!(m > 0, "bus needs at least one station");
        TokenBus {
            m,
            token: 0,
            word: None,
        }
    }

    /// Number of stations.
    pub fn stations(&self) -> usize {
        self.m
    }

    /// The station currently holding the token.
    pub fn token_at(&self) -> usize {
        self.token
    }

    /// Drives `word` onto the bus for the current cycle.
    pub fn drive(&mut self, word: W) {
        self.drive_traced(word, &mut NullSink);
    }

    /// [`drive`](Self::drive) with an event sink.
    pub fn drive_traced<S: TraceSink>(&mut self, word: W, sink: &mut S) {
        if S::ENABLED {
            sink.record(Event::BusDrive {
                station: self.token as u32,
            });
        }
        self.word = Some(word);
    }

    /// Completes the cycle: delivers the driven word (if any) to the token
    /// holder, clears the bus, and advances the token **only when a word
    /// was delivered** (the token marks the next station awaiting data).
    ///
    /// Returns `Some((station, word))` when a delivery happened.
    pub fn settle(&mut self) -> Option<(usize, W)> {
        let mut untracked = Stats::new(0);
        self.settle_traced(&mut untracked, &mut NullSink)
    }

    /// [`settle`](Self::settle) that folds delivery and token-rotation
    /// accounting into `stats` and reports the events to `sink`.
    pub fn settle_traced<S: TraceSink>(
        &mut self,
        stats: &mut Stats,
        sink: &mut S,
    ) -> Option<(usize, W)> {
        self.word.take().map(|w| {
            let st = self.token;
            self.token = (self.token + 1) % self.m;
            stats.record_bus_word();
            stats.record_token_rotation();
            if S::ENABLED {
                sink.record(Event::BusDeliver { station: st as u32 });
                sink.record(Event::TokenAdvance {
                    from: st as u32,
                    to: self.token as u32,
                });
            }
            (st, w)
        })
    }

    /// Resets the token to station 0 (e.g. between matrix boundaries).
    pub fn reset_token(&mut self) {
        self.token = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_trace::CountingSink;

    #[test]
    fn round_robin_delivery() {
        let mut bus = TokenBus::new(3);
        let mut stats = Stats::new(3);
        let mut sink = NullSink;
        bus.drive(10);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((0, 10)));
        bus.drive(11);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((1, 11)));
        bus.drive(12);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((2, 12)));
        bus.drive(13);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((0, 13))); // wrapped
        assert_eq!(stats.bus_words(), 4);
        assert_eq!(stats.token_rotations(), 4);
    }

    #[test]
    fn idle_cycle_does_not_advance_token() {
        let mut bus = TokenBus::<u32>::new(2);
        assert_eq!(bus.settle(), None);
        assert_eq!(bus.token_at(), 0);
        bus.drive(5);
        assert_eq!(bus.settle(), Some((0, 5)));
        assert_eq!(bus.token_at(), 1);
    }

    #[test]
    fn idle_settle_records_nothing() {
        let mut bus = TokenBus::<u32>::new(2);
        let mut stats = Stats::new(2);
        let mut sink = CountingSink::default();
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), None);
        assert_eq!(stats.bus_words(), 0);
        assert_eq!(stats.token_rotations(), 0);
        assert_eq!(sink.bus_delivers, 0);
        assert_eq!(sink.token_advances, 0);
    }

    #[test]
    fn bus_word_is_cleared_after_settle() {
        let mut bus = TokenBus::new(2);
        bus.drive(1);
        bus.settle();
        assert_eq!(bus.settle(), None);
    }

    #[test]
    fn reset_token() {
        let mut bus = TokenBus::new(3);
        bus.drive(1);
        bus.settle();
        bus.drive(2);
        bus.settle();
        bus.reset_token();
        assert_eq!(bus.token_at(), 0);
    }

    #[test]
    fn traced_bus_emits_drive_deliver_advance() {
        let mut bus = TokenBus::new(2);
        let mut stats = Stats::new(2);
        let mut sink = CountingSink::default();
        bus.drive_traced(7, &mut sink);
        let delivered = bus.settle_traced(&mut stats, &mut sink);
        assert_eq!(delivered, Some((0, 7)));
        assert_eq!(sink.bus_drives, 1);
        assert_eq!(sink.bus_delivers, 1);
        assert_eq!(sink.token_advances, 1);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_station_bus_rejected() {
        let _ = TokenBus::<u8>::new(0);
    }
}
