//! Broadcast bus with a circulating pick-up token.
//!
//! §3.2 of the paper notes that although Figure 5 draws `m` distinct
//! feedback lines, "only one of the feedback lines is used in any
//! iteration.  Hence a single broadcast bus suffices, and the station to
//! pick up the data from the bus is controlled by a circulating token."
//! [`TokenBus`] models exactly that: one word per cycle, delivered to the
//! single PE currently holding the token, with the token advancing
//! round-robin.
//!
//! Bus accounting lives in the shared [`Stats`] registry rather than in
//! private counters, so a design's bus-word and token-rotation claims
//! (§3.2's I/O analysis) are verifiable from the same report as its
//! cycle and utilization numbers: use the `*_traced` variants and pass
//! the owning array's `stats_mut()`.

use crate::instrument::Stats;
use sdp_fault::{BusFault, FaultInjector, FaultyWord, SdpError};
use sdp_trace::{Event, FaultKind, NullSink, TraceSink};

/// A single-word broadcast bus with a circulating pick-up token over `m`
/// stations.
#[derive(Clone, Debug)]
pub struct TokenBus<W> {
    m: usize,
    token: usize,
    word: Option<W>,
    /// Words driven so far (the ordinal fault plans target).
    driven: u64,
    /// Deliveries attempted so far (the token-rotation ordinal).
    deliveries: u64,
}

impl<W: Copy> TokenBus<W> {
    /// A bus over `m` stations; the token starts at station 0.
    pub fn new(m: usize) -> TokenBus<W> {
        Self::try_new(m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`new`](Self::new), returning [`SdpError::EmptyBus`] instead of
    /// panicking when `m` is zero.
    pub fn try_new(m: usize) -> Result<TokenBus<W>, SdpError> {
        if m == 0 {
            return Err(SdpError::EmptyBus);
        }
        Ok(TokenBus {
            m,
            token: 0,
            word: None,
            driven: 0,
            deliveries: 0,
        })
    }

    /// Number of stations.
    pub fn stations(&self) -> usize {
        self.m
    }

    /// The station currently holding the token.
    pub fn token_at(&self) -> usize {
        self.token
    }

    /// Drives `word` onto the bus for the current cycle.
    pub fn drive(&mut self, word: W) {
        self.drive_traced(word, &mut NullSink);
    }

    /// [`drive`](Self::drive) with an event sink.
    pub fn drive_traced<S: TraceSink>(&mut self, word: W, sink: &mut S) {
        if S::ENABLED {
            sink.record(Event::BusDrive {
                station: self.token as u32,
            });
        }
        self.word = Some(word);
        self.driven += 1;
    }

    /// Completes the cycle: delivers the driven word (if any) to the token
    /// holder, clears the bus, and advances the token **only when a word
    /// was delivered** (the token marks the next station awaiting data).
    ///
    /// Returns `Some((station, word))` when a delivery happened.
    pub fn settle(&mut self) -> Option<(usize, W)> {
        let mut untracked = Stats::new(0);
        self.settle_traced(&mut untracked, &mut NullSink)
    }

    /// [`settle`](Self::settle) that folds delivery and token-rotation
    /// accounting into `stats` and reports the events to `sink`.
    pub fn settle_traced<S: TraceSink>(
        &mut self,
        stats: &mut Stats,
        sink: &mut S,
    ) -> Option<(usize, W)> {
        self.word.take().map(|w| {
            let st = self.token;
            self.token = (self.token + 1) % self.m;
            self.deliveries += 1;
            stats.record_bus_word();
            stats.record_token_rotation();
            if S::ENABLED {
                sink.record(Event::BusDeliver { station: st as u32 });
                sink.record(Event::TokenAdvance {
                    from: st as u32,
                    to: self.token as u32,
                });
            }
            (st, w)
        })
    }

    /// [`settle_traced`](Self::settle_traced) with a [`FaultInjector`]
    /// that may drop or corrupt the driven word, or lose the token
    /// rotation (the word is delivered but the token stays put).  A
    /// dropped word advances nothing: the token still marks the station
    /// awaiting data.  With [`sdp_fault::NoFaults`] this is exactly
    /// `settle_traced`.
    pub fn settle_fault_traced<S: TraceSink, F: FaultInjector>(
        &mut self,
        stats: &mut Stats,
        injector: &mut F,
        sink: &mut S,
    ) -> Option<(usize, W)>
    where
        W: FaultyWord,
    {
        if !F::ENABLED {
            return self.settle_traced(stats, sink);
        }
        let mut word = self.word.take()?;
        // Ordinal of the word currently on the bus (0-based).
        match injector.bus_fault(self.driven - 1) {
            Some(fault @ BusFault::Drop) => {
                if S::ENABLED {
                    sink.record(Event::FaultInjected {
                        kind: fault.kind(),
                        site: self.token as u32,
                    });
                }
                return None;
            }
            Some(fault @ BusFault::FlipBit(bit)) => {
                if S::ENABLED {
                    sink.record(Event::FaultInjected {
                        kind: fault.kind(),
                        site: self.token as u32,
                    });
                }
                word = word.flip_bit(bit);
            }
            None => {}
        }
        let st = self.token;
        let lost = injector.token_lost(self.deliveries);
        self.deliveries += 1;
        stats.record_bus_word();
        if S::ENABLED {
            sink.record(Event::BusDeliver { station: st as u32 });
        }
        if lost {
            if S::ENABLED {
                sink.record(Event::FaultInjected {
                    kind: FaultKind::LostToken,
                    site: st as u32,
                });
            }
        } else {
            self.token = (self.token + 1) % self.m;
            stats.record_token_rotation();
            if S::ENABLED {
                sink.record(Event::TokenAdvance {
                    from: st as u32,
                    to: self.token as u32,
                });
            }
        }
        Some((st, word))
    }

    /// Resets the token to station 0 (e.g. between matrix boundaries).
    pub fn reset_token(&mut self) {
        self.token = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_trace::CountingSink;

    #[test]
    fn round_robin_delivery() {
        let mut bus = TokenBus::new(3);
        let mut stats = Stats::new(3);
        let mut sink = NullSink;
        bus.drive(10);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((0, 10)));
        bus.drive(11);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((1, 11)));
        bus.drive(12);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((2, 12)));
        bus.drive(13);
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), Some((0, 13))); // wrapped
        assert_eq!(stats.bus_words(), 4);
        assert_eq!(stats.token_rotations(), 4);
    }

    #[test]
    fn idle_cycle_does_not_advance_token() {
        let mut bus = TokenBus::<u32>::new(2);
        assert_eq!(bus.settle(), None);
        assert_eq!(bus.token_at(), 0);
        bus.drive(5);
        assert_eq!(bus.settle(), Some((0, 5)));
        assert_eq!(bus.token_at(), 1);
    }

    #[test]
    fn idle_settle_records_nothing() {
        let mut bus = TokenBus::<u32>::new(2);
        let mut stats = Stats::new(2);
        let mut sink = CountingSink::default();
        assert_eq!(bus.settle_traced(&mut stats, &mut sink), None);
        assert_eq!(stats.bus_words(), 0);
        assert_eq!(stats.token_rotations(), 0);
        assert_eq!(sink.bus_delivers, 0);
        assert_eq!(sink.token_advances, 0);
    }

    #[test]
    fn bus_word_is_cleared_after_settle() {
        let mut bus = TokenBus::new(2);
        bus.drive(1);
        bus.settle();
        assert_eq!(bus.settle(), None);
    }

    #[test]
    fn reset_token() {
        let mut bus = TokenBus::new(3);
        bus.drive(1);
        bus.settle();
        bus.drive(2);
        bus.settle();
        bus.reset_token();
        assert_eq!(bus.token_at(), 0);
    }

    #[test]
    fn traced_bus_emits_drive_deliver_advance() {
        let mut bus = TokenBus::new(2);
        let mut stats = Stats::new(2);
        let mut sink = CountingSink::default();
        bus.drive_traced(7, &mut sink);
        let delivered = bus.settle_traced(&mut stats, &mut sink);
        assert_eq!(delivered, Some((0, 7)));
        assert_eq!(sink.bus_drives, 1);
        assert_eq!(sink.bus_delivers, 1);
        assert_eq!(sink.token_advances, 1);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_station_bus_rejected() {
        let _ = TokenBus::<u8>::new(0);
    }

    #[test]
    fn try_new_reports_empty_bus() {
        use sdp_fault::SdpError;
        assert!(matches!(
            TokenBus::<u8>::try_new(0),
            Err(SdpError::EmptyBus)
        ));
        assert!(TokenBus::<u8>::try_new(1).is_ok());
    }

    #[test]
    fn dropped_word_leaves_token_in_place() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        let plan = FaultPlan::new().with(Fault::DropBusWord { word: 1 });
        let mut inj = PlanInjector::new(plan);
        let mut bus = TokenBus::new(3);
        let mut stats = Stats::new(3);
        let mut sink = CountingSink::default();
        bus.drive(10u64);
        assert_eq!(
            bus.settle_fault_traced(&mut stats, &mut inj, &mut sink),
            Some((0, 10))
        );
        bus.drive(11);
        // Word ordinal 1 is dropped: no delivery, token stays at 1.
        assert_eq!(
            bus.settle_fault_traced(&mut stats, &mut inj, &mut sink),
            None
        );
        assert_eq!(bus.token_at(), 1);
        bus.drive(12);
        assert_eq!(
            bus.settle_fault_traced(&mut stats, &mut inj, &mut sink),
            Some((1, 12))
        );
        assert_eq!(stats.bus_words(), 2);
        assert_eq!(sink.faults_injected, 1);
    }

    #[test]
    fn corrupt_word_and_lost_token() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        let plan = FaultPlan::new()
            .with(Fault::CorruptBusWord { word: 0, bit: 0 })
            .with(Fault::LoseTokenRotation { rotation: 1 });
        let mut inj = PlanInjector::new(plan);
        let mut bus = TokenBus::new(2);
        let mut stats = Stats::new(2);
        let mut sink = CountingSink::default();
        bus.drive(4u64);
        // Bit 0 flipped on delivery.
        assert_eq!(
            bus.settle_fault_traced(&mut stats, &mut inj, &mut sink),
            Some((0, 5))
        );
        assert_eq!(bus.token_at(), 1);
        bus.drive(6);
        // Rotation 1 is lost: word delivered, token stays put.
        assert_eq!(
            bus.settle_fault_traced(&mut stats, &mut inj, &mut sink),
            Some((1, 6))
        );
        assert_eq!(bus.token_at(), 1);
        assert_eq!(stats.token_rotations(), 1);
        assert_eq!(sink.faults_injected, 2);
        assert_eq!(sink.token_advances, 1);
    }

    #[test]
    fn no_faults_settle_matches_plain() {
        use sdp_fault::NoFaults;
        let mut a = TokenBus::new(3);
        let mut b = TokenBus::new(3);
        let mut stats_a = Stats::new(3);
        let mut stats_b = Stats::new(3);
        for w in 0..5u64 {
            a.drive(w);
            b.drive(w);
            let pa = a.settle_traced(&mut stats_a, &mut NullSink);
            let pb = b.settle_fault_traced(&mut stats_b, &mut NoFaults, &mut NullSink);
            assert_eq!(pa, pb);
        }
        assert_eq!(stats_a, stats_b);
    }
}
