//! Cycle, busy-PE, and I/O-word accounting.
//!
//! The paper's quality metric is *processor utilization*
//! `PU = serial iterations / (parallel iterations × processors)` (Eq. 9).
//! [`Stats`] records the denominator side from the simulation (cycles ×
//! PEs, and the fraction of PE-cycles actually busy); callers combine it
//! with a serial-iteration count to report PU.

/// Instrumentation for one simulated array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stats {
    cycles: u64,
    busy: Vec<u64>,
    input_words: u64,
    output_words: u64,
    bus_words: u64,
    token_rotations: u64,
    stall_cycles: u64,
}

/// A utilization report derived from [`Stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Utilization {
    /// Fraction of PE-cycles that were busy, in `[0, 1]`.
    pub overall: f64,
    /// Total PE-cycles (cycles × number of PEs).
    pub pe_cycles: u64,
    /// Total busy PE-cycles.
    pub busy_pe_cycles: u64,
}

impl Stats {
    /// Fresh statistics for an array of `m` PEs.
    pub fn new(m: usize) -> Stats {
        Stats {
            cycles: 0,
            busy: vec![0; m],
            input_words: 0,
            output_words: 0,
            bus_words: 0,
            token_rotations: 0,
            stall_cycles: 0,
        }
    }

    /// Builds a [`Stats`] from closed-form counts instead of a
    /// simulation.  Direct-execution backends use this to report the
    /// paper's analytic cycle/word formulas (Eq. 9, N·m, Thm 1) in the
    /// same shape the cycle-accurate engines measure, so downstream
    /// consumers cannot tell the two apart.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        cycles: u64,
        busy: Vec<u64>,
        input_words: u64,
        output_words: u64,
        bus_words: u64,
        token_rotations: u64,
        stall_cycles: u64,
    ) -> Stats {
        Stats {
            cycles,
            busy,
            input_words,
            output_words,
            bus_words,
            token_rotations,
            stall_cycles,
        }
    }

    /// Number of PEs being tracked.
    pub fn num_pes(&self) -> usize {
        self.busy.len()
    }

    /// Total clock cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Busy-cycle count of PE `i`.
    pub fn busy(&self, i: usize) -> u64 {
        self.busy[i]
    }

    /// Words accepted on the head link.
    pub fn input_words(&self) -> u64 {
        self.input_words
    }

    /// Words emitted from the tail link.
    pub fn output_words(&self) -> u64 {
        self.output_words
    }

    /// Words delivered over the shared broadcast bus (§3.2).
    pub fn bus_words(&self) -> u64 {
        self.bus_words
    }

    /// Times the circulating pick-up token advanced to a new station.
    pub fn token_rotations(&self) -> u64 {
        self.token_rotations
    }

    /// Cycles in which no PE did useful work (pipeline bubbles).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Records one elapsed cycle.
    pub fn record_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Records that PE `i` did useful work this cycle.
    pub fn record_busy(&mut self, i: usize) {
        self.busy[i] += 1;
    }

    /// Records a word entering the array.
    pub fn record_input_word(&mut self) {
        self.input_words += 1;
    }

    /// Records a word leaving the array.
    pub fn record_output_word(&mut self) {
        self.output_words += 1;
    }

    /// Records a word delivered over the shared broadcast bus.
    pub fn record_bus_word(&mut self) {
        self.bus_words += 1;
    }

    /// Records an advance of the circulating pick-up token.
    pub fn record_token_rotation(&mut self) {
        self.token_rotations += 1;
    }

    /// Records a cycle in which no PE did useful work.
    pub fn record_stall_cycle(&mut self) {
        self.stall_cycles += 1;
    }

    /// Derives the utilization report.
    pub fn utilization(&self) -> Utilization {
        let pe_cycles = self.cycles * self.busy.len() as u64;
        let busy_pe_cycles: u64 = self.busy.iter().sum();
        Utilization {
            overall: if pe_cycles == 0 {
                0.0
            } else {
                busy_pe_cycles as f64 / pe_cycles as f64
            },
            pe_cycles,
            busy_pe_cycles,
        }
    }

    /// Processor utilization in the paper's sense (Eq. 9): the number of
    /// iterations a single processor would need, divided by
    /// (parallel cycles × number of PEs).
    pub fn processor_utilization(&self, serial_iterations: u64) -> f64 {
        let denom = self.cycles * self.busy.len() as u64;
        if denom == 0 {
            0.0
        } else {
            serial_iterations as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_all_busy() {
        let mut s = Stats::new(2);
        for _ in 0..4 {
            s.record_cycle();
            s.record_busy(0);
            s.record_busy(1);
        }
        let u = s.utilization();
        assert_eq!(u.overall, 1.0);
        assert_eq!(u.pe_cycles, 8);
        assert_eq!(u.busy_pe_cycles, 8);
    }

    #[test]
    fn utilization_empty() {
        let s = Stats::new(3);
        assert_eq!(s.utilization().overall, 0.0);
        assert_eq!(s.processor_utilization(100), 0.0);
    }

    #[test]
    fn processor_utilization_matches_eq9_shape() {
        // m=3 PEs, N·m = 12 cycles, serial (N-2)m²+m = 2*9+3 = 21 (N=4).
        let mut s = Stats::new(3);
        for _ in 0..12 {
            s.record_cycle();
        }
        let pu = s.processor_utilization(21);
        let expected = 21.0 / (12.0 * 3.0);
        assert!((pu - expected).abs() < 1e-12);
    }

    #[test]
    fn io_word_counts() {
        let mut s = Stats::new(1);
        s.record_input_word();
        s.record_input_word();
        s.record_output_word();
        assert_eq!(s.input_words(), 2);
        assert_eq!(s.output_words(), 1);
    }

    #[test]
    fn bus_and_stall_counters() {
        let mut s = Stats::new(2);
        assert_eq!(
            (s.bus_words(), s.token_rotations(), s.stall_cycles()),
            (0, 0, 0)
        );
        s.record_bus_word();
        s.record_bus_word();
        s.record_token_rotation();
        s.record_stall_cycle();
        assert_eq!(s.bus_words(), 2);
        assert_eq!(s.token_rotations(), 1);
        assert_eq!(s.stall_cycles(), 1);
    }
}
