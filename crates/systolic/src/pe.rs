//! The processing-element interface.
//!
//! A systolic PE is a small finite-state machine: on every clock cycle it
//! reads the word latched on its left link, an external (off-array) input,
//! and a broadcast control word; it updates its internal registers and
//! drives its right link.  The trait keeps the step function *combinational
//! with respect to the latched inputs*: a PE never observes a neighbour's
//! same-cycle output, which is what makes the simulation faithful to a
//! clocked array.

/// One systolic processing element.
///
/// Type parameters are associated so concrete designs (Figs. 3, 4, 5 of the
/// paper) can pick their own word formats while sharing the
/// [`LinearArray`](crate::array::LinearArray) driver.
pub trait ProcessingElement {
    /// Word type carried on the inter-PE links (left-to-right).
    type Flow: Copy;
    /// Per-cycle external input delivered directly to this PE
    /// (e.g. a matrix element streamed from off-chip).
    type Ext: Copy;
    /// Broadcast control word (e.g. the paper's FIRST/ODD/MOVE signals).
    type Ctrl: Copy;

    /// Executes one clock cycle.
    ///
    /// * `flow_in` — the word latched on the left link at the end of the
    ///   previous cycle (`None` when the link carried nothing);
    /// * `ext` — this cycle's external input;
    /// * `ctrl` — this cycle's control word.
    ///
    /// Returns the word to latch onto the right link for the next cycle.
    fn step(
        &mut self,
        flow_in: Option<Self::Flow>,
        ext: Self::Ext,
        ctrl: Self::Ctrl,
    ) -> Option<Self::Flow>;

    /// Whether the PE performed useful work this cycle (for utilization
    /// accounting).  Implementations should report the *previous* `step`'s
    /// activity; the driver queries it right after stepping.
    fn was_busy(&self) -> bool {
        true
    }

    /// An observable register value for waveform export, when the PE has
    /// a natural one (e.g. its accumulator).  `None` keeps the PE's
    /// value signal at `x` in VCD dumps.
    fn probe(&self) -> Option<i64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A PE that adds 1 to whatever flows through, for trait smoke tests.
    struct Inc {
        busy: bool,
    }

    impl ProcessingElement for Inc {
        type Flow = i64;
        type Ext = ();
        type Ctrl = ();
        fn step(&mut self, flow_in: Option<i64>, _: (), _: ()) -> Option<i64> {
            self.busy = flow_in.is_some();
            flow_in.map(|v| v + 1)
        }
        fn was_busy(&self) -> bool {
            self.busy
        }
    }

    #[test]
    fn pe_step_and_busy() {
        let mut pe = Inc { busy: false };
        assert_eq!(pe.step(Some(41), (), ()), Some(42));
        assert!(pe.was_busy());
        assert_eq!(pe.step(None, (), ()), None);
        assert!(!pe.was_busy());
    }
}
