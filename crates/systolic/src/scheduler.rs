//! Discrete-time scheduling of divide-and-conquer AND-trees onto `K`
//! synchronous systolic arrays (§4 of the paper).
//!
//! A string of `N` matrices is multiplied as a complete binary AND-tree
//! with `N` leaves and `N − 1` internal multiply tasks.  Each of `K`
//! identical systolic arrays performs one multiply in `T₁` time units.
//! The paper analyses this model three ways, all reproduced here:
//!
//! * [`eq29_time`] — the paper's exact total-time formula (Eq. 29), the
//!   function numerically evaluated to produce **Figure 6**;
//! * [`TreeScheduler::simulate`] — a synchronous-round greedy simulation of
//!   the same model (operands pair up, at most `K` products per round),
//!   used to cross-check the formula and to measure PU for
//!   **Proposition 1**;
//! * [`DagScheduler`] — a list scheduler for arbitrary dependency DAGs with
//!   per-task durations, used when matrices have unequal dimensions and the
//!   multiply tree becomes a dataflow graph (end of §4).

use sdp_fault::SdpError;
use sdp_trace::chrome::ChromeTrace;
use sdp_trace::json::Json;
use sdp_trace::{Event, NullSink, TraceSink};

/// The outcome of scheduling one divide-and-conquer reduction.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Number of leaves (matrices) `N`.
    pub n: u64,
    /// Number of arrays (processors) `K`.
    pub k: u64,
    /// Total rounds (in units of `T₁`).
    pub rounds: u64,
    /// Rounds in the computation phase (all `K` arrays busy).
    pub computation_rounds: u64,
    /// Rounds in the wind-down phase (fewer than `K` tasks available).
    pub winddown_rounds: u64,
    /// Tasks executed per round, in order.
    pub tasks_per_round: Vec<u64>,
}

impl Schedule {
    /// Total multiply tasks executed (always `N − 1`).
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_round.iter().sum()
    }

    /// Processor utilization `PU(k, N) = (N−1) / (k · rounds)` (Eq. 20).
    pub fn processor_utilization(&self) -> f64 {
        if self.rounds == 0 || self.k == 0 {
            return if self.n <= 1 { 1.0 } else { 0.0 };
        }
        (self.n - 1) as f64 / (self.k * self.rounds) as f64
    }

    /// The `K·T²` figure of merit swept in Figure 6 (with `T₁ = 1`).
    pub fn kt2(&self) -> u64 {
        self.k * self.rounds * self.rounds
    }

    /// Renders the schedule as a Chrome trace: one duration event per
    /// multiply task, with rounds as the microsecond clock and arrays as
    /// thread lanes.  Wind-down rounds are tagged in the event args so
    /// Perfetto can distinguish the two phases of Eq. 29.
    pub fn to_chrome_trace(&self) -> ChromeTrace {
        let mut trace = ChromeTrace::new();
        for (round, &tasks) in self.tasks_per_round.iter().enumerate() {
            let winddown = tasks < self.k;
            for slot in 0..tasks {
                trace.complete_with_args(
                    "multiply",
                    if winddown { "winddown" } else { "computation" },
                    round as u64,
                    1,
                    0,
                    slot as u32,
                    vec![
                        ("round".to_string(), Json::from(round)),
                        ("winddown".to_string(), Json::from(winddown)),
                    ],
                );
            }
        }
        trace
    }
}

/// Scheduler for the regular (equal-dimension) matrix string.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeScheduler;

impl TreeScheduler {
    /// Greedy synchronous-round simulation: `R` operands are live
    /// (initially the `N` leaves); each round at most `min(K, ⌊R/2⌋)`
    /// disjoint pairs are multiplied, each consuming two operands and
    /// producing one.  Runs until a single result remains.
    pub fn simulate(&self, n: u64, k: u64) -> Schedule {
        self.simulate_traced(n, k, &mut NullSink)
    }

    /// [`simulate`](Self::simulate) with an event sink: each round emits
    /// a `CycleStart`, and every multiply task emits a matching
    /// `TaskStart`/`TaskEnd` pair on its array (tasks are numbered in
    /// execution order).
    pub fn simulate_traced<S: TraceSink>(&self, n: u64, k: u64, sink: &mut S) -> Schedule {
        self.try_simulate_traced(n, k, sink)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`simulate`](Self::simulate) that reports malformed parameters
    /// as a typed error instead of panicking.
    pub fn try_simulate(&self, n: u64, k: u64) -> Result<Schedule, SdpError> {
        self.try_simulate_traced(n, k, &mut NullSink)
    }

    /// [`simulate_traced`](Self::simulate_traced) with typed errors.
    pub fn try_simulate_traced<S: TraceSink>(
        &self,
        n: u64,
        k: u64,
        sink: &mut S,
    ) -> Result<Schedule, SdpError> {
        if n < 1 {
            return Err(SdpError::NoMatrices);
        }
        if k < 1 {
            return Err(SdpError::NoArrays);
        }
        let mut live = n;
        let mut tasks_per_round = Vec::new();
        let mut computation_rounds = 0;
        let mut winddown_rounds = 0;
        let mut task_id = 0u32;
        while live > 1 {
            let tasks = (live / 2).min(k);
            if S::ENABLED {
                sink.record(Event::CycleStart {
                    cycle: tasks_per_round.len() as u64,
                });
                for slot in 0..tasks {
                    sink.record(Event::TaskStart {
                        task: task_id + slot as u32,
                        array: slot as u32,
                    });
                    sink.record(Event::TaskEnd {
                        task: task_id + slot as u32,
                        array: slot as u32,
                    });
                }
            }
            live -= tasks;
            tasks_per_round.push(tasks);
            if tasks == k {
                computation_rounds += 1;
            } else {
                winddown_rounds += 1;
            }
            task_id += tasks as u32;
        }
        Ok(Schedule {
            n,
            k,
            rounds: tasks_per_round.len() as u64,
            computation_rounds,
            winddown_rounds,
            tasks_per_round,
        })
    }
}

/// The paper's exact time formula (Eq. 29), in units of `T₁`:
///
/// `T = ⌊(N−1)/K⌋ + ⌊log₂(N + K − 1 − K·⌊(N−1)/K⌋)⌋`
///
/// The first term is the computation phase; the second is the wind-down
/// phase, shortened by one whenever `K` divides `N` exactly — the source of
/// the jagged KT² curve in Figure 6.
///
/// ```
/// use sdp_systolic::scheduler::eq29_time;
/// assert_eq!(eq29_time(4096, 431), 18);
/// assert_eq!(eq29_time(4096, 465), 17);
/// ```
pub fn eq29_time(n: u64, k: u64) -> u64 {
    try_eq29_time(n, k).unwrap_or_else(|e| panic!("{e}"))
}

/// [`eq29_time`] with typed parameter validation.
pub fn try_eq29_time(n: u64, k: u64) -> Result<u64, SdpError> {
    if n < 1 {
        return Err(SdpError::NoMatrices);
    }
    if k < 1 {
        return Err(SdpError::NoArrays);
    }
    if n == 1 {
        return Ok(0);
    }
    let tc = (n - 1) / k;
    let rem = n + k - 1 - k * tc;
    Ok(tc + rem.ilog2() as u64)
}

/// `K · T²` from the exact formula (Figure 6's y-axis, `T₁ = 1`).
pub fn eq29_kt2(n: u64, k: u64) -> u64 {
    let t = eq29_time(n, k);
    k * t * t
}

/// A task in a dependency DAG: duration plus indices of prerequisite tasks.
#[derive(Clone, Debug)]
pub struct DagTask {
    /// Execution time in abstract units.
    pub duration: u64,
    /// Indices (into the task list) this task depends on.
    pub deps: Vec<usize>,
}

/// Result of list-scheduling a DAG.
#[derive(Clone, Debug, PartialEq)]
pub struct DagSchedule {
    /// Completion time of the whole DAG.
    pub makespan: u64,
    /// Start time chosen for each task.
    pub start: Vec<u64>,
    /// Worker each task ran on.
    pub worker: Vec<usize>,
}

impl DagSchedule {
    /// Renders the schedule as a Chrome trace: one duration event per
    /// task (named `task<i>`), workers as thread lanes, abstract
    /// schedule time as the microsecond clock.  `tasks` must be the
    /// list the schedule was computed from (durations come from it).
    pub fn to_chrome_trace(&self, tasks: &[DagTask]) -> ChromeTrace {
        assert_eq!(tasks.len(), self.start.len(), "task list mismatch");
        let mut trace = ChromeTrace::new();
        for (i, task) in tasks.iter().enumerate() {
            trace.complete_with_args(
                &format!("task{i}"),
                "dag",
                self.start[i],
                task.duration.max(1),
                0,
                self.worker[i] as u32,
                vec![("deps".to_string(), Json::from(task.deps.clone()))],
            );
        }
        trace
    }
}

/// Critical-path list scheduler over `K` identical workers.
///
/// Priorities are longest-path-to-exit (standard HLF/CP heuristic) with
/// *static* assignment: each task commits to the earliest-free worker at
/// selection time, so a worker may idle until its task's data is ready
/// even if another worker frees up first — a simple heuristic, not an
/// optimal or fully work-conserving schedule.  Used to execute the
/// optimally parenthesized matrix-chain tree as a dataflow graph
/// (§4 end).
#[derive(Clone, Copy, Debug, Default)]
pub struct DagScheduler;

impl DagScheduler {
    /// Schedules `tasks` onto `k` workers; returns the full schedule.
    pub fn schedule(&self, tasks: &[DagTask], k: usize) -> DagSchedule {
        self.try_schedule(tasks, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`schedule`](Self::schedule) that reports a cyclic graph, a bad
    /// dependency index, or zero workers as a typed error instead of
    /// panicking.
    pub fn try_schedule(&self, tasks: &[DagTask], k: usize) -> Result<DagSchedule, SdpError> {
        if k < 1 {
            return Err(SdpError::BadParameter {
                name: "workers",
                got: k as u64,
                min: 1,
            });
        }
        let n = tasks.len();
        if n == 0 {
            return Ok(DagSchedule {
                makespan: 0,
                start: vec![],
                worker: vec![],
            });
        }
        // successors and indegrees
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (i, t) in tasks.iter().enumerate() {
            indeg[i] = t.deps.len();
            for &d in &t.deps {
                if d >= n {
                    return Err(SdpError::DepOutOfRange {
                        task: i,
                        dep: d,
                        len: n,
                    });
                }
                succs[d].push(i);
            }
        }
        // bottom level (critical path length to exit) via reverse topo order
        let level = Self::bottom_levels(tasks, &succs).ok_or(SdpError::CyclicDag)?;

        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut ready_at = vec![0u64; n]; // earliest data-ready time
        let mut start = vec![0u64; n];
        let mut worker = vec![0usize; n];
        let mut worker_free = vec![0u64; k];
        let mut finish = vec![0u64; n];
        let mut scheduled = 0usize;

        while scheduled < n {
            if ready.is_empty() {
                return Err(SdpError::CyclicDag);
            }
            // Pick the ready task with the greatest bottom level
            // (ties: smaller index), on the earliest-free worker.
            ready.sort_by(|&a, &b| level[b].cmp(&level[a]).then(a.cmp(&b)));
            let t = ready.remove(0);
            // `worker_free` has `k ≥ 1` entries (checked on entry), so
            // the fold always yields a worker; unlike the old
            // `(0..k).min_by_key(..).unwrap()`, a `k = 0` call can no
            // longer reach a panic — it was already rejected above as a
            // typed `BadParameter` error.
            let w = worker_free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &free)| free)
                .map(|(w, _)| w)
                .ok_or(SdpError::BadParameter {
                    name: "workers",
                    got: 0,
                    min: 1,
                })?;
            let s = worker_free[w].max(ready_at[t]);
            start[t] = s;
            worker[t] = w;
            finish[t] = s + tasks[t].duration;
            worker_free[w] = finish[t];
            scheduled += 1;
            for &sc in &succs[t] {
                indeg[sc] -= 1;
                ready_at[sc] = ready_at[sc].max(finish[t]);
                if indeg[sc] == 0 {
                    ready.push(sc);
                }
            }
        }
        Ok(DagSchedule {
            makespan: finish.iter().copied().max().unwrap_or(0),
            start,
            worker,
        })
    }

    /// `None` when the graph is cyclic.
    fn bottom_levels(tasks: &[DagTask], succs: &[Vec<usize>]) -> Option<Vec<u64>> {
        let n = tasks.len();
        // reverse topological order via Kahn on successors
        let mut outdeg: Vec<usize> = succs.iter().map(|s| s.len()).collect();
        let mut stack: Vec<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
        let mut level = vec![0u64; n];
        let mut order = Vec::with_capacity(n);
        while let Some(i) = stack.pop() {
            order.push(i);
            level[i] = tasks[i].duration + succs[i].iter().map(|&s| level[s]).max().unwrap_or(0);
            for &d in &tasks[i].deps {
                outdeg[d] -= 1;
                if outdeg[d] == 0 {
                    stack.push(d);
                }
            }
        }
        (order.len() == n).then_some(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_matrix_needs_no_work() {
        let s = TreeScheduler.simulate(1, 4);
        assert_eq!(s.rounds, 0);
        assert_eq!(s.total_tasks(), 0);
        assert_eq!(s.processor_utilization(), 1.0);
    }

    #[test]
    fn two_matrices_one_round() {
        let s = TreeScheduler.simulate(2, 4);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.total_tasks(), 1);
    }

    #[test]
    fn total_tasks_is_n_minus_1() {
        for n in [2u64, 3, 7, 16, 100, 255] {
            for k in [1u64, 2, 5, 64] {
                let s = TreeScheduler.simulate(n, k);
                assert_eq!(s.total_tasks(), n - 1, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn one_array_is_fully_serial() {
        let s = TreeScheduler.simulate(10, 1);
        assert_eq!(s.rounds, 9);
        assert!((s.processor_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_arrays_take_log_rounds() {
        let s = TreeScheduler.simulate(1024, 1 << 30);
        assert_eq!(s.rounds, 10);
    }

    #[test]
    fn phases_partition_rounds() {
        let s = TreeScheduler.simulate(64, 5);
        assert_eq!(s.computation_rounds + s.winddown_rounds, s.rounds);
        assert!(s.winddown_rounds >= 1);
    }

    #[test]
    fn eq29_matches_known_values() {
        // N=4096, K=431: Tc = 4095/431 = 9, rem = 4096+430-3879 = 647,
        // floor(log2 647) = 9, T = 18.
        assert_eq!(eq29_time(4096, 431), 18);
        // K=465: Tc = 8, rem = 4096+464-3720 = 840, log2 = 9, T = 17.
        assert_eq!(eq29_time(4096, 465), 17);
    }

    #[test]
    fn eq29_edges() {
        assert_eq!(eq29_time(1, 7), 0);
        assert_eq!(eq29_time(2, 1), 1);
        // K >= N: Tc = (8-1)/8 = 0, rem = 8+8-1 = 15, floor(log2 15) = 3.
        assert_eq!(eq29_time(8, 8), 3);
    }

    #[test]
    fn eq29_kt2_consistency() {
        assert_eq!(eq29_kt2(4096, 431), 431 * 18 * 18);
    }

    #[test]
    fn simulation_close_to_eq29() {
        // The greedy synchronous simulation and Eq. 29 agree within a
        // couple of rounds across a wide sweep.
        for n in [256u64, 1024, 4096] {
            for k in [3u64, 17, 100, 431, 1000] {
                let sim = TreeScheduler.simulate(n, k).rounds;
                let formula = eq29_time(n, k);
                let diff = sim.abs_diff(formula);
                assert!(diff <= 2, "n={n} k={k} sim={sim} eq29={formula}");
            }
        }
    }

    #[test]
    fn dag_serial_chain() {
        let tasks = vec![
            DagTask {
                duration: 2,
                deps: vec![],
            },
            DagTask {
                duration: 3,
                deps: vec![0],
            },
            DagTask {
                duration: 1,
                deps: vec![1],
            },
        ];
        let s = DagScheduler.schedule(&tasks, 4);
        assert_eq!(s.makespan, 6);
    }

    #[test]
    fn dag_parallel_independent() {
        let tasks = vec![
            DagTask {
                duration: 5,
                deps: vec![],
            },
            DagTask {
                duration: 5,
                deps: vec![],
            },
        ];
        assert_eq!(DagScheduler.schedule(&tasks, 2).makespan, 5);
        assert_eq!(DagScheduler.schedule(&tasks, 1).makespan, 10);
    }

    #[test]
    fn dag_binary_tree_matches_tree_scheduler() {
        // A complete binary combining tree of 8 leaves -> 7 unit tasks.
        // With unlimited workers the makespan is the tree height (3).
        let mut tasks = Vec::new();
        // level of 4 combines over conceptual leaf pairs (no deps)
        for _ in 0..4 {
            tasks.push(DagTask {
                duration: 1,
                deps: vec![],
            });
        }
        tasks.push(DagTask {
            duration: 1,
            deps: vec![0, 1],
        });
        tasks.push(DagTask {
            duration: 1,
            deps: vec![2, 3],
        });
        tasks.push(DagTask {
            duration: 1,
            deps: vec![4, 5],
        });
        let s = DagScheduler.schedule(&tasks, 8);
        assert_eq!(s.makespan, 3);
        let sim = TreeScheduler.simulate(8, 8);
        assert_eq!(sim.rounds, 3);
    }

    #[test]
    fn dag_empty() {
        let s = DagScheduler.schedule(&[], 3);
        assert_eq!(s.makespan, 0);
    }

    #[test]
    fn dag_critical_path_priority_helps() {
        // One long chain plus fillers; CP priority starts the chain first.
        let tasks = vec![
            DagTask {
                duration: 1,
                deps: vec![],
            }, // chain head
            DagTask {
                duration: 10,
                deps: vec![0],
            },
            DagTask {
                duration: 1,
                deps: vec![],
            }, // filler
            DagTask {
                duration: 1,
                deps: vec![],
            }, // filler
        ];
        let s = DagScheduler.schedule(&tasks, 1);
        // chain head must be scheduled first (highest bottom level)
        assert_eq!(s.start[0], 0);
    }

    #[test]
    fn pu_decreases_with_more_arrays() {
        let few = TreeScheduler.simulate(1024, 8).processor_utilization();
        let many = TreeScheduler.simulate(1024, 512).processor_utilization();
        assert!(few > many);
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        use sdp_trace::CountingSink;
        let mut sink = CountingSink::default();
        let traced = TreeScheduler.simulate_traced(64, 5, &mut sink);
        let untraced = TreeScheduler.simulate(64, 5);
        assert_eq!(traced, untraced);
        assert_eq!(sink.cycles, traced.rounds);
        assert_eq!(sink.task_starts, traced.total_tasks());
        assert_eq!(sink.task_ends, traced.total_tasks());
    }

    #[test]
    fn schedule_chrome_trace_has_one_span_per_task() {
        let s = TreeScheduler.simulate(16, 3);
        let trace = s.to_chrome_trace();
        assert_eq!(trace.spans.len() as u64, s.total_tasks());
        // Final round is wind-down (one task left).
        let last = trace.spans.last().unwrap();
        assert_eq!(last.cat, "winddown");
        assert_eq!(last.ts, s.rounds - 1);
        let doc = trace.render();
        assert!(doc.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn dag_chrome_trace_follows_schedule() {
        let tasks = vec![
            DagTask {
                duration: 2,
                deps: vec![],
            },
            DagTask {
                duration: 3,
                deps: vec![0],
            },
        ];
        let s = DagScheduler.schedule(&tasks, 2);
        let trace = s.to_chrome_trace(&tasks);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].ts, s.start[1]);
        assert_eq!(trace.spans[1].dur, 3);
        assert_eq!(trace.spans[1].tid, s.worker[1] as u32);
    }

    #[test]
    fn dag_zero_workers_is_a_typed_error_not_a_panic() {
        let tasks = vec![
            DagTask {
                duration: 2,
                deps: vec![],
            },
            DagTask {
                duration: 3,
                deps: vec![0],
            },
        ];
        // Regression: this used to reach `(0..0).min_by_key(..).unwrap()`
        // when the guard was bypassed; the typed path must reject k = 0
        // before any scheduling work happens.
        assert_eq!(
            DagScheduler.try_schedule(&tasks, 0),
            Err(SdpError::BadParameter {
                name: "workers",
                got: 0,
                min: 1,
            })
        );
        // An empty task list with zero workers is rejected the same way
        // (parameter validation precedes the empty-DAG fast path).
        assert!(DagScheduler.try_schedule(&[], 0).is_err());
    }

    #[test]
    fn tree_zero_arrays_is_a_typed_error_not_a_panic() {
        assert_eq!(TreeScheduler.try_simulate(8, 0), Err(SdpError::NoArrays));
        assert_eq!(TreeScheduler.try_simulate(0, 4), Err(SdpError::NoMatrices));
        assert_eq!(try_eq29_time(8, 0), Err(SdpError::NoArrays));
    }

    #[test]
    fn zero_task_schedule_renders_an_empty_chrome_trace() {
        // n = 1 means zero multiply tasks: the trace must be empty and
        // still renderable — callers must not assume `spans.last()` is
        // Some (the companion test above only unwraps it for n > 1).
        let s = TreeScheduler.simulate(1, 3);
        assert_eq!(s.total_tasks(), 0);
        let trace = s.to_chrome_trace();
        assert!(trace.spans.is_empty());
        assert!(trace.spans.last().is_none());
        assert!(trace.render().starts_with("{\"traceEvents\":["));
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn dag_cycle_detected() {
        let tasks = vec![
            DagTask {
                duration: 1,
                deps: vec![1],
            },
            DagTask {
                duration: 1,
                deps: vec![0],
            },
        ];
        let _ = DagScheduler.schedule(&tasks, 1);
    }
}
