//! The linear-array driver with latched nearest-neighbour links.
//!
//! The driver owns `m` PEs and the `m` link latches between/around them.
//! One call to [`LinearArray::cycle`] advances the whole array by a single
//! clock: every PE is stepped with the link values captured at the end of
//! the *previous* cycle (two-phase update), so information propagates one
//! PE per cycle — the defining property of a systolic pipeline.

use crate::instrument::Stats;
use crate::pe::ProcessingElement;
use sdp_fault::{FaultInjector, FaultyWord, SdpError};
use sdp_trace::{Event, NullSink, TraceSink};

/// A linear systolic array of identical PEs (`P₁ … Pₘ` in the paper),
/// connected left-to-right, with full cycle/utilization instrumentation.
pub struct LinearArray<P: ProcessingElement> {
    pes: Vec<P>,
    /// `links[i]` is the latched word on the link *into* PE `i`;
    /// `links[m]` is the latched word leaving the tail PE.
    links: Vec<Option<P::Flow>>,
    /// Double buffer for the link latches: each cycle writes next-cycle
    /// state here, then swaps with `links`.  Keeping it on the struct
    /// means the per-cycle hot loop performs no allocation at all.
    links_next: Vec<Option<P::Flow>>,
    /// `bypass[i]` routes around PE `i`: its column becomes a plain
    /// one-cycle wire (spare-column remapping for a faulty PE).
    bypass: Vec<bool>,
    stats: Stats,
}

impl<P: ProcessingElement> LinearArray<P> {
    /// Builds an array from a vector of PEs (must be non-empty).
    pub fn new(pes: Vec<P>) -> LinearArray<P> {
        Self::try_new(pes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an array, returning [`SdpError::EmptyArray`] instead of
    /// panicking when `pes` is empty.
    pub fn try_new(pes: Vec<P>) -> Result<LinearArray<P>, SdpError> {
        if pes.is_empty() {
            return Err(SdpError::EmptyArray);
        }
        let m = pes.len();
        Ok(LinearArray {
            pes,
            links: vec![None; m + 1],
            links_next: vec![None; m + 1],
            bypass: vec![false; m],
            stats: Stats::new(m),
        })
    }

    /// Marks PE `pe` as bypassed (or restores it).  A bypassed PE's
    /// column degenerates to a one-cycle wire: the word latched on its
    /// input link is forwarded unchanged, the PE is never stepped, and
    /// injected faults cannot corrupt it — this models the spare-column
    /// remapping of §3's fault discussion, where a faulty PE is fused
    /// out and its work shifts one column down to a spare.
    pub fn set_bypass(&mut self, pe: usize, bypassed: bool) {
        self.bypass[pe] = bypassed;
    }

    /// Whether PE `pe` is currently bypassed.
    pub fn is_bypassed(&self, pe: usize) -> bool {
        self.bypass[pe]
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// True when the array has no PEs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// Immutable access to the PEs (for result extraction).
    pub fn pes(&self) -> &[P] {
        &self.pes
    }

    /// Mutable access to the PEs (for initial register loading).
    pub fn pes_mut(&mut self) -> &mut [P] {
        &mut self.pes
    }

    /// Instrumentation gathered so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable instrumentation, so co-simulated components (e.g. the
    /// shared bus of Design 3) can fold their accounting into the same
    /// report.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The word currently latched on the tail (output) link.
    pub fn tail(&self) -> Option<P::Flow> {
        self.links[self.pes.len()]
    }

    /// Advances the array by one clock cycle.
    ///
    /// * `head_in` — the word presented on the head (input) link this cycle;
    /// * `ext` — closure giving PE `i`'s external input this cycle;
    /// * `ctrl` — closure giving PE `i`'s control word this cycle.
    ///
    /// Returns the word emitted by the tail PE this cycle (which is also
    /// latched and visible via [`tail`](Self::tail) until the next cycle).
    pub fn cycle(
        &mut self,
        head_in: Option<P::Flow>,
        ext: impl FnMut(usize) -> P::Ext,
        ctrl: impl FnMut(usize) -> P::Ctrl,
    ) -> Option<P::Flow> {
        self.cycle_traced(head_in, ext, ctrl, &mut NullSink)
    }

    /// [`cycle`](Self::cycle) with an event sink observing the clock
    /// edge, per-PE activity, latch commits, and host I/O words.
    ///
    /// With [`NullSink`] every `sink.record` call (and the event
    /// construction feeding it) is guarded by `S::ENABLED` and compiles
    /// away, so the untraced path is identical to the pre-tracing code.
    pub fn cycle_traced<S: TraceSink>(
        &mut self,
        head_in: Option<P::Flow>,
        ext: impl FnMut(usize) -> P::Ext,
        ctrl: impl FnMut(usize) -> P::Ctrl,
        sink: &mut S,
    ) -> Option<P::Flow> {
        self.cycle_core(head_in, ext, ctrl, sink, |_, _, out, _| out)
    }

    /// [`cycle_traced`](Self::cycle_traced) with a [`FaultInjector`]
    /// deciding, per PE and cycle, whether the emitted word is
    /// corrupted.  With [`sdp_fault::NoFaults`] the hook folds away and
    /// this is exactly `cycle_traced`; bypassed PEs are wires and can
    /// never be corrupted (the spare path routes around the faulty
    /// latch).
    pub fn cycle_fault_traced<S: TraceSink, F: FaultInjector>(
        &mut self,
        head_in: Option<P::Flow>,
        ext: impl FnMut(usize) -> P::Ext,
        ctrl: impl FnMut(usize) -> P::Ctrl,
        injector: &mut F,
        sink: &mut S,
    ) -> Option<P::Flow>
    where
        P::Flow: FaultyWord,
    {
        self.cycle_core(head_in, ext, ctrl, sink, |pe, cycle, out, sink| {
            if F::ENABLED {
                if let Some(word) = out {
                    if let Some(fault) = injector.pe_fault(pe, cycle) {
                        if S::ENABLED {
                            sink.record(Event::FaultInjected {
                                kind: fault.kind(),
                                site: pe,
                            });
                        }
                        return Some(word.apply(fault));
                    }
                }
            }
            out
        })
    }

    /// The one true cycle body: `corrupt` observes each non-bypassed
    /// PE's output word and may replace it (identity on the fault-free
    /// path, where it inlines to nothing).
    fn cycle_core<S: TraceSink>(
        &mut self,
        head_in: Option<P::Flow>,
        mut ext: impl FnMut(usize) -> P::Ext,
        mut ctrl: impl FnMut(usize) -> P::Ctrl,
        sink: &mut S,
        mut corrupt: impl FnMut(u32, u64, Option<P::Flow>, &mut S) -> Option<P::Flow>,
    ) -> Option<P::Flow> {
        let m = self.pes.len();
        let now = self.stats.cycles();
        if S::ENABLED {
            sink.record(Event::CycleStart { cycle: now });
        }
        if head_in.is_some() {
            self.stats.record_input_word();
            if S::ENABLED {
                sink.record(Event::WordIn);
            }
        }
        // Two-phase update without per-cycle allocation: PEs read the
        // pre-cycle state still held in `links` (head_in overrides the
        // external index 0) while all writes go to `links_next`; the
        // buffers swap at the end of the cycle.
        let mut any_busy = false;
        for i in 0..m {
            let inbound = if i == 0 { head_in } else { self.links[i] };
            let bypassed = self.bypass[i];
            let pe = &mut self.pes[i];
            let (out, busy) = if bypassed {
                (inbound, false)
            } else {
                let stepped = pe.step(inbound, ext(i), ctrl(i));
                (corrupt(i as u32, now, stepped, &mut *sink), pe.was_busy())
            };
            self.links_next[i + 1] = out;
            if busy {
                self.stats.record_busy(i);
                any_busy = true;
            }
            if S::ENABLED {
                sink.record(Event::PeFire {
                    pe: i as u32,
                    busy,
                    value: self.pes[i].probe(),
                });
            }
        }
        // head link latch (index 0) is external; keep what was presented.
        self.links_next[0] = head_in;
        if S::ENABLED {
            for (link, word) in self.links_next.iter().enumerate() {
                sink.record(Event::LatchCommit {
                    link: link as u32,
                    occupied: word.is_some(),
                });
            }
        }
        std::mem::swap(&mut self.links, &mut self.links_next);
        self.stats.record_cycle();
        if !any_busy {
            self.stats.record_stall_cycle();
        }
        if self.links[m].is_some() {
            self.stats.record_output_word();
            if S::ENABLED {
                sink.record(Event::WordOut);
            }
        }
        self.links[m]
    }

    /// Runs `n` cycles with no head input and constant ext/ctrl, draining
    /// the pipeline; collects every word emitted by the tail.
    pub fn drain(
        &mut self,
        n: usize,
        ext: impl FnMut(usize) -> P::Ext,
        ctrl: impl FnMut(usize) -> P::Ctrl,
    ) -> Vec<P::Flow> {
        self.drain_traced(n, ext, ctrl, &mut NullSink)
    }

    /// [`drain`](Self::drain) with an event sink.
    pub fn drain_traced<S: TraceSink>(
        &mut self,
        n: usize,
        mut ext: impl FnMut(usize) -> P::Ext,
        mut ctrl: impl FnMut(usize) -> P::Ctrl,
        sink: &mut S,
    ) -> Vec<P::Flow> {
        let mut out = Vec::new();
        for _ in 0..n {
            if let Some(w) = self.cycle_traced(None, &mut ext, &mut ctrl, sink) {
                out.push(w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::ProcessingElement;

    /// Pass-through PE used to verify one-cycle-per-hop latching.
    #[derive(Default)]
    struct Wire {
        busy: bool,
    }

    impl ProcessingElement for Wire {
        type Flow = u32;
        type Ext = ();
        type Ctrl = ();
        fn step(&mut self, flow_in: Option<u32>, _: (), _: ()) -> Option<u32> {
            self.busy = flow_in.is_some();
            flow_in
        }
        fn was_busy(&self) -> bool {
            self.busy
        }
    }

    /// Accumulating PE: adds ext input into a register each cycle, forwards
    /// flow unchanged.  Verifies ext routing and register persistence.
    #[derive(Default)]
    struct Acc {
        sum: u64,
    }

    impl ProcessingElement for Acc {
        type Flow = u32;
        type Ext = u64;
        type Ctrl = ();
        fn step(&mut self, flow_in: Option<u32>, ext: u64, _: ()) -> Option<u32> {
            self.sum += ext;
            flow_in
        }
    }

    fn wires(m: usize) -> LinearArray<Wire> {
        LinearArray::new((0..m).map(|_| Wire::default()).collect())
    }

    #[test]
    fn word_takes_one_cycle_per_hop() {
        let mut arr = wires(3);
        // Inject 7 on cycle 0; it must appear at the tail after 3 cycles.
        assert_eq!(arr.cycle(Some(7), |_| (), |_| ()), None);
        assert_eq!(arr.cycle(None, |_| (), |_| ()), None);
        assert_eq!(arr.cycle(None, |_| (), |_| ()), Some(7));
    }

    #[test]
    fn pipeline_preserves_order_and_spacing() {
        let mut arr = wires(2);
        let mut out = Vec::new();
        let feed = [Some(1), Some(2), None, Some(3)];
        for f in feed {
            if let Some(w) = arr.cycle(f, |_| (), |_| ()) {
                out.push(w);
            }
        }
        out.extend(arr.drain(4, |_| (), |_| ()));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn stats_count_cycles_and_io() {
        let mut arr = wires(2);
        arr.cycle(Some(1), |_| (), |_| ());
        arr.cycle(None, |_| (), |_| ());
        arr.cycle(None, |_| (), |_| ());
        let s = arr.stats();
        assert_eq!(s.cycles(), 3);
        assert_eq!(s.input_words(), 1);
        assert_eq!(s.output_words(), 1);
    }

    #[test]
    fn busy_accounting_per_pe() {
        let mut arr = wires(2);
        arr.cycle(Some(1), |_| (), |_| ()); // PE0 busy
        arr.cycle(None, |_| (), |_| ()); // PE1 busy
        let s = arr.stats();
        assert_eq!(s.busy(0), 1);
        assert_eq!(s.busy(1), 1);
        let u = s.utilization();
        assert!((u.overall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ext_inputs_are_routed_per_pe() {
        let mut arr = LinearArray::new(vec![Acc::default(), Acc::default()]);
        arr.cycle(None, |i| (i as u64 + 1) * 10, |_| ());
        arr.cycle(None, |i| (i as u64 + 1) * 10, |_| ());
        assert_eq!(arr.pes()[0].sum, 20);
        assert_eq!(arr.pes()[1].sum, 40);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn empty_array_rejected() {
        let _ = LinearArray::<Wire>::new(vec![]);
    }

    #[test]
    fn traced_cycles_emit_consistent_events() {
        use sdp_trace::CountingSink;
        let mut arr = wires(3);
        let mut sink = CountingSink::default();
        arr.cycle_traced(Some(7), |_| (), |_| (), &mut sink);
        arr.cycle_traced(None, |_| (), |_| (), &mut sink);
        arr.cycle_traced(None, |_| (), |_| (), &mut sink);
        assert_eq!(sink.cycles, 3);
        assert_eq!(sink.pe_fires, 9); // 3 PEs × 3 cycles
        assert_eq!(sink.busy_fires, 3); // the word visits each PE once
        assert_eq!(sink.words_in, 1);
        assert_eq!(sink.words_out, 1);
        // Event counts agree with the Stats the array kept itself.
        let s = arr.stats();
        assert_eq!(sink.cycles, s.cycles());
        assert_eq!(sink.words_in, s.input_words());
        assert_eq!(sink.words_out, s.output_words());
        assert_eq!(sink.busy_fires, (0..3).map(|i| s.busy(i)).sum::<u64>());
    }

    #[test]
    fn idle_cycles_count_as_stalls() {
        let mut arr = wires(2);
        arr.cycle(Some(1), |_| (), |_| ());
        arr.cycle(None, |_| (), |_| ());
        arr.cycle(None, |_| (), |_| ()); // word gone: nobody busy
        arr.cycle(None, |_| (), |_| ());
        assert_eq!(arr.stats().stall_cycles(), 2);
    }

    #[test]
    fn tail_latch_holds_until_next_cycle() {
        let mut arr = wires(1);
        arr.cycle(Some(9), |_| (), |_| ());
        assert_eq!(arr.tail(), Some(9));
        arr.cycle(None, |_| (), |_| ());
        assert_eq!(arr.tail(), None);
    }

    #[test]
    fn try_new_reports_empty_array() {
        use sdp_fault::SdpError;
        assert!(matches!(
            LinearArray::<Wire>::try_new(vec![]),
            Err(SdpError::EmptyArray)
        ));
        assert!(LinearArray::try_new(vec![Wire::default()]).is_ok());
    }

    /// PE that increments every word flowing through (distinguishes a
    /// working column from a bypassed wire).
    #[derive(Default)]
    struct Plus1 {
        busy: bool,
    }

    impl ProcessingElement for Plus1 {
        type Flow = u32;
        type Ext = ();
        type Ctrl = ();
        fn step(&mut self, flow_in: Option<u32>, _: (), _: ()) -> Option<u32> {
            self.busy = flow_in.is_some();
            flow_in.map(|v| v + 1)
        }
        fn was_busy(&self) -> bool {
            self.busy
        }
    }

    #[test]
    fn bypassed_pe_is_a_one_cycle_wire() {
        let mut arr = LinearArray::new(vec![Plus1::default(), Plus1::default(), Plus1::default()]);
        arr.set_bypass(1, true);
        assert!(arr.is_bypassed(1));
        let mut outs = Vec::new();
        outs.extend(arr.cycle(Some(0), |_| (), |_| ()));
        outs.extend(arr.drain(4, |_| (), |_| ()));
        // Latency is still one cycle per column, but only two PEs add 1.
        assert_eq!(outs, vec![2]);
        assert_eq!(arr.stats().busy(1), 0);
    }

    #[test]
    fn injected_transient_flip_corrupts_one_word() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        use sdp_trace::CountingSink;
        let plan = FaultPlan::new().with(Fault::TransientFlip {
            pe: 0,
            cycle: 0,
            bit: 0,
        });
        let mut inj = PlanInjector::new(plan);
        let mut sink = CountingSink::default();
        let mut arr = wires(2);
        arr.cycle_fault_traced(Some(4u32), |_| (), |_| (), &mut inj, &mut sink);
        arr.cycle_fault_traced(None, |_| (), |_| (), &mut inj, &mut sink);
        let out = arr.tail();
        assert_eq!(out, Some(5)); // bit 0 of 4 flipped once
        assert_eq!(sink.faults_injected, 1);
    }

    #[test]
    fn bypass_shields_pe_from_injection() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        let plan = FaultPlan::new().with(Fault::StuckAt {
            pe: 1,
            cycle: 0,
            value: 77,
        });
        let mut inj = PlanInjector::new(plan);
        let mut arr = wires(3);
        arr.set_bypass(1, true);
        let mut out = Vec::new();
        for head in [Some(4u32), None, None, None] {
            if let Some(w) =
                arr.cycle_fault_traced(head, |_| (), |_| (), &mut inj, &mut sdp_trace::NullSink)
            {
                out.push(w);
            }
        }
        // The stuck latch is routed around: the word survives intact.
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn no_faults_injector_is_identity() {
        use sdp_fault::NoFaults;
        use sdp_trace::CountingSink;
        let mut plain = wires(3);
        let mut faulty = wires(3);
        let mut sink_a = CountingSink::default();
        let mut sink_b = CountingSink::default();
        for head in [Some(7u32), None, Some(9), None] {
            plain.cycle_traced(head, |_| (), |_| (), &mut sink_a);
            faulty.cycle_fault_traced(head, |_| (), |_| (), &mut NoFaults, &mut sink_b);
        }
        assert_eq!(plain.tail(), faulty.tail());
        assert_eq!(sink_a, sink_b);
        assert_eq!(plain.stats(), faulty.stats());
    }
}
