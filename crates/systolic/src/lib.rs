//! Cycle-accurate simulation engine for systolic arrays.
//!
//! Wah & Li's designs are synchronous linear arrays: every processing
//! element (PE) computes a shift–multiply–accumulate step per clock cycle,
//! and data moves between neighbouring PEs through registers that update on
//! the clock edge.  This crate reproduces that register-transfer model in
//! software:
//!
//! * [`pe::ProcessingElement`] — one PE's combinational step function;
//! * [`array::LinearArray`] — a nearest-neighbour pipeline with *latched*
//!   inter-PE links (two-phase update: all PEs observe the previous cycle's
//!   outputs, then all latches commit), matching systolic timing exactly;
//! * [`bus::TokenBus`] — a single broadcast bus whose pick-up station is
//!   selected by a circulating token (§3.2 of the paper);
//! * [`instrument::Stats`] — cycle counts, per-PE busy counts, utilization
//!   and I/O-word accounting, used for the PU experiments;
//! * [`scheduler`] — a discrete-time simulator of `K` matrix-multiplication
//!   arrays cooperating on a binary AND-tree (the divide-and-conquer model
//!   of §4, used for Proposition 1, Theorem 1, and Figure 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bus;
pub mod instrument;
pub mod mesh;
pub mod pe;
pub mod scheduler;

pub use array::LinearArray;
pub use bus::TokenBus;
pub use instrument::{Stats, Utilization};
pub use mesh::{Mesh2D, MeshProcessingElement};
pub use pe::ProcessingElement;
pub use scheduler::{Schedule, TreeScheduler};
