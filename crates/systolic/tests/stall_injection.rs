//! Robustness: the array engine under irregular (stalled) input feeds.
//!
//! A systolic schedule normally assumes one word per cycle; these tests
//! inject bubbles (idle cycles) and verify the engine's latching
//! preserves word order, content, and spacing semantics, and that the
//! instrumentation attributes idle cycles correctly.  This is the
//! engine-level guarantee that lets array drivers (e.g. Design 1's
//! feedback path) stall safely when an operand is not ready yet.

use proptest::prelude::*;
use sdp_systolic::{LinearArray, ProcessingElement};

#[derive(Default)]
struct Wire {
    busy: bool,
}

impl ProcessingElement for Wire {
    type Flow = u64;
    type Ext = ();
    type Ctrl = ();
    fn step(&mut self, flow_in: Option<u64>, _: (), _: ()) -> Option<u64> {
        self.busy = flow_in.is_some();
        flow_in
    }
    fn was_busy(&self) -> bool {
        self.busy
    }
}

/// An accumulating PE whose result must be independent of input bubbles.
#[derive(Default)]
struct MinAcc {
    acc: u64,
    busy: bool,
}

impl ProcessingElement for MinAcc {
    type Flow = u64;
    type Ext = ();
    type Ctrl = ();
    fn step(&mut self, flow_in: Option<u64>, _: (), _: ()) -> Option<u64> {
        self.busy = flow_in.is_some();
        if let Some(v) = flow_in {
            self.acc = self.acc.max(v);
        }
        flow_in
    }
    fn was_busy(&self) -> bool {
        self.busy
    }
}

fn drive(m: usize, feed: &[Option<u64>]) -> (Vec<u64>, u64, u64) {
    let mut arr = LinearArray::new((0..m).map(|_| Wire::default()).collect());
    let mut out = Vec::new();
    for &w in feed {
        if let Some(o) = arr.cycle(w, |_| (), |_| ()) {
            out.push(o);
        }
    }
    out.extend(arr.drain(m + 1, |_| (), |_| ()));
    let u = arr.stats().utilization();
    (out, u.busy_pe_cycles, arr.stats().cycles())
}

proptest! {
    #[test]
    fn bubbles_never_reorder_or_drop_words(
        m in 1usize..6,
        pattern in proptest::collection::vec(proptest::option::weighted(0.6, 1u64..1000), 0..40)
    ) {
        let (out, _, _) = drive(m, &pattern);
        let sent: Vec<u64> = pattern.iter().copied().flatten().collect();
        prop_assert_eq!(out, sent);
    }

    #[test]
    fn busy_cycles_equal_words_times_pes(
        m in 1usize..6,
        pattern in proptest::collection::vec(proptest::option::weighted(0.5, 1u64..100), 0..30)
    ) {
        let (_, busy, _) = drive(m, &pattern);
        let words = pattern.iter().flatten().count() as u64;
        // every word occupies each PE for exactly one cycle
        prop_assert_eq!(busy, words * m as u64);
    }

    #[test]
    fn latency_is_exactly_m_regardless_of_stalls(
        m in 1usize..6, gap in 0usize..10
    ) {
        let mut arr = LinearArray::new((0..m).map(|_| Wire::default()).collect());
        // idle for `gap` cycles, then one word: it must exit after m cycles.
        for _ in 0..gap {
            assert_eq!(arr.cycle(None, |_| (), |_| ()), None);
        }
        let mut seen_at = None;
        for extra in 0..m + 2 {
            let head = if extra == 0 { Some(7u64) } else { None };
            if arr.cycle(head, |_| (), |_| ()).is_some() {
                seen_at = Some(extra + 1);
                break;
            }
        }
        prop_assert_eq!(seen_at, Some(m));
    }

    #[test]
    fn stateful_pe_result_is_stall_invariant(
        values in proptest::collection::vec(1u64..1000, 1..20),
        gaps in proptest::collection::vec(0usize..4, 1..20),
    ) {
        // Feed the same words with and without interleaved bubbles; the
        // accumulator PE must reach the same state.
        let run = |with_gaps: bool| {
            let mut arr = LinearArray::new(vec![MinAcc::default()]);
            for (i, &v) in values.iter().enumerate() {
                if with_gaps {
                    for _ in 0..gaps[i % gaps.len()] {
                        arr.cycle(None, |_| (), |_| ());
                    }
                }
                arr.cycle(Some(v), |_| (), |_| ());
            }
            arr.pes()[0].acc
        };
        prop_assert_eq!(run(false), run(true));
    }
}

#[test]
fn utilization_degrades_proportionally_with_stalls() {
    // 50% bubbles -> ~50% utilization on a wire pipeline.
    let feed: Vec<Option<u64>> = (0..100)
        .map(|i| if i % 2 == 0 { Some(i as u64) } else { None })
        .collect();
    let (_, busy, cycles) = drive(4, &feed);
    let util = busy as f64 / (cycles * 4) as f64;
    assert!((0.4..0.6).contains(&util), "util {util}");
}
