//! Scheduler-side conformance hooks: the `TreeScheduler` is checked
//! against the oracle's independently re-derived greedy pairing model
//! and Eq. 29 on sampled `(N, K)` shapes.

use proptest::proptest;
use sdp_oracle::strategies::ScheduleShapeStrategy;
use sdp_oracle::{diff, invariants, reference};
use sdp_systolic::TreeScheduler;

proptest! {
    #[test]
    fn schedules_match_oracle_on_sampled_shapes(shape in ScheduleShapeStrategy) {
        diff::check_schedule(shape.0, shape.1);
    }

    #[test]
    fn kt2_is_consistent_with_the_oracle_eq29(shape in ScheduleShapeStrategy) {
        let (n, k) = shape;
        let t = reference::eq29_ref(n, k);
        assert_eq!(sdp_systolic::scheduler::eq29_kt2(n, k), k * t * t);
        invariants::check_thm1(n, k, &TreeScheduler.simulate(n, k));
    }
}
