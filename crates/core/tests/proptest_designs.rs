//! Property tests: the systolic designs agree with the sequential
//! baselines on arbitrary random instances, and their timing matches the
//! paper's closed forms.

use proptest::prelude::*;
use sdp_core::chain_array::{simulate_chain_array, ChainMapping};
use sdp_core::dnc;
use sdp_core::gkt::GktArray;
use sdp_core::{Design1Array, Design2Array, Design3Array};
use sdp_multistage::{generate, solve};
use sdp_semiring::{Cost, Matrix};
use sdp_systolic::scheduler::{eq29_time, TreeScheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn design1_matches_dp_on_random_graphs(
        seed in 0u64..10_000, stages in 3usize..9, m in 1usize..7
    ) {
        let g = generate::random_single_source_sink(seed, stages, m, 0, 100);
        let res = Design1Array::new(m).run(g.matrix_string());
        prop_assert_eq!(res.optimum(), solve::forward_dp(&g).cost);
    }

    #[test]
    fn design2_matches_design1_per_vertex(
        seed in 0u64..10_000, stages in 2usize..8, m in 1usize..6
    ) {
        let g = generate::random_uniform(seed, stages, m, 0, 60);
        let d1 = Design1Array::new(m).run(g.matrix_string());
        let d2 = Design2Array::new(m).run(g.matrix_string());
        prop_assert_eq!(d1.values, d2.values);
    }

    #[test]
    fn design3_cycles_and_cost(
        seed in 0u64..10_000, n in 2usize..8, m in 1usize..6
    ) {
        let g = generate::node_value_random(
            seed, n, m, Box::new(sdp_multistage::node_value::AbsDiff), -40, 40,
        );
        let res = Design3Array::new(m).run(&g);
        prop_assert_eq!(res.cycles, ((n + 1) * m) as u64);
        let ms = g.to_multistage();
        prop_assert_eq!(res.cost, solve::backward_dp(&ms).cost);
        prop_assert_eq!(solve::path_cost(&ms, &res.path), res.cost);
    }

    #[test]
    fn design3_finals_are_per_vertex_optima(
        seed in 0u64..5_000, n in 2usize..7, m in 1usize..5
    ) {
        let g = generate::node_value_random(
            seed, n, m, Box::new(sdp_multistage::node_value::SquaredDiff), -10, 10,
        );
        let res = Design3Array::new(m).run(&g);
        let dp = solve::backward_dp(&g.to_multistage());
        prop_assert_eq!(&res.finals, &dp.value[n - 1]);
    }

    #[test]
    fn chain_mappings_and_gkt_agree(
        seed in 0u64..5_000, n in 1usize..10
    ) {
        let dims = generate::random_chain_dims(seed, n, 1, 30);
        let want = sdp_andor::chain::matrix_chain_order(&dims).cost;
        prop_assert_eq!(simulate_chain_array(&dims, ChainMapping::Broadcast).cost, want);
        prop_assert_eq!(simulate_chain_array(&dims, ChainMapping::Pipelined).cost, want);
        prop_assert_eq!(GktArray::default().run(&dims).cost, want);
    }

    #[test]
    fn chain_timing_closed_forms(n in 1u64..40) {
        let dims: Vec<u64> = (0..=n).map(|i| 1 + (i % 6)).collect();
        prop_assert_eq!(
            simulate_chain_array(&dims, ChainMapping::Broadcast).finish, n
        );
        prop_assert_eq!(
            simulate_chain_array(&dims, ChainMapping::Pipelined).finish, 2 * n
        );
    }

    #[test]
    fn parallel_executor_equals_fold(
        seed in 0u64..5_000, n in 1usize..12, m in 1usize..5, k in 1usize..6
    ) {
        let g = generate::random_uniform(seed, n + 1, m, 0, 80);
        let (tree, rounds) = dnc::ParallelExecutor::new(k).multiply_string(g.matrix_string());
        prop_assert_eq!(tree, Matrix::string_product(g.matrix_string()));
        prop_assert_eq!(rounds, TreeScheduler.simulate(n as u64, k as u64).rounds);
    }

    #[test]
    fn schedule_time_brackets_eq29(n in 2u64..5_000, k in 1u64..600) {
        // In the paper's regime (2K <= N) the greedy synchronous schedule
        // and Eq. 29 stay within a few rounds of each other; with K
        // oversized (more arrays than pairs) Eq. 29's wind-down term
        // log2(N+K-1) overcharges, so only the one-sided bound holds.
        let sim = TreeScheduler.simulate(n, k).rounds;
        let formula = eq29_time(n, k);
        if 2 * k <= n {
            prop_assert!(sim.abs_diff(formula) <= 3, "n={n} k={k}: {sim} vs {formula}");
        } else {
            prop_assert!(sim <= formula.max(1), "n={n} k={k}: {sim} vs {formula}");
        }
    }

    #[test]
    fn design1_handles_negative_costs(
        seed in 0u64..2_000, stages in 3usize..7, m in 1usize..5
    ) {
        let g = generate::random_single_source_sink(seed, stages, m, -50, 50);
        let res = Design1Array::new(m).run(g.matrix_string());
        prop_assert_eq!(res.optimum(), solve::forward_dp(&g).cost);
    }

    #[test]
    fn design3_inventory_with_inf_edges(seed in 0u64..2_000, n in 2usize..7, m in 2usize..6) {
        // InventoryCost produces INF (infeasible) transitions; the array
        // must handle absent edges identically to the baseline.
        let g = generate::inventory(seed, n, m);
        let res = Design3Array::new(m).run(&g);
        let dp = solve::backward_dp(&g.to_multistage());
        prop_assert_eq!(res.cost, dp.cost);
        if res.cost.is_finite() {
            prop_assert_eq!(
                solve::path_cost(&g.to_multistage(), &res.path), res.cost
            );
        }
    }

    #[test]
    fn pu_is_always_a_probability(n in 2u64..10_000, k in 1u64..512) {
        let pu = TreeScheduler.simulate(n, k).processor_utilization();
        prop_assert!((0.0..=1.0).contains(&pu), "PU {pu} out of range");
    }
}

#[test]
fn design1_extreme_saturating_costs() {
    // Costs near the saturation boundary must not wrap or reach INF.
    let big = Cost::MAX_FINITE.raw() / 4;
    let g = generate::random_single_source_sink(1, 5, 3, big - 10, big);
    let res = Design1Array::new(3).run(g.matrix_string());
    let dp = solve::forward_dp(&g);
    assert_eq!(res.optimum(), dp.cost);
    assert!(res.optimum().is_finite());
}
