//! Property tests for the fault-injection and recovery layer.
//!
//! Two laws pin the design down:
//!
//! 1. **Empty-plan identity** — a `PlanInjector` replaying an *empty*
//!    `FaultPlan` is observationally identical to the fault-free run:
//!    same results, same cycle counts, same engine `Stats`, and the
//!    same trace event stream event-for-event.  This is what makes the
//!    injection hooks safe to thread through every driver.
//! 2. **TMR masks any single faulty replica** — with the injector wired
//!    into replica 0 only, the voted answer equals the fault-free DP
//!    value no matter what single PE fault (transient or permanent
//!    stuck-at) the plan contains.

use proptest::prelude::*;
use sdp_core::edit_array::{
    edit_distance_fault_traced, edit_distance_seq, try_edit_distance_mesh_traced,
};
use sdp_core::matmul_array::MatmulArray;
use sdp_core::resilient::{design1_tmr, design2_tmr, edit_distance_tmr, matmul_tmr};
use sdp_core::{Design1Array, Design2Array};
use sdp_fault::{Fault, FaultPlan, PlanInjector};
use sdp_multistage::generate;
use sdp_semiring::{Cost, Matrix, MinPlus};
use sdp_trace::RecordingSink;

fn empty_injector() -> PlanInjector {
    PlanInjector::new(FaultPlan::new())
}

fn bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut state = seed.wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b'a' + ((state >> 33) % 4) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn empty_plan_is_identity_for_design1(
        seed in 0u64..5_000, stages in 3usize..7, m in 1usize..5
    ) {
        let g = generate::random_single_source_sink(seed, stages, m, 0, 100);
        let array = Design1Array::new(m);
        let mut clean_sink = RecordingSink::default();
        let clean = array
            .try_run_traced(g.matrix_string(), &mut clean_sink)
            .unwrap();
        let mut faulty_sink = RecordingSink::default();
        let injected = array
            .run_fault_traced(g.matrix_string(), &mut empty_injector(), &mut faulty_sink)
            .unwrap();
        prop_assert_eq!(injected.values, clean.values);
        prop_assert_eq!(injected.cycles, clean.cycles);
        prop_assert_eq!(injected.stats, clean.stats);
        prop_assert_eq!(faulty_sink.events, clean_sink.events);
    }

    #[test]
    fn empty_plan_is_identity_for_matmul(
        seed in 0u64..5_000, p in 1usize..5, q in 1usize..5, r in 1usize..5
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 50) as i64
        };
        let a = Matrix::<MinPlus>::from_fn(p, q, |_, _| MinPlus(Cost::from(next())));
        let b = Matrix::<MinPlus>::from_fn(q, r, |_, _| MinPlus(Cost::from(next())));
        let mut clean_sink = RecordingSink::default();
        let clean = MatmulArray::try_multiply_traced(&a, &b, &mut clean_sink).unwrap();
        let mut faulty_sink = RecordingSink::default();
        let injected =
            MatmulArray::multiply_fault_traced(&a, &b, &mut empty_injector(), &mut faulty_sink)
                .unwrap();
        prop_assert_eq!(injected.product, clean.product);
        prop_assert_eq!(injected.cycles, clean.cycles);
        prop_assert_eq!(injected.stats, clean.stats);
        prop_assert_eq!(faulty_sink.events, clean_sink.events);
    }

    #[test]
    fn empty_plan_is_identity_for_edit_distance(
        seed in 0u64..5_000, la in 1usize..8, lb in 1usize..8
    ) {
        let a = bytes(seed, la);
        let b = bytes(seed.wrapping_mul(31), lb);
        let mut clean_sink = RecordingSink::default();
        let clean = try_edit_distance_mesh_traced(&a, &b, &mut clean_sink).unwrap();
        let mut faulty_sink = RecordingSink::default();
        let injected =
            edit_distance_fault_traced(&a, &b, &mut empty_injector(), &mut faulty_sink).unwrap();
        prop_assert_eq!(injected.distance, clean.distance);
        prop_assert_eq!(injected.distance, edit_distance_seq(&a, &b));
        prop_assert_eq!(injected.cycles, clean.cycles);
        prop_assert_eq!(injected.stats, clean.stats);
        prop_assert_eq!(faulty_sink.events, clean_sink.events);
    }

    #[test]
    fn tmr_masks_any_single_pe_fault_in_design1(
        seed in 0u64..3_000, stages in 3usize..7, m in 1usize..5,
        pe in 0u32..8, cycle in 0u64..20, value in -5i64..200,
        transient in 0u8..2, bit in 0u32..12
    ) {
        let g = generate::random_single_source_sink(seed, stages, m, 0, 100);
        let array = Design1Array::new(m);
        let clean = array.run(g.matrix_string());
        let fault = if transient == 1 {
            Fault::TransientFlip { pe: pe % (m as u32 + 1), cycle, bit }
        } else {
            Fault::StuckAt { pe: pe % (m as u32 + 1), cycle, value }
        };
        let mut inj = PlanInjector::new(FaultPlan::new().with(fault));
        let (voted, stats) =
            design1_tmr(&array, g.matrix_string(), &mut inj, &mut sdp_trace::NullSink).unwrap();
        prop_assert_eq!(voted.values, clean.values);
        prop_assert_eq!(voted.optimum(), clean.optimum());
        prop_assert_eq!(stats.runs, 3);
    }

    #[test]
    fn tmr_masks_any_single_pe_fault_in_design2(
        seed in 0u64..3_000, stages in 2usize..6, m in 1usize..5,
        pe in 0u32..8, cycle in 0u64..20, value in -5i64..200
    ) {
        let g = generate::random_uniform(seed, stages, m, 0, 60);
        let array = Design2Array::new(m);
        let clean = array.try_run(g.matrix_string()).unwrap();
        let mut inj = PlanInjector::new(FaultPlan::new().with(Fault::StuckAt {
            pe: pe % m as u32,
            cycle,
            value,
        }));
        let (voted, _) =
            design2_tmr(&array, g.matrix_string(), &mut inj, &mut sdp_trace::NullSink).unwrap();
        prop_assert_eq!(voted.values, clean.values);
    }

    #[test]
    fn tmr_masks_any_single_pe_fault_in_matmul(
        seed in 0u64..3_000, p in 1usize..5, q in 1usize..5, r in 1usize..5,
        pe in 0u32..25, cycle in 0u64..12, value in -5i64..100
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 50) as i64
        };
        let a = Matrix::<MinPlus>::from_fn(p, q, |_, _| MinPlus(Cost::from(next())));
        let b = Matrix::<MinPlus>::from_fn(q, r, |_, _| MinPlus(Cost::from(next())));
        let clean = MatmulArray::multiply(&a, &b);
        let mut inj = PlanInjector::new(FaultPlan::new().with(Fault::StuckAt {
            pe: pe % (p * r) as u32,
            cycle,
            value,
        }));
        let (voted, _) = matmul_tmr(&a, &b, &mut inj, &mut sdp_trace::NullSink).unwrap();
        prop_assert_eq!(voted.product, clean.product);
    }

    #[test]
    fn tmr_masks_any_single_pe_fault_in_edit_distance(
        seed in 0u64..3_000, la in 1usize..7, lb in 1usize..7,
        pe in 0u32..49, cycle in 0u64..12, value in 0i64..100
    ) {
        let a = bytes(seed, la);
        let b = bytes(seed.wrapping_mul(37), lb);
        let want = edit_distance_seq(&a, &b);
        let mut inj = PlanInjector::new(FaultPlan::new().with(Fault::StuckAt {
            pe: pe % (la * lb) as u32,
            cycle,
            value,
        }));
        let (voted, _) = edit_distance_tmr(&a, &b, &mut inj, &mut sdp_trace::NullSink).unwrap();
        prop_assert_eq!(voted.distance, want);
    }
}

/// A *planned* sequence of worker deaths (one-shot `KillWorker` entries,
/// one consumed per reassignment) that outlives the retry budget must
/// surface the typed exhaustion error, not a wrong product or a hang.
#[test]
fn planned_worker_deaths_exhaust_bounded_retry() {
    use sdp_core::dnc::ParallelExecutor;
    use sdp_fault::SdpError;
    use sdp_trace::NullSink;
    let g = generate::random_uniform(11, 4, 3, 0, 9);
    let mats = g.matrix_string();
    let plan = (0..4).fold(FaultPlan::new(), |p, _| {
        p.with(Fault::KillWorker { task: 0 })
    });
    let got = ParallelExecutor::new(2).multiply_string_ft(
        mats,
        &mut PlanInjector::new(plan),
        &mut NullSink,
        2,
    );
    assert!(matches!(
        got,
        Err(SdpError::TaskPanicked {
            task: 0,
            attempts: 2
        })
    ));
}
