//! Golden-file tests for the waveform/trace writers and properties
//! showing that tracing is purely observational: a traced run and an
//! untraced run of every design produce identical results, cycle counts,
//! and [`Stats`].
//!
//! Regenerate the fixtures after an intentional format change with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p sdp-core --test trace_golden
//! ```

use proptest::prelude::*;
use sdp_core::{Design1Array, Design2Array, Design3Array};
use sdp_multistage::generate;
use sdp_trace::vcd::VcdSink;
use sdp_trace::CountingSink;

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `GOLDEN_REGEN` is set.
fn assert_golden(actual: &str, golden: &str, path: &str) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let file = format!("{}/tests/{path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&file, actual).unwrap();
        return;
    }
    assert_eq!(
        actual, golden,
        "{path} is stale; rerun with GOLDEN_REGEN=1 if the change is intentional"
    );
}

#[test]
fn design1_vcd_is_byte_identical_to_golden() {
    let g = generate::random_single_source_sink(7, 3, 2, 0, 9);
    let mut sink = VcdSink::for_linear_array("design1", 2);
    let res = Design1Array::new(2).run_traced(g.matrix_string(), &mut sink);
    assert_eq!(res.optimum(), sdp_multistage::solve::forward_dp(&g).cost);
    assert_golden(
        &sink.finish(),
        include_str!("golden/design1.vcd"),
        "golden/design1.vcd",
    );
}

#[test]
fn chain_chrome_trace_is_byte_identical_to_golden() {
    use sdp_core::chain_array::{simulate_chain_array, ChainMapping};
    let dims = [3u64, 5, 2, 4];
    let res = simulate_chain_array(&dims, ChainMapping::Pipelined);
    let rendered = format!("{}\n", res.to_chrome_trace().render());
    assert_golden(
        &rendered,
        include_str!("golden/chain_pipelined.json"),
        "golden/chain_pipelined.json",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn design1_tracing_is_observation_only(
        seed in 0u64..10_000, stages in 3usize..8, m in 1usize..6
    ) {
        let g = generate::random_single_source_sink(seed, stages, m, 0, 60);
        let plain = Design1Array::new(m).run(g.matrix_string());
        let mut sink = CountingSink::default();
        let traced = Design1Array::new(m).run_traced(g.matrix_string(), &mut sink);
        prop_assert_eq!(&plain.values, &traced.values);
        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(&plain.stats, &traced.stats);
        prop_assert_eq!(sink.cycles, traced.stats.cycles());
        prop_assert_eq!(sink.words_in, traced.stats.input_words());
    }

    #[test]
    fn design2_tracing_is_observation_only(
        seed in 0u64..10_000, stages in 2usize..7, m in 1usize..6
    ) {
        let g = generate::random_uniform(seed, stages, m, 0, 60);
        let plain = Design2Array::new(m).run(g.matrix_string());
        let mut sink = CountingSink::default();
        let traced = Design2Array::new(m).run_traced(g.matrix_string(), &mut sink);
        prop_assert_eq!(&plain.values, &traced.values);
        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(plain.broadcast_words, traced.broadcast_words);
        prop_assert_eq!(&plain.stats, &traced.stats);
        prop_assert_eq!(sink.cycles, traced.stats.cycles());
        prop_assert_eq!(sink.bus_drives, traced.stats.bus_words());
    }

    #[test]
    fn design3_tracing_is_observation_only(
        seed in 0u64..10_000, n in 2usize..7, m in 1usize..6
    ) {
        let g = generate::node_value_random(
            seed, n, m, Box::new(sdp_multistage::node_value::AbsDiff), -30, 30,
        );
        let plain = Design3Array::new(m).run(&g);
        let mut sink = CountingSink::default();
        let traced = Design3Array::new(m).run_traced(&g, &mut sink);
        prop_assert_eq!(plain.cost, traced.cost);
        prop_assert_eq!(&plain.finals, &traced.finals);
        prop_assert_eq!(&plain.path, &traced.path);
        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(&plain.stats, &traced.stats);
        prop_assert_eq!(sink.cycles, traced.stats.cycles());
        prop_assert_eq!(sink.token_advances, traced.stats.token_rotations());
    }

    #[test]
    fn edit_mesh_tracing_is_observation_only(
        seed in 0u64..1_000, la in 1usize..8, lb in 1usize..8
    ) {
        use sdp_core::edit_array::{edit_distance_mesh, edit_distance_mesh_traced};
        let a: Vec<u8> = (0..la).map(|i| b'a' + ((seed as usize + i) % 3) as u8).collect();
        let b: Vec<u8> = (0..lb).map(|i| b'a' + ((seed as usize * 7 + i) % 3) as u8).collect();
        let plain = edit_distance_mesh(&a, &b);
        let mut sink = CountingSink::default();
        let traced = edit_distance_mesh_traced(&a, &b, &mut sink);
        prop_assert_eq!(plain.distance, traced.distance);
        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(&plain.stats, &traced.stats);
        prop_assert_eq!(sink.cycles, traced.stats.cycles());
    }
}
