//! Engine-side conformance hooks: `sdp-core`'s own suite samples the
//! oracle crate's conformance-grade instance distributions and runs the
//! full differential drivers, so an engine regression fails here (next
//! to the engine) as well as in the `sdp-oracle` sweep.

use proptest::proptest;
use sdp_oracle::diff;
use sdp_oracle::strategies::{
    EditPairStrategy, MinPlusStringStrategy, MultistageStrategy, NodeValueStrategy,
};

proptest! {
    #[test]
    fn designs_match_oracle_on_sampled_graphs(g in MultistageStrategy) {
        diff::check_multistage_string("core sampled", g.matrix_string());
    }

    #[test]
    fn design3_matches_oracle_on_sampled_graphs(g in NodeValueStrategy) {
        diff::check_node_value("core sampled", &g);
    }

    #[test]
    fn string_engines_match_oracle_on_sampled_strings(mats in MinPlusStringStrategy) {
        diff::check_string_engines("core sampled", &mats);
        diff::check_matmul_pair("core sampled", &mats[0], &mats[1]);
    }

    #[test]
    fn edit_mesh_matches_oracle_on_sampled_pairs(pair in EditPairStrategy) {
        diff::check_edit("core sampled", &pair.0, &pair.1);
    }
}
