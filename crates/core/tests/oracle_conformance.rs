//! Engine-side conformance hooks: `sdp-core`'s own suite samples the
//! oracle crate's conformance-grade instance distributions and runs the
//! full differential drivers, so an engine regression fails here (next
//! to the engine) as well as in the `sdp-oracle` sweep.

use proptest::proptest;
use sdp_oracle::diff;
use sdp_oracle::strategies::{
    AlignInstanceStrategy, EditPairStrategy, KnapsackInstanceStrategy, MinPlusStringStrategy,
    MultistageStrategy, NodeValueStrategy,
};

proptest! {
    #[test]
    fn designs_match_oracle_on_sampled_graphs(g in MultistageStrategy) {
        diff::check_multistage_string("core sampled", g.matrix_string());
    }

    #[test]
    fn design3_matches_oracle_on_sampled_graphs(g in NodeValueStrategy) {
        diff::check_node_value("core sampled", &g);
    }

    #[test]
    fn string_engines_match_oracle_on_sampled_strings(mats in MinPlusStringStrategy) {
        diff::check_string_engines("core sampled", &mats);
        diff::check_matmul_pair("core sampled", &mats[0], &mats[1]);
    }

    #[test]
    fn edit_mesh_matches_oracle_on_sampled_pairs(pair in EditPairStrategy) {
        diff::check_edit("core sampled", &pair.0, &pair.1);
    }

    #[test]
    fn align_meshes_match_oracle_on_sampled_instances(inst in AlignInstanceStrategy) {
        let (a, b, band, scoring) = &inst;
        diff::check_alignment("core sampled", a, b, *band, scoring);
    }

    #[test]
    fn knapsack_array_matches_oracle_on_sampled_instances(inst in KnapsackInstanceStrategy) {
        let (items, cap) = &inst;
        diff::check_knapsack("core sampled", items, *cap);
    }
}
