//! 0/1 knapsack on a capacity-indexed linear array — the paper's
//! serial-monadic row streaming applied to the classic
//!
//! ```text
//! T[i][c] = max( T[i−1][c],  v_i + T[i−1][c − w_i] )
//! ```
//!
//! recurrence.  PE `c` holds the running row value `T[·][c]`; items
//! stream through the array head-to-tail, one PE per cycle.  The
//! `c − w_i` dependency is **not** nearest-neighbour, which is exactly
//! where a naive wavefront schedule breaks: the needed operand lives
//! `w_i` PEs behind.  The array closes the gap with a *value train*:
//! when the item word passes PE `j`, the PE appends its pre-update
//! value right behind the item and relays the train arriving from the
//! west, so PE `j` observes `T[i−1][j−1], T[i−1][j−2], …` on the `k`-th
//! cycle after the item and captures `T[i−1][j−w_i]` exactly `w_i`
//! cycles in.  Trains are truncated at depth `w_i` (nothing deeper is
//! ever consumed), so consecutive items ride `w_i + 1` cycles apart
//! with no link contention.
//!
//! After the last item a `Flush` control word sweeps the array: each PE
//! emits its final value behind the flush and relays its neighbours',
//! so the tail streams out `T[n−1][C], T[n−1][C−1], …, T[n−1][0]`.
//! Total schedule length has the closed form
//!
//! ```text
//! cycles = n + Σ w_i + 2·(C + 1)
//! ```
//!
//! (`n` item launches at `w_i + 1` spacing, plus the flush sweep and
//! drain) — pinned by `tests/paper_claims.rs`.
//!
//! Each PE also keeps one take/leave bit per item (the traceback
//! memory); [`knapsack_array_recovered`] walks those bits host-side to
//! recover an optimal item set.

use sdp_fault::{FaultInjector, FaultyWord, NoFaults, PeFault, SdpError};
use sdp_systolic::{LinearArray, ProcessingElement, Stats};
use sdp_trace::{NullSink, TraceSink};

/// One 0/1 knapsack item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnapsackItem {
    /// Capacity the item consumes.
    pub weight: u64,
    /// Value the item contributes.
    pub value: u64,
}

impl KnapsackItem {
    /// Convenience constructor.
    pub fn new(weight: u64, value: u64) -> KnapsackItem {
        KnapsackItem { weight, value }
    }
}

/// A word on the array's flow links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KnapWord {
    /// An item streaming through (weight doubles as the train depth).
    Item {
        /// Item weight — routing state: it steers train depths and the
        /// launch schedule, so faults never touch it.
        weight: u64,
        /// Item value (the corruptible payload).
        value: u64,
    },
    /// One value of a train (`T[i−1][·]` behind an item, `T[n−1][·]`
    /// behind the flush).
    Val(u64),
    /// The end-of-stream sweep that drains final values.
    Flush,
}

/// Faults corrupt payloads only: an item's value or a train value, never
/// the weight (routing) or the flush (control), so a fault yields a
/// wrong answer, not a wedged schedule.
impl FaultyWord for KnapWord {
    fn flip_bit(self, bit: u32) -> KnapWord {
        match self {
            KnapWord::Item { weight, value } => KnapWord::Item {
                weight,
                value: value.flip_bit(bit),
            },
            KnapWord::Val(x) => KnapWord::Val(x.flip_bit(bit)),
            KnapWord::Flush => KnapWord::Flush,
        }
    }

    fn stuck_at(self, value: i64) -> KnapWord {
        match self {
            KnapWord::Item { weight, .. } => KnapWord::Item {
                weight,
                value: u64::stuck_at(0, value),
            },
            KnapWord::Val(_) => KnapWord::Val(u64::stuck_at(0, value)),
            KnapWord::Flush => KnapWord::Flush,
        }
    }

    fn apply(self, fault: PeFault) -> KnapWord {
        match fault {
            PeFault::FlipBit(bit) => self.flip_bit(bit),
            PeFault::StuckAt(value) => self.stuck_at(value),
        }
    }
}

/// The capacity-`c` processing element.
struct KnapPe {
    /// This PE's capacity index.
    cap: u64,
    /// Running row value `T[·][cap]`.
    cur: u64,
    /// An item waiting for its train operand: `(value, cycles_left)`.
    pending: Option<(u64, u64)>,
    /// Next train value to emit.
    stash: Option<u64>,
    /// Train emissions left.
    budget: u64,
    /// Traceback memory: one take/leave bit per item seen.
    decisions: Vec<bool>,
    busy: bool,
}

impl KnapPe {
    fn decide(&mut self, value: u64, base: u64) {
        let cand = base.saturating_add(value);
        let take = cand > self.cur;
        if take {
            self.cur = cand;
        }
        self.decisions.push(take);
        self.busy = true;
    }
}

impl ProcessingElement for KnapPe {
    type Flow = KnapWord;
    type Ext = ();
    type Ctrl = ();

    fn step(&mut self, flow_in: Option<KnapWord>, _: (), _: ()) -> Option<KnapWord> {
        self.busy = false;
        match flow_in {
            Some(KnapWord::Item { weight, value }) => {
                // Launch spacing guarantees the previous train is done.
                let old = self.cur;
                if weight == 0 {
                    // Zero-weight items read this PE's own row value.
                    self.decide(value, old);
                } else if self.cap < weight {
                    // Item cannot fit at this capacity: leave it.
                    self.decisions.push(false);
                    self.busy = true;
                } else {
                    self.pending = Some((value, weight));
                }
                // The pre-update value leads this item's train.
                self.stash = (weight >= 1).then_some(old);
                self.budget = weight;
                Some(KnapWord::Item { weight, value })
            }
            Some(KnapWord::Flush) => {
                // Drain sweep: the final value leads a full-depth train,
                // and the row resets for a possible next instance.
                self.stash = Some(self.cur);
                self.budget = self.cap + 1;
                self.cur = 0;
                self.pending = None;
                Some(KnapWord::Flush)
            }
            Some(KnapWord::Val(x)) => {
                if let Some((value, left)) = self.pending {
                    if left == 1 {
                        // `x` is T[i−1][cap − w_i]: resolve the item.
                        self.decide(value, x);
                        self.pending = None;
                    } else {
                        self.pending = Some((value, left - 1));
                    }
                }
                self.emit_train(Some(x))
            }
            None => self.emit_train(None),
        }
    }

    fn was_busy(&self) -> bool {
        self.busy
    }

    fn probe(&self) -> Option<i64> {
        Some(self.cur as i64)
    }
}

impl KnapPe {
    /// Emits the next train word (if any budget remains) and restocks
    /// the stash with the incoming value.
    fn emit_train(&mut self, incoming: Option<u64>) -> Option<KnapWord> {
        if self.budget == 0 {
            self.stash = None;
            return None;
        }
        let out = self.stash.take();
        self.budget -= 1;
        if self.budget > 0 {
            self.stash = incoming;
        }
        out.map(KnapWord::Val)
    }
}

/// Result of one knapsack array run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnapsackRun {
    /// The optimal total value at full capacity (`T[n−1][C]`).
    pub best: u64,
    /// The whole final row: `per_capacity[c] = T[n−1][c]`.
    pub per_capacity: Vec<u64>,
    /// Cycles taken: `n + Σ w_i + 2·(C+1)`.
    pub cycles: u64,
    /// Engine statistics.
    pub stats: Stats,
}

/// Result of a batched knapsack run (instances streamed back-to-back
/// through one array, separated by flush sweeps).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchKnapsackRun {
    /// One optimum per instance, in batch order.
    pub bests: Vec<u64>,
    /// One final row per instance.
    pub per_capacity: Vec<Vec<u64>>,
    /// Total cycles for the whole batch.
    pub cycles: u64,
    /// Engine statistics over the whole batch.
    pub stats: Stats,
}

/// The closed-form schedule length: `n + Σ w_i + 2·(C + 1)` for a
/// non-empty item list, 0 otherwise (no array is built).
pub fn knapsack_cycle_count(items: &[KnapsackItem], capacity: u64) -> u64 {
    if items.is_empty() {
        return 0;
    }
    items.len() as u64 + items.iter().map(|it| it.weight).sum::<u64>() + 2 * (capacity + 1)
}

fn new_array(capacity: u64) -> Result<LinearArray<KnapPe>, SdpError> {
    LinearArray::try_new(
        (0..=capacity)
            .map(|cap| KnapPe {
                cap,
                cur: 0,
                pending: None,
                stash: None,
                budget: 0,
                decisions: Vec::new(),
                busy: false,
            })
            .collect(),
    )
}

/// The one true driver: streams every instance of `batch` through one
/// array and returns per-instance rows plus the PE decision bits.
fn knapsack_core<F: FaultInjector, S: TraceSink>(
    batch: &[&[KnapsackItem]],
    capacity: u64,
    injector: &mut F,
    sink: &mut S,
) -> Result<(BatchKnapsackRun, Vec<Vec<bool>>), SdpError> {
    let mut arr = new_array(capacity)?;
    let c = capacity as usize;
    // Injection schedule: items at `w + 1` spacing, a flush after each
    // instance, the next instance `C + 2` cycles later (the flush train
    // is `C + 1` deep).
    let mut inject: Vec<(u64, KnapWord)> = Vec::new();
    let mut t = 0u64;
    let mut last_flush = 0u64;
    for items in batch {
        for item in items.iter() {
            inject.push((
                t,
                KnapWord::Item {
                    weight: item.weight,
                    value: item.value,
                },
            ));
            t += item.weight + 1;
        }
        inject.push((t, KnapWord::Flush));
        last_flush = t;
        t += c as u64 + 2;
    }
    let total = last_flush + 2 * (c as u64 + 1);
    let mut next = 0usize;
    let mut rows: Vec<Vec<u64>> = Vec::new();
    // Regular item trains also exit the tail; only the `C + 1` values
    // contiguously behind each flush word are an instance's final row.
    let mut remaining = 0usize;
    for now in 0..total {
        let head = if next < inject.len() && inject[next].0 == now {
            next += 1;
            Some(inject[next - 1].1)
        } else {
            None
        };
        let out = arr.cycle_fault_traced(head, |_| (), |_| (), injector, sink);
        match out {
            Some(KnapWord::Flush) => {
                rows.push(Vec::with_capacity(c + 1));
                remaining = c + 1;
            }
            Some(KnapWord::Val(x)) if remaining > 0 => {
                rows.last_mut().expect("flush seen").push(x);
                remaining -= 1;
            }
            _ => {}
        }
    }
    let mut per_capacity = Vec::with_capacity(rows.len());
    for mut row in rows {
        debug_assert_eq!(row.len(), c + 1, "flush train drains every PE");
        row.reverse(); // tail emits T[n−1][C] first
        per_capacity.push(row);
    }
    debug_assert_eq!(per_capacity.len(), batch.len());
    let decisions = arr
        .pes()
        .iter()
        .map(|pe| pe.decisions.clone())
        .collect::<Vec<_>>();
    Ok((
        BatchKnapsackRun {
            bests: per_capacity.iter().map(|row| row[c]).collect(),
            per_capacity,
            cycles: arr.stats().cycles(),
            stats: arr.stats().clone(),
        },
        decisions,
    ))
}

fn empty_run(capacity: u64) -> KnapsackRun {
    KnapsackRun {
        best: 0,
        per_capacity: vec![0; capacity as usize + 1],
        cycles: 0,
        stats: Stats::new(0),
    }
}

/// Solves one 0/1 knapsack instance on the array.
///
/// An empty item list short-circuits to the all-zero row (no array is
/// built, zero PEs reported).
pub fn knapsack_array(items: &[KnapsackItem], capacity: u64) -> KnapsackRun {
    knapsack_array_traced(items, capacity, &mut NullSink)
}

/// [`knapsack_array`] with an event sink; PE `c` is the capacity-`c`
/// element.
pub fn knapsack_array_traced<S: TraceSink>(
    items: &[KnapsackItem],
    capacity: u64,
    sink: &mut S,
) -> KnapsackRun {
    try_knapsack_array_traced(items, capacity, sink).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`knapsack_array`].
pub fn try_knapsack_array(items: &[KnapsackItem], capacity: u64) -> Result<KnapsackRun, SdpError> {
    try_knapsack_array_traced(items, capacity, &mut NullSink)
}

/// Non-panicking [`knapsack_array_traced`].
pub fn try_knapsack_array_traced<S: TraceSink>(
    items: &[KnapsackItem],
    capacity: u64,
    sink: &mut S,
) -> Result<KnapsackRun, SdpError> {
    knapsack_fault_traced(items, capacity, &mut NoFaults, sink)
}

/// [`knapsack_array_traced`] under fault injection: faults corrupt
/// item/train values (silent data corruption), never weights or the
/// flush sweep, so the schedule and the drain stay intact.
pub fn knapsack_fault_traced<F: FaultInjector, S: TraceSink>(
    items: &[KnapsackItem],
    capacity: u64,
    injector: &mut F,
    sink: &mut S,
) -> Result<KnapsackRun, SdpError> {
    if items.is_empty() {
        return Ok(empty_run(capacity));
    }
    let (batch, _) = knapsack_core(&[items], capacity, injector, sink)?;
    Ok(KnapsackRun {
        best: batch.bests[0],
        per_capacity: batch.per_capacity.into_iter().next().expect("one instance"),
        cycles: batch.cycles,
        stats: batch.stats,
    })
}

/// [`knapsack_array`] plus item-set recovery from the PEs' traceback
/// memory: returns the run and the optimal item indices (ascending).
/// Ties break toward *leaving* an item, so the recovered set is the
/// same one the reference solver derives.
pub fn knapsack_array_recovered(
    items: &[KnapsackItem],
    capacity: u64,
) -> (KnapsackRun, Vec<usize>) {
    try_knapsack_array_recovered(items, capacity).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`knapsack_array_recovered`].
pub fn try_knapsack_array_recovered(
    items: &[KnapsackItem],
    capacity: u64,
) -> Result<(KnapsackRun, Vec<usize>), SdpError> {
    if items.is_empty() {
        return Ok((empty_run(capacity), Vec::new()));
    }
    let (batch, decisions) = knapsack_core(&[items], capacity, &mut NoFaults, &mut NullSink)?;
    let set = walk_decisions(items, capacity, &decisions, 0);
    Ok((
        KnapsackRun {
            best: batch.bests[0],
            per_capacity: batch.per_capacity.into_iter().next().expect("one instance"),
            cycles: batch.cycles,
            stats: batch.stats,
        },
        set,
    ))
}

/// Walks the per-PE take/leave bits backwards from full capacity.
fn walk_decisions(
    items: &[KnapsackItem],
    capacity: u64,
    decisions: &[Vec<bool>],
    instance_offset: usize,
) -> Vec<usize> {
    let mut c = capacity as usize;
    let mut set = Vec::new();
    for i in (0..items.len()).rev() {
        if decisions[c][instance_offset + i] {
            set.push(i);
            c -= items[i].weight as usize;
        }
    }
    set.reverse();
    set
}

/// Streams a batch of instances through one array, separated by flush
/// sweeps (the flush resets each PE's row register).  All instances
/// share the array's capacity; differing item counts are allowed —
/// the schedule is launch-driven, not shape-driven.  An empty batch is
/// a typed error.
pub fn knapsack_array_batch(
    batch: &[&[KnapsackItem]],
    capacity: u64,
) -> Result<BatchKnapsackRun, SdpError> {
    knapsack_array_batch_traced(batch, capacity, &mut NullSink)
}

/// [`knapsack_array_batch`] with an event sink.
pub fn knapsack_array_batch_traced<S: TraceSink>(
    batch: &[&[KnapsackItem]],
    capacity: u64,
    sink: &mut S,
) -> Result<BatchKnapsackRun, SdpError> {
    if batch.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    if batch.iter().all(|items| items.is_empty()) {
        return Ok(BatchKnapsackRun {
            bests: vec![0; batch.len()],
            per_capacity: vec![vec![0; capacity as usize + 1]; batch.len()],
            cycles: 0,
            stats: Stats::new(0),
        });
    }
    let (run, _) = knapsack_core(batch, capacity, &mut NoFaults, sink)?;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(raw: &[(u64, u64)]) -> Vec<KnapsackItem> {
        raw.iter().map(|&(w, v)| KnapsackItem::new(w, v)).collect()
    }

    /// Scalar reference used only by this test module.
    fn knapsack_seq(items: &[KnapsackItem], capacity: u64) -> Vec<u64> {
        let c = capacity as usize;
        let mut row = vec![0u64; c + 1];
        for it in items {
            for cap in (0..=c).rev() {
                if (it.weight as usize) <= cap {
                    row[cap] = row[cap].max(row[cap - it.weight as usize] + it.value);
                }
            }
        }
        row
    }

    #[test]
    fn known_instances() {
        // The EPS-Knapsack classroom instance.
        let its = items(&[(1, 1), (3, 4), (4, 5), (5, 7)]);
        let run = knapsack_array(&its, 7);
        assert_eq!(run.best, 9); // items (3,4) + (4,5)
        assert_eq!(run.per_capacity, knapsack_seq(&its, 7));
    }

    #[test]
    fn empty_items_short_circuit() {
        let run = knapsack_array(&[], 5);
        assert_eq!(run.best, 0);
        assert_eq!(run.per_capacity, vec![0; 6]);
        assert_eq!(run.cycles, 0);
        assert_eq!(run.stats.num_pes(), 0);
    }

    #[test]
    fn zero_capacity_and_zero_weight() {
        // Capacity 0 still takes zero-weight items.
        let run = knapsack_array(&items(&[(0, 3), (2, 9), (0, 4)]), 0);
        assert_eq!(run.best, 7);
        // Oversized items are left everywhere.
        let run = knapsack_array(&items(&[(10, 100)]), 4);
        assert_eq!(run.best, 0);
    }

    #[test]
    fn matches_reference_on_random_instances() {
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for case in 0..25 {
            let n = 1 + (next() % 7) as usize;
            let capacity = next() % 12;
            let its: Vec<KnapsackItem> = (0..n)
                .map(|_| KnapsackItem::new(next() % 6, next() % 10))
                .collect();
            let run = knapsack_array(&its, capacity);
            assert_eq!(
                run.per_capacity,
                knapsack_seq(&its, capacity),
                "case {case}: items={its:?} capacity={capacity}"
            );
        }
    }

    #[test]
    fn cycles_match_the_closed_form() {
        for (raw, capacity) in [
            (&[(1u64, 1u64), (3, 4), (4, 5), (5, 7)][..], 7u64),
            (&[(2, 3)], 0),
            (&[(0, 5), (1, 1)], 3),
        ] {
            let its = items(raw);
            let run = knapsack_array(&its, capacity);
            assert_eq!(run.cycles, knapsack_cycle_count(&its, capacity));
            let w: u64 = its.iter().map(|it| it.weight).sum();
            assert_eq!(
                run.cycles,
                its.len() as u64 + w + 2 * (capacity + 1),
                "closed form"
            );
        }
    }

    #[test]
    fn every_pe_decides_every_item() {
        let its = items(&[(1, 1), (3, 4), (4, 5), (5, 7)]);
        let run = knapsack_array(&its, 7);
        for pe in 0..8 {
            assert_eq!(run.stats.busy(pe), 4, "PE {pe} decides each item once");
        }
    }

    #[test]
    fn recovered_set_is_optimal_and_feasible() {
        let its = items(&[(1, 1), (3, 4), (4, 5), (5, 7)]);
        let (run, set) = knapsack_array_recovered(&its, 7);
        assert_eq!(set, vec![1, 2]);
        let weight: u64 = set.iter().map(|&i| its[i].weight).sum();
        let value: u64 = set.iter().map(|&i| its[i].value).sum();
        assert!(weight <= 7);
        assert_eq!(value, run.best);
    }

    #[test]
    fn batch_matches_single_runs() {
        let a = items(&[(1, 1), (3, 4), (4, 5), (5, 7)]);
        let b = items(&[(2, 2), (2, 3)]);
        let c = items(&[(1, 9)]);
        let batch = knapsack_array_batch(&[&a, &b, &c], 7).unwrap();
        for (t, its) in [&a, &b, &c].iter().enumerate() {
            let single = knapsack_array(its, 7);
            assert_eq!(batch.bests[t], single.best, "t={t}");
            assert_eq!(batch.per_capacity[t], single.per_capacity, "t={t}");
        }
        assert!(matches!(
            knapsack_array_batch(&[], 7),
            Err(SdpError::EmptyBatch)
        ));
    }

    #[test]
    fn traced_matches_untraced() {
        use sdp_trace::CountingSink;
        let its = items(&[(1, 1), (3, 4), (4, 5)]);
        let plain = knapsack_array(&its, 6);
        let mut sink = CountingSink::default();
        let traced = knapsack_array_traced(&its, 6, &mut sink);
        assert_eq!(traced, plain);
        assert_eq!(sink.cycles, plain.cycles);
        assert_eq!(sink.faults_injected, 0);
    }

    #[test]
    fn stuck_pe_corrupts_value_without_stalling() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        use sdp_trace::CountingSink;
        let its = items(&[(1, 1), (3, 4), (4, 5), (5, 7)]);
        let clean = knapsack_array(&its, 7);
        // Permanently stick PE 7's payloads high: every value it emits
        // is forged (silent data corruption), but weights and the flush
        // sweep are routing state — the drained row still has C+1
        // entries on the closed-form schedule.
        let plan = FaultPlan::new().with(Fault::StuckAt {
            pe: 7,
            cycle: 2,
            value: 1_000,
        });
        let mut inj = PlanInjector::new(plan);
        let mut sink = CountingSink::default();
        let faulty = knapsack_fault_traced(&its, 7, &mut inj, &mut sink).unwrap();
        assert_eq!(faulty.cycles, clean.cycles);
        assert_eq!(faulty.per_capacity.len(), clean.per_capacity.len());
        assert!(sink.faults_injected > 0);
        assert_ne!(faulty.per_capacity, clean.per_capacity);
    }
}
