//! A clocked triangular systolic array for the optimal-parenthesization
//! problem — the Guibas–Kung–Thompson structure the paper identifies at
//! the end of §6.2 ("the derived structure is the same as that proposed
//! by Guibas et al. \[11\]").
//!
//! One cell per subchain `m_{i,j}` (`i ≤ j`), arranged in a triangle.
//! When cell `(i, k)` completes, its value streams **rightward along row
//! `i`** one cell per cycle; when `(k+1, j)` completes, its value streams
//! **upward along column `j`** one cell per cycle.  Cell `(i, j)` must
//! pair the row operand `m_{i,k}` with the column operand `m_{k+1,j}` for
//! every split `k`, retiring at most [`GktArray::ops_per_cycle`] pairs per
//! cycle (an add + compare each); when its last pair retires it completes
//! and begins transmitting in turn.
//!
//! Unlike [`crate::chain_array`], which models completion *times*
//! analytically per alternative, this module runs an explicit
//! message-passing clock: every operand hop is a delivery event, so the
//! linear-time behaviour (`T = Θ(N)`; the paper's Prop. 3 constant is 2
//! under its two-ops-per-step convention) *emerges* from the simulation
//! rather than being assumed.

// Grid/stage updates read clearer with explicit indices.
#![allow(clippy::needless_range_loop)]
use sdp_semiring::Cost;

/// One in-flight operand word.
#[derive(Clone, Copy, Debug)]
struct Msg {
    /// Destination cell.
    to: (usize, usize),
    /// Which split this operand serves at the destination.
    split: usize,
    /// Operand side: row (left) or column (down).
    from_row: bool,
    /// The carried subchain cost.
    value: Cost,
    /// Delivery cycle.
    at: u64,
}

/// Per-cell progress.
#[derive(Clone, Debug)]
struct Cell {
    /// `pairs[k - i]` = (row operand, column operand) once delivered.
    pairs: Vec<(Option<Cost>, Option<Cost>)>,
    /// Pairs fully delivered and awaiting processing: (ready_cycle, k).
    ready: Vec<(u64, usize)>,
    retired: usize,
    /// OR-accumulation over processed alternatives.
    best: Cost,
    /// Completion cycle (0 = not complete).
    done_at: u64,
    value: Cost,
}

/// Result of a triangular-array run.
#[derive(Clone, Debug)]
pub struct GktResult {
    /// The optimal chain cost `m_{1,N}`.
    pub cost: Cost,
    /// Cycle at which the apex cell completed.
    pub finish: u64,
    /// Completion cycle of every cell (`done[i][j]`, `i ≤ j`).
    pub done: Vec<Vec<u64>>,
    /// Total operand deliveries (words moved between cells).
    pub messages: u64,
    /// Total pair-retirement operations (adds + compares).
    pub operations: u64,
}

/// The triangular array simulator.
pub struct GktArray {
    /// Alternatives a cell may retire per cycle.  The paper's broadcast
    /// analysis charges two ("two additions and two comparisons are
    /// performed" per step); GKT's original cells retire one.
    pub ops_per_cycle: usize,
}

impl Default for GktArray {
    fn default() -> Self {
        GktArray { ops_per_cycle: 2 }
    }
}

impl GktArray {
    /// An array retiring `ops_per_cycle` alternatives per cell per cycle.
    pub fn new(ops_per_cycle: usize) -> GktArray {
        assert!(ops_per_cycle >= 1);
        GktArray { ops_per_cycle }
    }

    /// Runs the array on chain dimensions `dims` (`r₀ … r_N`) — the
    /// matrix-chain instance of [`GktArray::run_problem`].
    pub fn run(&self, dims: &[u64]) -> GktResult {
        assert!(dims.len() >= 2, "need at least one matrix");
        self.run_problem(&crate::chain_problem::MatrixChain { dims })
    }

    /// Runs the array on any chain-structured polyadic DP.
    pub fn run_problem(&self, problem: &impl crate::chain_problem::ChainProblem) -> GktResult {
        let n = problem.n();
        assert!(n >= 1, "need at least one leaf");
        let mut cells: Vec<Vec<Cell>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| Cell {
                        pairs: if j >= i {
                            vec![(None, None); j - i]
                        } else {
                            vec![]
                        },
                        ready: Vec::new(),
                        retired: 0,
                        best: Cost::INF,
                        done_at: 0,
                        value: Cost::INF,
                    })
                    .collect()
            })
            .collect();
        let mut inflight: Vec<Msg> = Vec::new();
        let mut messages = 0u64;
        let mut operations = 0u64;

        // Diagonal cells complete at cycle 1 with the leaf values and
        // begin transmitting immediately.
        let mut completions: Vec<(usize, usize, Cost, u64)> = Vec::new();
        for i in 0..n {
            let leaf = problem.leaf_cost(i);
            cells[i][i].value = leaf;
            cells[i][i].best = leaf;
            cells[i][i].done_at = 1;
            completions.push((i, i, leaf, 1));
        }

        let emit = |inflight: &mut Vec<Msg>,
                    messages: &mut u64,
                    n: usize,
                    (i, j): (usize, usize),
                    v: Cost,
                    t: u64| {
            // Row i rightward: (i, j) serves split k = j at every (i, j')
            // with j' > j; hop distance j' - j.
            for jp in j + 1..n {
                inflight.push(Msg {
                    to: (i, jp),
                    split: j,
                    from_row: true,
                    value: v,
                    at: t + (jp - j) as u64,
                });
                *messages += 1;
            }
            // Column j upward: (i, j) serves split k = i − 1 at every
            // (i', j) with i' < i; hop distance i − i'.
            for ip in (0..i).rev() {
                inflight.push(Msg {
                    to: (ip, j),
                    split: i - 1,
                    from_row: false,
                    value: v,
                    at: t + (i - ip) as u64,
                });
                *messages += 1;
            }
        };
        for (i, j, v, t) in completions.drain(..) {
            emit(&mut inflight, &mut messages, n, (i, j), v, t);
        }

        let total_cells = n * (n + 1) / 2;
        let mut completed = n; // diagonal done
        let mut clock = 1u64;
        let budget = 16 * (n as u64 + 2) + 64;
        while completed < total_cells {
            clock += 1;
            assert!(clock <= budget, "GKT simulation did not converge");
            // 1. deliver this cycle's messages
            let mut still: Vec<Msg> = Vec::with_capacity(inflight.len());
            for msg in inflight.drain(..) {
                if msg.at == clock {
                    let (i, j) = msg.to;
                    let cell = &mut cells[i][j];
                    let slot = &mut cell.pairs[msg.split - i];
                    if msg.from_row {
                        slot.0 = Some(msg.value);
                    } else {
                        slot.1 = Some(msg.value);
                    }
                    if let (Some(_), Some(_)) = *slot {
                        cell.ready.push((clock, msg.split));
                    }
                } else {
                    still.push(msg);
                }
            }
            inflight = still;
            // 2. cells retire ready pairs (delivered on earlier cycles)
            for i in 0..n {
                for j in i + 1..n {
                    let cell = &mut cells[i][j];
                    if cell.done_at != 0 || cell.ready.is_empty() {
                        continue;
                    }
                    let mut ops = 0;
                    let mut idx = 0;
                    while idx < cell.ready.len() && ops < self.ops_per_cycle {
                        let (arrived, k) = cell.ready[idx];
                        if arrived < clock {
                            let (l, r) = cell.pairs[k - i];
                            let local = problem.combine_cost(i, k, j);
                            let cand = l.expect("paired") + r.expect("paired") + local;
                            cell.best = cell.best.min(cand);
                            cell.retired += 1;
                            operations += 1;
                            ops += 1;
                            cell.ready.remove(idx);
                        } else {
                            idx += 1;
                        }
                    }
                    if cell.retired == cell.pairs.len() {
                        cell.done_at = clock;
                        cell.value = cell.best;
                        completed += 1;
                        let v = cell.best;
                        emit(&mut inflight, &mut messages, n, (i, j), v, clock);
                    }
                }
            }
        }

        let done = (0..n)
            .map(|i| (0..n).map(|j| cells[i][j].done_at).collect())
            .collect();
        GktResult {
            cost: cells[0][n - 1].value,
            finish: cells[0][n - 1].done_at,
            done,
            messages,
            operations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_andor::chain::matrix_chain_order;
    use sdp_multistage::generate;

    #[test]
    fn computes_the_dp_optimum() {
        let cases: &[&[u64]] = &[
            &[30, 35, 15, 5, 10, 20, 25],
            &[2, 3, 4],
            &[5, 4, 6, 2, 7],
            &[7, 3],
        ];
        for dims in cases {
            let res = GktArray::default().run(dims);
            assert_eq!(res.cost, matrix_chain_order(dims).cost, "{dims:?}");
        }
    }

    #[test]
    fn random_chains_match_dp() {
        for seed in 0..20 {
            let n = 2 + (seed as usize % 12);
            let dims = generate::random_chain_dims(seed, n, 1, 40);
            let res = GktArray::default().run(&dims);
            assert_eq!(res.cost, matrix_chain_order(&dims).cost, "seed {seed}");
        }
    }

    #[test]
    fn finish_time_is_linear_in_n() {
        // T(n) must be affine: T(2n) − 2·T(n) constant, slope near the
        // paper's 2 (two retirements per cycle).
        let t = |n: usize| {
            let dims: Vec<u64> = (0..=n).map(|i| 1 + (i as u64 % 5)).collect();
            GktArray::default().run(&dims).finish
        };
        let (t8, t16, t32, t64) = (t(8), t(16), t(32), t(64));
        let s1 = (t32 - t16) as f64 / 16.0;
        let s2 = (t64 - t32) as f64 / 32.0;
        assert!((s1 - s2).abs() < 0.2, "slope drift: {s1} vs {s2}");
        assert!((1.5..=3.0).contains(&s1), "slope {s1} out of linear band");
        // affine check
        let c1 = t16 as i64 - 2 * t8 as i64;
        let c2 = t32 as i64 - 2 * t16 as i64;
        assert!((c1 - c2).abs() <= 2, "not affine: {c1} vs {c2}");
    }

    #[test]
    fn one_op_per_cycle_is_slower_but_correct() {
        let dims = generate::random_chain_dims(5, 12, 1, 30);
        let fast = GktArray::new(2).run(&dims);
        let slow = GktArray::new(1).run(&dims);
        assert_eq!(fast.cost, slow.cost);
        assert!(slow.finish >= fast.finish);
    }

    #[test]
    fn completion_wavefront_is_monotone_in_size() {
        let dims: Vec<u64> = (0..=10).map(|i| 2 + (i % 3)).collect();
        let res = GktArray::default().run(&dims);
        for i in 0..10 {
            for j in i + 1..10 {
                assert!(
                    res.done[i][j] > res.done[i][j - 1],
                    "({i},{j}) before its left neighbour"
                );
                assert!(
                    res.done[i][j] > res.done[i + 1][j],
                    "({i},{j}) before its lower neighbour"
                );
            }
        }
    }

    #[test]
    fn message_count_is_cubic_shape() {
        // Every cell value travels to all cells right in its row and up
        // in its column: Σ distances = Θ(n³) words for the full triangle.
        let t = |n: usize| {
            let dims: Vec<u64> = (0..=n).map(|_| 3).collect();
            GktArray::default().run(&dims).messages
        };
        let (m8, m16) = (t(8), t(16));
        let growth = m16 as f64 / m8 as f64;
        assert!((6.0..=10.0).contains(&growth), "growth {growth} not ~8x");
    }

    #[test]
    fn operations_equal_total_alternatives() {
        let n = 9usize;
        let dims: Vec<u64> = (0..=n).map(|_| 2).collect();
        let res = GktArray::default().run(&dims);
        let alts: u64 = (2..=n as u64)
            .map(|len| (len - 1) * (n as u64 - len + 1))
            .sum();
        assert_eq!(res.operations, alts);
    }

    #[test]
    fn merge_tree_runs_on_the_triangle() {
        use crate::chain_problem::{ChainProblem, MergeTree};
        let freq = [12u64, 3, 25, 7, 18, 4, 9];
        let p = MergeTree::new(&freq);
        let res = GktArray::default().run_problem(&p);
        assert_eq!(res.cost, p.solve_dp());
        assert_eq!(res.finish, 2 * freq.len() as u64 - 1);
    }

    #[test]
    fn single_matrix_completes_immediately() {
        let res = GktArray::default().run(&[4, 7]);
        assert_eq!(res.cost, Cost::ZERO);
        assert_eq!(res.finish, 1);
    }
}
