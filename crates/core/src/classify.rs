//! Classification of DP formulations and the Table 1 recommendation
//! engine (§2, §7).
//!
//! The paper's taxonomy crosses two attributes: **monadic vs polyadic**
//! (one recursive term per cost function, or several) and **serial vs
//! nonserial** (interaction graph a simple chain, or not).  Table 1 then
//! maps each of the four classes to a suitable evaluation method and its
//! functional (hardware) requirements.  This module encodes the taxonomy
//! and the table, so a caller can describe a problem and be routed to the
//! right machinery in this workspace.

use std::fmt;

/// Number of recursive terms in the cost function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arity {
    /// One recursive term (Eqs. 1–2).
    Monadic,
    /// More than one recursive term (Eq. 3).
    Polyadic,
}

/// Interaction structure of the objective function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Seriality {
    /// Each functional term shares one variable with its predecessor and
    /// one with its successor (interaction graph is a chain).
    Serial,
    /// Arbitrary term interactions (Eq. 5).
    Nonserial,
}

/// A DP formulation class — one of the paper's four.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Formulation {
    /// Monadic or polyadic.
    pub arity: Arity,
    /// Serial or nonserial.
    pub seriality: Seriality,
}

impl Formulation {
    /// Monadic-serial (Eq. 1/2 over a multistage graph).
    pub const MONADIC_SERIAL: Formulation = Formulation {
        arity: Arity::Monadic,
        seriality: Seriality::Serial,
    };
    /// Polyadic-serial (Eq. 3 / divide-and-conquer).
    pub const POLYADIC_SERIAL: Formulation = Formulation {
        arity: Arity::Polyadic,
        seriality: Seriality::Serial,
    };
    /// Monadic-nonserial (Eq. 36-style chained overlaps).
    pub const MONADIC_NONSERIAL: Formulation = Formulation {
        arity: Arity::Monadic,
        seriality: Seriality::Nonserial,
    };
    /// Polyadic-nonserial (Eq. 6 / matrix-chain ordering).
    pub const POLYADIC_NONSERIAL: Formulation = Formulation {
        arity: Arity::Polyadic,
        seriality: Seriality::Nonserial,
    };

    /// All four classes in Table 1 order.
    pub const ALL: [Formulation; 4] = [
        Formulation::MONADIC_SERIAL,
        Formulation::POLYADIC_SERIAL,
        Formulation::MONADIC_NONSERIAL,
        Formulation::POLYADIC_NONSERIAL,
    ];
}

impl fmt::Display for Formulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = match self.arity {
            Arity::Monadic => "monadic",
            Arity::Polyadic => "polyadic",
        };
        let s = match self.seriality {
            Seriality::Serial => "serial",
            Seriality::Nonserial => "nonserial",
        };
        write!(f, "{a}-{s}")
    }
}

/// Quantitative profile used to refine the recommendation (Table 1's
/// "problem characteristic" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemShape {
    /// Number of stages (or variables) `N`.
    pub stages: u64,
    /// States / quantized values per stage `m`.
    pub states_per_stage: u64,
}

/// A Table 1 row: the suitable method and its functional requirements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recommendation {
    /// The formulation class this applies to.
    pub class: Formulation,
    /// Matching "problem characteristic" from Table 1.
    pub characteristic: &'static str,
    /// Table 1's "suitable method".
    pub method: &'static str,
    /// Table 1's "functional requirements".
    pub requirements: &'static str,
    /// Which module of this workspace implements it.
    pub implemented_by: &'static str,
}

/// Returns the Table 1 row for a formulation class.
pub fn table1(class: Formulation) -> Recommendation {
    match (class.arity, class.seriality) {
        (Arity::Monadic, Seriality::Serial) => Recommendation {
            class,
            characteristic: "many states or quantized values in each stage",
            method: "solve as string of matrix multiplications",
            requirements: "systolic processing",
            implemented_by: "sdp_core::{design1, design2, design3}",
        },
        (Arity::Polyadic, Seriality::Serial) => Recommendation {
            class,
            characteristic: "many stages",
            method: "solve by divide-and-conquer algorithms, or search AND/OR-trees",
            requirements: "loose coupling for fine grain; tight coupling for coarse grain",
            implemented_by: "sdp_core::dnc + sdp_andor::partition",
        },
        (Arity::Monadic, Seriality::Nonserial) => Recommendation {
            class,
            characteristic: "variables can be eliminated one by one",
            method: "transform into monadic-serial representation (by grouping variables)",
            requirements: "systolic processing",
            implemented_by: "sdp_andor::nonserial (TernaryChain::group_to_serial)",
        },
        (Arity::Polyadic, Seriality::Nonserial) => Recommendation {
            class,
            characteristic: "unstructured problems",
            method: "search AND/OR-graphs; transform into serial AND/OR-graphs",
            requirements: "dataflow or systolic processing",
            implemented_by: "sdp_core::chain_array + sdp_andor::serialize",
        },
    }
}

/// Chooses between the two *serial* strategies based on shape, following
/// §7: many states per stage favours the monadic matrix-string route;
/// many stages favours the polyadic divide-and-conquer route.
pub fn recommend_serial(shape: ProblemShape) -> Recommendation {
    if shape.stages > shape.states_per_stage {
        table1(Formulation::POLYADIC_SERIAL)
    } else {
        table1(Formulation::MONADIC_SERIAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_classes_have_distinct_rows() {
        let rows: Vec<_> = Formulation::ALL.iter().map(|&c| table1(c)).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(rows[i].method, rows[j].method);
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Formulation::MONADIC_SERIAL.to_string(), "monadic-serial");
        assert_eq!(
            Formulation::POLYADIC_NONSERIAL.to_string(),
            "polyadic-nonserial"
        );
    }

    #[test]
    fn serial_rows_require_systolic_or_coupling() {
        let ms = table1(Formulation::MONADIC_SERIAL);
        assert!(ms.requirements.contains("systolic"));
        let ps = table1(Formulation::POLYADIC_SERIAL);
        assert!(ps.requirements.contains("coupling"));
    }

    #[test]
    fn shape_routing_follows_section7() {
        // "If there are a large number of states ... monadic formulation
        // is more appropriate"; "if the number of stages is large ...
        // polyadic formulation".
        let wide = ProblemShape {
            stages: 10,
            states_per_stage: 1000,
        };
        assert_eq!(recommend_serial(wide).class, Formulation::MONADIC_SERIAL);
        let deep = ProblemShape {
            stages: 4096,
            states_per_stage: 4,
        };
        assert_eq!(recommend_serial(deep).class, Formulation::POLYADIC_SERIAL);
    }

    #[test]
    fn nonserial_rows_point_at_transforms() {
        assert!(table1(Formulation::MONADIC_NONSERIAL)
            .method
            .contains("grouping"));
        assert!(table1(Formulation::POLYADIC_NONSERIAL)
            .method
            .contains("AND/OR"));
    }
}
