//! Wavefront sequence comparison on the 2-D mesh — the
//! pattern-recognition DP of the paper's reference \[23\] (Ney, "Dynamic
//! Programming as a Technique for Pattern Recognition").
//!
//! Levenshtein / time-warping recurrences
//!
//! ```text
//! D[i][j] = min( D[i−1][j] + 1, D[i][j−1] + 1, D[i−1][j−1] + sub(aᵢ, bⱼ) )
//! ```
//!
//! map onto a `|a| × |b|` mesh with one cell per `(i, j)`: the anti-
//! diagonal wavefront advances one step per cycle, so the whole table
//! completes in `|a| + |b| − 1` cycles.  The missing diagonal link is
//! realized by piggybacking: the word a cell sends **south** carries both
//! its own value (the neighbour's "north") and the value it received from
//! the **west** (the neighbour's "north-west").

use sdp_fault::{FaultInjector, NoFaults, SdpError};
use sdp_systolic::{Mesh2D, MeshProcessingElement, Stats};
use sdp_trace::{NullSink, TraceSink};

/// The word sent south: `(D[i][j], D[i][j−1])` — value plus west input.
type SouthWord = (u64, u64);

/// One table cell.  Characters are preloaded (row `i` holds `a[i]`,
/// column `j` holds `b[j]`), matching the weight-stationary convention.
struct EditPe {
    a: u8,
    b: u8,
    value: Option<u64>,
    busy: bool,
}

impl MeshProcessingElement for EditPe {
    /// West → east: this cell's `D[i][j]` (the neighbour's "left").
    type Horiz = u64;
    /// North → south: `(D[i−1][j], D[i−1][j−1])`.
    type Vert = SouthWord;
    type Ctrl = ();

    fn step(
        &mut self,
        west: Option<u64>,
        north: Option<SouthWord>,
        _: (),
    ) -> (Option<u64>, Option<SouthWord>) {
        self.busy = false;
        if self.value.is_none() {
            if let (Some(left), Some((up, diag))) = (west, north) {
                let sub = if self.a == self.b { 0 } else { 1 };
                let d = (left + 1).min(up + 1).min(diag + sub);
                self.value = Some(d);
                self.busy = true;
                // Emit immediately: east carries D[i][j]; south carries
                // (D[i][j], D[i][j-1]) for the cell below.
                return (Some(d), Some((d, left)));
            }
        }
        (None, None)
    }

    fn was_busy(&self) -> bool {
        self.busy
    }

    fn probe(&self) -> Option<i64> {
        self.value.map(|v| v as i64)
    }
}

/// One table cell of the batched mesh: per-instance character pairs are
/// preloaded, and each wavefront that crosses the cell computes the next
/// instance's value.  Instance `t`'s wavefront reaches cell `(i, j)` at
/// cycle `i + j + t` — the instances ride one cycle apart, so the whole
/// batch finishes in `p + q − 2 + B` cycles instead of `B·(p + q − 1)`.
struct BatchEditPe {
    /// `a_chars[t]` = instance `t`'s row character `a_t[i]`.
    a_chars: Vec<u8>,
    /// `b_chars[t]` = instance `t`'s column character `b_t[j]`.
    b_chars: Vec<u8>,
    /// Instances computed so far (= the next instance index to fire).
    fired: usize,
    /// Most recent value computed (waveform probe).
    last: Option<u64>,
    busy: bool,
}

impl MeshProcessingElement for BatchEditPe {
    type Horiz = u64;
    type Vert = SouthWord;
    type Ctrl = ();

    fn step(
        &mut self,
        west: Option<u64>,
        north: Option<SouthWord>,
        _: (),
    ) -> (Option<u64>, Option<SouthWord>) {
        self.busy = false;
        if self.fired < self.a_chars.len() {
            if let (Some(left), Some((up, diag))) = (west, north) {
                let t = self.fired;
                let sub = if self.a_chars[t] == self.b_chars[t] {
                    0
                } else {
                    1
                };
                let d = (left + 1).min(up + 1).min(diag + sub);
                self.fired += 1;
                self.last = Some(d);
                self.busy = true;
                return (Some(d), Some((d, left)));
            }
        }
        (None, None)
    }

    fn was_busy(&self) -> bool {
        self.busy
    }

    fn probe(&self) -> Option<i64> {
        self.last.map(|v| v as i64)
    }
}

/// Result of one mesh run.
#[derive(Clone, Debug)]
pub struct EditRun {
    /// The edit distance `D[|a|−1][|b|−1]`.
    pub distance: u64,
    /// Cycles taken (`|a| + |b| − 1`).
    pub cycles: u64,
    /// Engine statistics.
    pub stats: Stats,
}

/// Computes Levenshtein distance on the wavefront mesh.
///
/// Empty operands short-circuit to the other operand's length (a 0-sized
/// mesh cannot be built).
pub fn edit_distance_mesh(a: &[u8], b: &[u8]) -> EditRun {
    edit_distance_mesh_traced(a, b, &mut NullSink)
}

/// [`edit_distance_mesh`] with an event sink; PE indices in the emitted
/// events are row-major over the `|a| × |b|` mesh.
pub fn edit_distance_mesh_traced<S: TraceSink>(a: &[u8], b: &[u8], sink: &mut S) -> EditRun {
    try_edit_distance_mesh_traced(a, b, sink).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`edit_distance_mesh`].
pub fn try_edit_distance_mesh(a: &[u8], b: &[u8]) -> Result<EditRun, SdpError> {
    try_edit_distance_mesh_traced(a, b, &mut NullSink)
}

/// Non-panicking [`edit_distance_mesh_traced`].
pub fn try_edit_distance_mesh_traced<S: TraceSink>(
    a: &[u8],
    b: &[u8],
    sink: &mut S,
) -> Result<EditRun, SdpError> {
    edit_distance_fault_traced(a, b, &mut NoFaults, sink)
}

/// [`edit_distance_mesh_traced`] under fault injection.  Both mesh word
/// types (`u64` east, `(u64, u64)` south) carry the cell value in the
/// leading position, so injected faults perturb `D[i][j]` while the
/// piggybacked west value and the wavefront timing stay intact: a faulty
/// run finishes in the same `|a| + |b| − 1` cycles with a (possibly)
/// wrong distance — exactly the silent-data-corruption model the
/// recovery wrappers detect.
pub fn edit_distance_fault_traced<F: FaultInjector, S: TraceSink>(
    a: &[u8],
    b: &[u8],
    injector: &mut F,
    sink: &mut S,
) -> Result<EditRun, SdpError> {
    if a.is_empty() || b.is_empty() {
        // No mesh is built and no cycle runs, so the stats must report
        // zero PEs — not a phantom idle processor.
        return Ok(EditRun {
            distance: (a.len() + b.len()) as u64,
            cycles: 0,
            stats: Stats::new(0),
        });
    }
    let (p, q) = (a.len(), b.len());
    let mut mesh = Mesh2D::try_new(
        p,
        q,
        (0..p)
            .flat_map(|i| (0..q).map(move |j| (i, j)))
            .map(|(i, j)| EditPe {
                a: a[i],
                b: b[j],
                value: None,
                busy: false,
            })
            .collect::<Vec<_>>(),
    )?;
    let total = (p + q - 1) as u64;
    let mut result = None;
    for t in 0..total {
        // Boundary injections arrive exactly on the wavefront:
        // cell (r, 0) computes at cycle r and needs D[r][-1] = r + 1;
        // cell (0, c) needs (D[-1][c], D[-1][c-1]) = (c + 1, c).
        let (east, south) = mesh.cycle_fault_traced(
            |r| (r as u64 == t).then(|| r as u64 + 1),
            |c| (c as u64 == t).then(|| (c as u64 + 1, c as u64)),
            |_, _| (),
            injector,
            sink,
        );
        // The apex value leaves the east edge of the last row (or the
        // south edge of the last column) on the final cycle.
        if let Some(d) = east[p - 1] {
            result = Some(d);
        }
        if let Some((d, _)) = south[q - 1] {
            result = Some(d);
        }
    }
    // Value faults never suppress a firing (the corrupt hook rewrites
    // payloads, it cannot drop mesh words), so the apex always emits.
    Ok(EditRun {
        distance: result.expect("apex cell fired on the last cycle"),
        cycles: mesh.stats().cycles(),
        stats: mesh.stats().clone(),
    })
}

/// Result of a batched mesh run.
#[derive(Clone, Debug)]
pub struct BatchEditRun {
    /// One distance per input pair, in batch order.
    pub distances: Vec<u64>,
    /// Total cycles: `p + q − 2 + B` (vs `B·(p + q − 1)` sequential).
    pub cycles: u64,
    /// Engine statistics over the whole batch.
    pub stats: Stats,
}

impl BatchEditRun {
    /// Measured processor utilization: `B·p·q` cell computations over
    /// `cycles × p·q` PE-cycles.  Single runs peak at `1/(p + q − 1)`;
    /// batching asymptotically saturates the mesh.
    pub fn measured_pu(&self) -> f64 {
        self.stats
            .processor_utilization(self.distances.len() as u64 * self.stats.num_pes() as u64)
    }
}

/// Streams a batch of same-shaped comparisons through one mesh with
/// wavefronts one cycle apart (instance `t`'s wavefront is `t` cycles
/// behind instance 0's).  All pairs must share instance 0's operand
/// lengths; an empty batch and shape mismatches are typed errors.
pub fn edit_distance_mesh_batch(pairs: &[(&[u8], &[u8])]) -> Result<BatchEditRun, SdpError> {
    edit_distance_mesh_batch_traced(pairs, &mut NullSink)
}

/// [`edit_distance_mesh_batch`] with an event sink.  A batch of one
/// emits exactly the event stream of [`edit_distance_mesh_traced`].
pub fn edit_distance_mesh_batch_traced<S: TraceSink>(
    pairs: &[(&[u8], &[u8])],
    sink: &mut S,
) -> Result<BatchEditRun, SdpError> {
    if pairs.is_empty() {
        return Err(SdpError::EmptyBatch);
    }
    let (p, q) = (pairs[0].0.len(), pairs[0].1.len());
    for (index, (a, b)) in pairs.iter().enumerate() {
        if (a.len(), b.len()) != (p, q) {
            return Err(SdpError::BatchShapeMismatch { index });
        }
    }
    let bn = pairs.len();
    if p == 0 || q == 0 {
        return Ok(BatchEditRun {
            distances: vec![(p + q) as u64; bn],
            cycles: 0,
            stats: Stats::new(0),
        });
    }
    let mut mesh = Mesh2D::try_new(
        p,
        q,
        (0..p)
            .flat_map(|i| (0..q).map(move |j| (i, j)))
            .map(|(i, j)| BatchEditPe {
                a_chars: pairs.iter().map(|(a, _)| a[i]).collect(),
                b_chars: pairs.iter().map(|(_, b)| b[j]).collect(),
                fired: 0,
                last: None,
                busy: false,
            })
            .collect::<Vec<_>>(),
    )?;
    let total = (p + q - 2 + bn) as u64;
    let mut distances = Vec::with_capacity(bn);
    for t in 0..total {
        // Instance `inst`'s boundary values arrive on its wavefront:
        // cell (r, 0) fires instance `inst` at cycle r + inst.
        let (east, _south) = mesh.cycle_traced(
            |r| {
                let inst = t as i64 - r as i64;
                (0..bn as i64).contains(&inst).then(|| r as u64 + 1)
            },
            |c| {
                let inst = t as i64 - c as i64;
                (0..bn as i64)
                    .contains(&inst)
                    .then(|| (c as u64 + 1, c as u64))
            },
            |_, _| (),
            sink,
        );
        // The apex cell fires once per instance, in batch order, and its
        // value leaves the east edge of the last row the same cycle.
        if let Some(d) = east[p - 1] {
            distances.push(d);
        }
    }
    debug_assert_eq!(distances.len(), bn);
    Ok(BatchEditRun {
        distances,
        cycles: mesh.stats().cycles(),
        stats: mesh.stats().clone(),
    })
}

/// Reference sequential edit distance (full-table DP oracle).
pub fn edit_distance_seq(a: &[u8], b: &[u8]) -> u64 {
    let (p, q) = (a.len(), b.len());
    let mut prev: Vec<u64> = (0..=q as u64).collect();
    let mut cur = vec![0u64; q + 1];
    for i in 1..=p {
        cur[0] = i as u64;
        for j in 1..=q {
            let sub = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + sub);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[q]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(edit_distance_mesh(b"kitten", b"sitting").distance, 3);
        assert_eq!(edit_distance_mesh(b"flaw", b"lawn").distance, 2);
        assert_eq!(edit_distance_mesh(b"abc", b"abc").distance, 0);
        assert_eq!(edit_distance_mesh(b"a", b"b").distance, 1);
    }

    #[test]
    fn empty_operands() {
        assert_eq!(edit_distance_mesh(b"", b"abc").distance, 3);
        assert_eq!(edit_distance_mesh(b"ab", b"").distance, 2);
        assert_eq!(edit_distance_mesh(b"", b"").distance, 0);
    }

    #[test]
    fn empty_operands_report_zero_pes() {
        // Regression: the short-circuit path used to claim one phantom
        // PE (Stats::new(1)), skewing any aggregate PE accounting.
        for (a, b) in [(&b""[..], &b"abc"[..]), (b"ab", b""), (b"", b"")] {
            let run = edit_distance_mesh(a, b);
            assert_eq!(run.stats.num_pes(), 0);
            assert_eq!(run.stats.cycles(), 0);
            assert_eq!(run.stats.utilization().overall, 0.0);
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        use sdp_trace::CountingSink;
        let plain = edit_distance_mesh(b"kitten", b"sitting");
        let mut sink = CountingSink::default();
        let traced = edit_distance_mesh_traced(b"kitten", b"sitting", &mut sink);
        assert_eq!(traced.distance, plain.distance);
        assert_eq!(traced.cycles, plain.cycles);
        assert_eq!(sink.cycles, plain.cycles);
        assert_eq!(sink.pe_fires, plain.cycles * 6 * 7);
        assert_eq!(
            sink.busy_fires,
            (0..42).map(|i| plain.stats.busy(i)).sum::<u64>()
        );
    }

    #[test]
    fn cycles_are_p_plus_q_minus_1() {
        let run = edit_distance_mesh(b"kitten", b"sitting");
        assert_eq!(run.cycles, 6 + 7 - 1);
    }

    #[test]
    fn matches_sequential_on_random_strings() {
        let mut state = 12345u64;
        let mut next = move |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    b'a' + ((state >> 33) % 4) as u8
                })
                .collect()
        };
        for case in 0..30 {
            let a = next(1 + case % 9);
            let b = next(1 + (case * 7) % 11);
            let mesh = edit_distance_mesh(&a, &b).distance;
            let seq = edit_distance_seq(&a, &b);
            assert_eq!(mesh, seq, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn each_cell_computes_exactly_once() {
        let run = edit_distance_mesh(b"abcd", b"xyz");
        let busy: u64 = (0..12).map(|i| run.stats.busy(i)).sum();
        assert_eq!(busy, 12);
    }

    #[test]
    fn no_faults_run_matches_plain() {
        use sdp_trace::CountingSink;
        let plain = edit_distance_mesh(b"kitten", b"sitting");
        let mut sink = CountingSink::default();
        let run =
            edit_distance_fault_traced(b"kitten", b"sitting", &mut sdp_fault::NoFaults, &mut sink)
                .unwrap();
        assert_eq!(run.distance, plain.distance);
        assert_eq!(run.cycles, plain.cycles);
        assert_eq!(sink.faults_injected, 0);
        assert_eq!(sink.cycles, plain.cycles);
    }

    #[test]
    fn stuck_at_pe_corrupts_distance_without_stalling() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        use sdp_trace::CountingSink;
        let clean = edit_distance_mesh(b"kitten", b"sitting");
        // Pin the top-left cell's output to 40: every downstream cell
        // inherits the inflated prefix cost.
        let plan = FaultPlan::new().with(Fault::StuckAt {
            pe: 0,
            cycle: 0,
            value: 40,
        });
        let mut inj = PlanInjector::new(plan);
        let mut sink = CountingSink::default();
        let faulty =
            edit_distance_fault_traced(b"kitten", b"sitting", &mut inj, &mut sink).unwrap();
        assert_ne!(faulty.distance, clean.distance);
        // Faults degrade values, never the wavefront schedule.
        assert_eq!(faulty.cycles, clean.cycles);
        assert!(sink.faults_injected > 0);
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..8u8)
            .map(|t| {
                (
                    (0..5).map(|i| b'a' + (t + i) % 3).collect(),
                    (0..7).map(|j| b'a' + (t * 2 + j) % 3).collect(),
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        let batch = edit_distance_mesh_batch(&refs).unwrap();
        for (t, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(
                batch.distances[t],
                edit_distance_mesh(a, b).distance,
                "t={t}"
            );
            assert_eq!(batch.distances[t], edit_distance_seq(a, b), "t={t}");
        }
        assert_eq!(batch.cycles, (5 + 7 - 2 + 8) as u64);
    }

    #[test]
    fn batch_of_one_emits_single_run_event_stream() {
        use sdp_trace::RecordingSink;
        let mut single_sink = RecordingSink::default();
        let single = edit_distance_mesh_traced(b"kitten", b"sitting", &mut single_sink);
        let mut batch_sink = RecordingSink::default();
        let batch =
            edit_distance_mesh_batch_traced(&[(b"kitten", b"sitting")], &mut batch_sink).unwrap();
        assert_eq!(batch.distances, vec![single.distance]);
        assert_eq!(batch.cycles, single.cycles);
        assert_eq!(batch_sink.events, single_sink.events);
    }

    #[test]
    fn batch_pu_exceeds_single_pu() {
        let a: Vec<u8> = vec![b'a'; 6];
        let b: Vec<u8> = vec![b'b'; 6];
        let pairs: Vec<(&[u8], &[u8])> = (0..16).map(|_| (a.as_slice(), b.as_slice())).collect();
        let single = edit_distance_mesh_batch(&pairs[..1]).unwrap();
        let batch = edit_distance_mesh_batch(&pairs).unwrap();
        assert!(
            batch.measured_pu() > single.measured_pu(),
            "batch {} vs single {}",
            batch.measured_pu(),
            single.measured_pu()
        );
        // 16 wavefronts over 6+6-2+16 = 26 cycles: PU ≈ 0.62 vs 1/11.
        assert!(batch.measured_pu() > 0.5);
    }

    #[test]
    fn batch_shape_errors_and_empty_operands() {
        assert!(matches!(
            edit_distance_mesh_batch(&[]),
            Err(SdpError::EmptyBatch)
        ));
        assert!(matches!(
            edit_distance_mesh_batch(&[(b"abc", b"xy"), (b"abc", b"xyz")]),
            Err(SdpError::BatchShapeMismatch { index: 1 })
        ));
        let run = edit_distance_mesh_batch(&[(b"", b"abc"), (b"", b"xyz")]).unwrap();
        assert_eq!(run.distances, vec![3, 3]);
        assert_eq!(run.cycles, 0);
        assert_eq!(run.stats.num_pes(), 0);
    }

    #[test]
    fn wavefront_utilization_shape() {
        // On an n x n mesh only one anti-diagonal is active per cycle:
        // utilization = n² / ((2n-1)·n²) = 1/(2n-1).
        let n = 6;
        let a = vec![b'a'; n];
        let b = vec![b'b'; n];
        let run = edit_distance_mesh(&a, &b);
        let u = run.stats.utilization().overall;
        let expect = 1.0 / (2 * n - 1) as f64;
        assert!((u - expect).abs() < 1e-9, "{u} vs {expect}");
    }
}
