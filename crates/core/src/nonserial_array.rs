//! Systolic evaluation of monadic-nonserial problems via grouping
//! (§6.1's closing remark: "With additional control, the linear systolic
//! array presented earlier can be applied to evaluate monadic-nonserial
//! DP problems").
//!
//! The pipeline is: group variables (`V'ᵢ = (Vᵢ, Vᵢ₊₁)`, Eq. 41) → the
//! problem becomes a serial multistage graph over compound states → run
//! Design 1 on its matrix string.  The paper's §6.1 observation is
//! quantified by [`GroupedRun`]: the grouped form does *more total
//! operations* than direct variable elimination (state space `m²` instead
//! of `m`), but exposes systolic parallelism — the array finishes in
//! `N·m²` iterations on `m²` PEs instead of `Σ mₖmₖ₊₁mₖ₊₂` sequential
//! steps on one processor.

use crate::design1::Design1Array;
use sdp_andor::nonserial::TernaryChain;
use sdp_semiring::Cost;

/// Outcome of running a ternary chain through the grouping + Design 1
/// pipeline, with the §6.1 cost/parallelism comparison attached.
#[derive(Clone, Debug)]
pub struct GroupedRun {
    /// Optimal objective value.
    pub cost: Cost,
    /// Compound-state width of the grouped serial graph (`mᵢ·mᵢ₊₁`;
    /// uniform chains give `m²`).
    pub grouped_m: usize,
    /// Number of compound stages (`N − 1`).
    pub grouped_stages: usize,
    /// Array cycles measured by the Design 1 simulation.
    pub array_cycles: u64,
    /// The paper's charged iterations for the array (`N'·m'`).
    pub array_paper_iterations: u64,
    /// Sequential steps of direct variable elimination (Eq. 40).
    pub elimination_steps: u64,
}

impl GroupedRun {
    /// Serial-work blowup of the grouped form relative to elimination:
    /// grouped serial work `(N'−1)·m'²` over Eq. 40 steps.
    pub fn work_blowup(&self) -> f64 {
        let grouped_work = ((self.grouped_stages - 1) * self.grouped_m * self.grouped_m) as f64;
        grouped_work / self.elimination_steps as f64
    }

    /// Parallel-time speedup the array buys over sequential elimination
    /// (elimination steps / array cycles).
    pub fn speedup(&self) -> f64 {
        self.elimination_steps as f64 / self.array_cycles as f64
    }
}

/// Runs `chain` through grouping and the Design 1 array; the result is
/// checked against direct elimination internally (panics on mismatch —
/// the two routes must agree by construction).
pub fn run_grouped(chain: &TernaryChain) -> GroupedRun {
    let serial = chain.group_to_serial();
    assert!(
        serial.is_uniform(),
        "grouping nonuniform domains needs per-stage arrays"
    );
    let m = serial.stage_size(0);
    let d1 = Design1Array::new(m).run(serial.matrix_string());
    let cost = d1.optimum();
    let (elim_cost, elimination_steps) = chain.eliminate();
    assert_eq!(cost, elim_cost, "grouped array diverged from elimination");
    GroupedRun {
        cost,
        grouped_m: m,
        grouped_stages: serial.num_stages(),
        array_cycles: d1.cycles,
        array_paper_iterations: d1.paper_iterations,
        elimination_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_chain(n: usize, m: usize) -> TernaryChain {
        let domains: Vec<Vec<i64>> = (0..n)
            .map(|s| (0..m).map(|j| (s * m + j) as i64 % 7).collect())
            .collect();
        TernaryChain::uniform(domains, |a, b, c| {
            Cost::from((a - b).abs() + (b - c).abs() + (a - c).abs())
        })
    }

    #[test]
    fn grouped_cost_matches_brute_force() {
        let chain = uniform_chain(5, 3);
        let run = run_grouped(&chain);
        let (bf, _) = chain.brute_force();
        assert_eq!(run.cost, bf);
    }

    #[test]
    fn grouped_width_is_m_squared() {
        let chain = uniform_chain(5, 3);
        let run = run_grouped(&chain);
        assert_eq!(run.grouped_m, 9);
        assert_eq!(run.grouped_stages, 4);
    }

    #[test]
    fn work_blowup_but_time_speedup() {
        // §6.1: "more operations are needed ... but the potential
        // parallelism is higher."
        let chain = uniform_chain(8, 4);
        let run = run_grouped(&chain);
        assert!(run.work_blowup() > 1.0, "blowup {}", run.work_blowup());
        assert!(run.speedup() > 1.0, "speedup {}", run.speedup());
    }

    #[test]
    fn elimination_steps_match_eq40() {
        let chain = uniform_chain(6, 3);
        let run = run_grouped(&chain);
        assert_eq!(run.elimination_steps, chain.eq40_steps());
    }
}
