//! A generic interface for chain-structured polyadic DP problems.
//!
//! The paper's chain arrays (§6.2) are presented for matrix-chain
//! ordering, but Guibas–Kung–Thompson's array solves *optimal
//! parenthesization* generally: any recurrence of the shape
//!
//! ```text
//! m[i][j] = leaf(i)                                   if i = j
//! m[i][j] = min_{i<=k<j} m[i][k] + m[k+1][j] + w(i,k,j)   otherwise
//! ```
//!
//! runs on the same hardware.  [`ChainProblem`] captures that shape;
//! [`crate::chain_array`] and [`crate::gkt`] accept any implementation,
//! so the optimal binary search tree (the paper's other §2.1 polyadic
//! example) is solved by the *same arrays* as the matrix chain.

// Grid/stage updates read clearer with explicit indices.
#![allow(clippy::needless_range_loop)]
use sdp_semiring::Cost;

/// A chain-structured polyadic DP instance of size `n`.
pub trait ChainProblem {
    /// Number of leaves (matrices / keys) `N ≥ 1`.
    fn n(&self) -> usize;

    /// Value of the trivial subchain `[i, i]`.
    fn leaf_cost(&self, i: usize) -> Cost;

    /// The combination weight `w(i, k, j)` added when `[i, j]` is split
    /// at `k` (0-based, `i ≤ k < j`).
    fn combine_cost(&self, i: usize, k: usize, j: usize) -> Cost;

    /// Reference sequential solution — the oracle all arrays are checked
    /// against.
    fn solve_dp(&self) -> Cost {
        let n = self.n();
        let mut cost = vec![vec![Cost::ZERO; n]; n];
        for i in 0..n {
            cost[i][i] = self.leaf_cost(i);
        }
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                let mut best = Cost::INF;
                for k in i..j {
                    best = best.min(cost[i][k] + cost[k + 1][j] + self.combine_cost(i, k, j));
                }
                cost[i][j] = best;
            }
        }
        cost[0][n - 1]
    }
}

/// Matrix-chain ordering (Eq. 6): `dims` is `r₀ … r_N`.
#[derive(Clone, Debug)]
pub struct MatrixChain<'a> {
    /// The dimension vector `r₀ … r_N`.
    pub dims: &'a [u64],
}

impl ChainProblem for MatrixChain<'_> {
    fn n(&self) -> usize {
        self.dims.len() - 1
    }
    fn leaf_cost(&self, _i: usize) -> Cost {
        Cost::ZERO
    }
    fn combine_cost(&self, i: usize, k: usize, j: usize) -> Cost {
        Cost::saturating_from_u64(
            self.dims[i]
                .saturating_mul(self.dims[k + 1])
                .saturating_mul(self.dims[j + 1]),
        )
    }
}

/// Optimal alphabetic merge tree (minimum weighted path length over
/// ordered leaves, the Hu–Tucker / Garsia–Wachs cost):
///
/// ```text
/// m[i][j] = min_{i<=k<j} m[i][k] + m[k+1][j] + W(i, j),   m[i][i] = 0,
/// ```
///
/// where `W(i, j)` is the total frequency of leaves `i..=j`.  This is the
/// parenthesization-equivalent form of the optimal-search-tree family —
/// the leaf-oriented counterpart of the paper's §2.1 optimal-BST example
/// — and runs unchanged on the chain arrays.
#[derive(Clone, Debug)]
pub struct MergeTree<'a> {
    /// Access frequencies / merge weights.
    pub freq: &'a [u64],
    /// Prefix sums of `freq` for O(1) range weights.
    prefix: Vec<u64>,
}

impl<'a> MergeTree<'a> {
    /// Builds the instance (precomputes prefix sums).
    pub fn new(freq: &'a [u64]) -> MergeTree<'a> {
        assert!(!freq.is_empty());
        let mut prefix = vec![0u64; freq.len() + 1];
        for (i, &f) in freq.iter().enumerate() {
            prefix[i + 1] = prefix[i] + f;
        }
        MergeTree { freq, prefix }
    }

    fn weight(&self, i: usize, j: usize) -> u64 {
        self.prefix[j + 1] - self.prefix[i]
    }
}

impl ChainProblem for MergeTree<'_> {
    fn n(&self) -> usize {
        self.freq.len()
    }
    fn leaf_cost(&self, _i: usize) -> Cost {
        Cost::ZERO
    }
    fn combine_cost(&self, i: usize, _k: usize, j: usize) -> Cost {
        Cost::saturating_from_u64(self.weight(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_andor::chain::matrix_chain_order;

    #[test]
    fn matrix_chain_dp_matches_andor_solver() {
        let dims = [30u64, 35, 15, 5, 10, 20, 25];
        let p = MatrixChain { dims: &dims };
        assert_eq!(p.solve_dp(), matrix_chain_order(&dims).cost);
    }

    #[test]
    fn merge_tree_is_weighted_path_length() {
        // freq [1, 2, 3]: optimal merge tree ((1 2) 3):
        // cost = (1+2) + (3+3) = 9; alternative (1 (2 3)) = 5 + 6 = 11.
        let freq = [1u64, 2, 3];
        let p = MergeTree::new(&freq);
        assert_eq!(p.solve_dp(), Cost::from(9));
    }

    #[test]
    fn merge_tree_uniform_is_balanced() {
        // 4 equal weights w: balanced tree cost = 2·4w + ... each level
        // sums to 4w; 2 levels of internal merges above leaves: total
        // = 4w (two pair merges) + 4w (root) = 8w.
        let freq = [5u64, 5, 5, 5];
        let p = MergeTree::new(&freq);
        assert_eq!(p.solve_dp(), Cost::from(40));
    }

    #[test]
    fn single_leaf_costs_leaf() {
        let p = MergeTree::new(&[7]);
        assert_eq!(p.solve_dp(), Cost::ZERO);
        let dims = [3u64, 4];
        let q = MatrixChain { dims: &dims };
        assert_eq!(q.solve_dp(), Cost::ZERO);
    }
}
