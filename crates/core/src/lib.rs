//! Systolic-array designs for dynamic programming — the primary
//! contribution of Wah & Li (1985), reproduced as cycle-accurate
//! simulations on the [`sdp_systolic`] engine.
//!
//! # The three monadic-serial designs (§3.2)
//!
//! A monadic-serial DP problem is a string of min-plus matrix products
//! (Eq. 8).  Three linear arrays evaluate it:
//!
//! * [`design1`] — the *pipelined* array of Fig. 3: the data shifted
//!   alternate between the input vector and the result vector every `m`
//!   iterations, steered by the ODD/MOVE/FIRST control signals;
//! * [`design2`] — the *broadcast* array of Fig. 4: inputs are broadcast
//!   to every PE, results stay stationary and are fed back through the
//!   `S` registers at matrix boundaries;
//! * [`design3`] — the *node-value* array of Fig. 5: only node values
//!   enter the array (an order-of-magnitude I/O reduction), edge costs are
//!   computed in-PE by the `F` component, and a feedback controller
//!   returns stage results round-robin; optional path registers recover
//!   the optimal path.
//!
//! # Polyadic-serial machinery (§4, §5)
//!
//! * [`dnc`] — divide-and-conquer over `K` systolic arrays: Eq. 29 exact
//!   times, PU(k,N) (Prop. 1), `S·T²`/`K·T²` (Thm. 1, Fig. 6), and a real
//!   multi-threaded executor that runs the same schedule on host cores;
//!
//! # Polyadic-nonserial machinery (§6.2)
//!
//! * [`chain_array`] — the two architectures for the matrix-chain
//!   AND/OR-graph: direct broadcast mapping (`T_d(N) = N`, Prop. 2) and
//!   the serialized pipelined mapping (`T_p(N) = 2N`, Prop. 3, Fig. 8);
//!
//! # Classification (§2, §7)
//!
//! * [`classify`] — the four-way taxonomy and the Table 1 recommendation
//!   engine.
//!
//! # DP workload families
//!
//! * [`align`] — the §4 string-correction mesh generalized into an
//!   alignment engine: Smith–Waterman local alignment (max-with-zero
//!   semiring, in-flight argmax tracking), Gotoh affine gaps (three
//!   interleaved DP layers per PE), banded meshes for long sequences,
//!   and host-side traceback recovery;
//! * [`knapsack_array`] — 0/1 knapsack as a serial-monadic row
//!   streamer: capacity-indexed PEs, value trains closing the
//!   `c − w_i` dependency gap, per-PE take/leave traceback memory, and
//!   a closed-form schedule length.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod chain_array;
pub mod chain_problem;
pub mod classify;
pub mod design1;
pub mod design2;
pub mod design3;
pub mod dnc;
pub mod edit_array;
pub mod gkt;
pub mod knapsack_array;
pub mod matmul_array;
pub mod nonserial_array;
pub mod resilient;

pub use classify::{Arity, Formulation, Recommendation, Seriality};
pub use design1::Design1Array;
pub use design2::Design2Array;
pub use design3::Design3Array;
