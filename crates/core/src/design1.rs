//! **Design 1** — the pipelined linear systolic array of Fig. 3.
//!
//! The array multiplies a string of min-plus matrices with *alternating*
//! data movement, steered by the paper's control signals:
//!
//! * in an **odd** (stationary-result) phase the input vector is shifted
//!   through the pipeline while each PE accumulates one result element in
//!   its accumulator `Aᵢ` (`ODDᵢ = 1`: register `Rᵢ` drives the output);
//! * at the phase boundary the `MOVE` pulse copies `Aᵢ → Rᵢ`, turning the
//!   result vector into the next phase's stationary operand;
//! * in an **even** (moving-result) phase the matrix is fed transposed
//!   (the `i`-th column into `Pᵢ`) and partial results flow through the
//!   pipeline, each picking up `min(y, bⱼᵢ + Rᵢ)` per hop (`ODDᵢ = 0`:
//!   the accumulator drives the output).
//!
//! Control switches ripple one PE per cycle; the simulation realizes this
//! by having each PE switch phases after processing exactly `m` items,
//! which is equivalent because items advance one PE per cycle.
//!
//! For an `(N+1)`-stage single-source/single-sink graph (`N` matrices,
//! `m` nodes per intermediate stage) the paper charges `N·m` iterations on
//! `m` PEs (Eq. 9); the simulation reports measured cycles alongside.

use sdp_fault::{FaultInjector, NoFaults, RecoveryStats, SdpError};
use sdp_semiring::{Cost, Matrix, MinPlus, Semiring};
use sdp_systolic::{LinearArray, ProcessingElement, Stats};
use sdp_trace::{Event, NullSink, TraceSink};
use std::sync::Arc;

/// Phase schedule entry, carrying its own operand data.  A batched run
/// concatenates the phase lists of every instance into one schedule, so
/// each phase must be self-contained (no shared `mid`/`row` side tables).
#[derive(Clone, Debug)]
enum PhaseSpec {
    /// Results accumulate in place; the operand vector shifts through.
    /// Carries the m×m matrix consumed in this phase.
    Stationary(Matrix<MinPlus>),
    /// Operand vector is stationary (in `R`); partial results shift.
    Moving(Matrix<MinPlus>),
    /// Final 1×m row-vector phase executed as a moving pass
    /// (previous results already sit in `R`).
    FinalRowMoving(Vec<MinPlus>),
    /// Final 1×m row-vector phase executed head-side: the vector streams
    /// in and `P₁` alone accumulates the scalar.
    FinalRowHead(Vec<MinPlus>),
    /// Identity moving pass draining the stationary registers out the
    /// tail between batched instances: item `j` picks up `Rⱼ` at PE `j`
    /// (the identity matrix is `1̄` on the diagonal, `0̄` elsewhere).
    /// Carries the item count — `m` to drain every register, `1` to
    /// drain only `R₀` after a head-accumulated scalar.
    Flush(usize),
}

/// Immutable per-run data shared by all PEs: the matrix elements each PE
/// reads on a given (phase, item) — the software stand-in for the skewed
/// off-chip streams of Fig. 3(a).
struct Feed {
    m: usize,
    phases: Vec<PhaseSpec>,
}

impl Feed {
    /// Matrix element PE `i` needs for item `j` of phase `p`.
    fn element(&self, p: usize, i: usize, j: usize) -> MinPlus {
        match &self.phases[p] {
            // result row i accumulates over arriving vector elements j
            PhaseSpec::Stationary(mat) => mat.get(i, j),
            // partial result j passes PE i holding stationary element i
            PhaseSpec::Moving(mat) => mat.get(j, i),
            PhaseSpec::FinalRowMoving(row) => row[i],
            PhaseSpec::FinalRowHead(row) => {
                if i == 0 {
                    row[j]
                } else {
                    MinPlus::zero()
                }
            }
            PhaseSpec::Flush(_) => {
                if i == j {
                    MinPlus::one()
                } else {
                    MinPlus::zero()
                }
            }
        }
    }

    /// Items processed per PE in phase `p`.
    fn items(&self, p: usize) -> usize {
        match &self.phases[p] {
            PhaseSpec::FinalRowMoving(_) => 1,
            PhaseSpec::Flush(k) => *k,
            _ => self.m,
        }
    }
}

/// One PE of Design 1 (Fig. 3(b)): registers `Rᵢ` (stationary operand)
/// and `Aᵢ` (accumulator), with the phase state machine standing in for
/// the rippled ODD/MOVE control lines.
pub struct Design1Pe {
    index: usize,
    feed: Arc<Feed>,
    r: MinPlus,
    acc: MinPlus,
    phase: usize,
    count: usize,
    busy: bool,
}

impl Design1Pe {
    fn new(index: usize, feed: Arc<Feed>) -> Design1Pe {
        Design1Pe {
            index,
            feed,
            r: MinPlus::zero(),
            acc: MinPlus::zero(),
            phase: 0,
            count: 0,
            busy: false,
        }
    }

    /// The stationary register `Rᵢ` (holds a result element after MOVE).
    pub fn r(&self) -> Cost {
        self.r.0
    }

    fn advance(&mut self) {
        self.count += 1;
        if self.phase < self.feed.phases.len() && self.count == self.feed.items(self.phase) {
            // End of phase at this PE.  In a stationary phase the MOVE
            // pulse transfers the accumulated result into R.
            if matches!(
                self.feed.phases[self.phase],
                PhaseSpec::Stationary(_) | PhaseSpec::FinalRowHead(_)
            ) {
                self.r = self.acc;
                self.acc = MinPlus::zero();
            }
            self.phase += 1;
            self.count = 0;
        }
    }
}

impl ProcessingElement for Design1Pe {
    type Flow = MinPlus;
    type Ext = ();
    type Ctrl = ();

    fn step(&mut self, flow_in: Option<MinPlus>, _: (), _: ()) -> Option<MinPlus> {
        let Some(x) = flow_in else {
            self.busy = false;
            return None;
        };
        self.busy = true;
        let p = self.phase;
        debug_assert!(p < self.feed.phases.len(), "item after final phase");
        let c = self.feed.element(p, self.index, self.count);
        let out = match self.feed.phases[p] {
            PhaseSpec::Stationary(_) => {
                // Aᵢ ⊕= c ⊗ x  (min-plus: Aᵢ = min(Aᵢ, c + x))
                self.acc = self.acc.add(c.mul(x));
                x // the operand vector shifts on
            }
            PhaseSpec::Moving(_) | PhaseSpec::FinalRowMoving(_) | PhaseSpec::Flush(_) => {
                // y' = y ⊕ (c ⊗ Rᵢ)
                x.add(c.mul(self.r))
            }
            PhaseSpec::FinalRowHead(_) => {
                if self.index == 0 {
                    self.acc = self.acc.add(c.mul(x));
                }
                x
            }
        };
        self.advance();
        Some(out)
    }

    fn was_busy(&self) -> bool {
        self.busy
    }

    /// Waveform probe: the stationary register `Rᵢ` (INF maps to `x`).
    fn probe(&self) -> Option<i64> {
        self.r.0.finite()
    }
}

/// Where each injected item's value comes from.
enum Source {
    /// A known value (initial vector, or an INF partial-result token).
    Value(MinPlus),
    /// The tail output of global item `q` (feedback of a moving phase).
    Tail(usize),
}

/// Where one instance's results come out of the schedule.
enum Extract {
    /// The m tail outputs of a final moving phase starting at item `base`.
    MovingTail(usize),
    /// The single tail output of a final row-moving phase (item `base`).
    RowMovingTail(usize),
    /// `count` tail outputs of a flush phase starting at item `base`.
    FlushTail { base: usize, count: usize },
    /// The stationary registers `R₀..R_{m−1}` after the run (last
    /// instance of the batch only — nothing runs after it).
    Registers,
    /// The single register `R₀` after the run (head-accumulated scalar).
    Register0,
}

/// The result of one Design 1 run.
#[derive(Clone, Debug)]
pub struct Design1Result {
    /// The final values: scalar optimum (single-source/sink strings) or
    /// the stage-1 cost vector (uniform strings).
    pub values: Vec<Cost>,
    /// Measured makespan in clock cycles.
    pub cycles: u64,
    /// The paper's charged iteration count `N·m`.
    pub paper_iterations: u64,
    /// Engine statistics (busy counts, I/O words).
    pub stats: Stats,
}

impl Design1Result {
    /// The scalar optimum (minimum over `values`).
    pub fn optimum(&self) -> Cost {
        self.values.iter().copied().fold(Cost::INF, Cost::min)
    }

    /// Measured processor utilization against a serial iteration count.
    pub fn measured_pu(&self, serial_iterations: u64) -> f64 {
        self.stats.processor_utilization(serial_iterations)
    }

    /// The paper's PU (serial iterations over `N·m · m`).
    pub fn paper_pu(&self, serial_iterations: u64, m: u64) -> f64 {
        serial_iterations as f64 / (self.paper_iterations * m) as f64
    }
}

/// The result of a batched Design 1 run: `B` independent matrix strings
/// pipelined back-to-back through one array.
#[derive(Clone, Debug)]
pub struct Design1BatchResult {
    /// `values[t]` = instance `t`'s final values (scalar optimum or
    /// stage-1 cost vector, exactly as [`Design1Result::values`]).
    pub values: Vec<Vec<Cost>>,
    /// Measured makespan in clock cycles for the whole batch.
    pub cycles: u64,
    /// The paper's charged iteration count summed over the batch:
    /// `B·N·m`.
    pub paper_iterations: u64,
    /// Engine statistics for the whole batch.
    pub stats: Stats,
}

impl Design1BatchResult {
    /// The scalar optimum of instance `t`.
    pub fn optimum(&self, t: usize) -> Cost {
        self.values[t].iter().copied().fold(Cost::INF, Cost::min)
    }

    /// Measured PU against the summed serial iteration count.
    pub fn measured_pu(&self, serial_iterations: u64) -> f64 {
        self.stats.processor_utilization(serial_iterations)
    }
}

/// The Design 1 array driver.
pub struct Design1Array {
    m: usize,
}

impl Design1Array {
    /// An array of `m` PEs (one per intermediate-stage vertex).
    pub fn new(m: usize) -> Design1Array {
        Self::try_new(m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`new`](Self::new) that reports `m < 1` as a typed error instead
    /// of panicking.
    pub fn try_new(m: usize) -> Result<Design1Array, SdpError> {
        if m < 1 {
            return Err(SdpError::BadParameter {
                name: "m",
                got: m as u64,
                min: 1,
            });
        }
        Ok(Design1Array { m })
    }

    /// Runs the array on a matrix string shaped
    /// `[1×m]? , [m×m]* , [m×1]?` (at least one matrix), exactly the
    /// shapes produced by [`sdp_multistage::MultistageGraph`].
    ///
    /// Returns the computed values together with timing statistics.
    pub fn run(&self, mats: &[Matrix<MinPlus>]) -> Design1Result {
        self.run_traced(mats, &mut NullSink)
    }

    /// [`run`](Self::run) with an event sink observing every clock
    /// cycle, PE firing, latch commit, and host I/O word.  Tracing never
    /// changes results or timing — only observes them.
    pub fn run_traced<S: TraceSink>(
        &self,
        mats: &[Matrix<MinPlus>],
        sink: &mut S,
    ) -> Design1Result {
        self.try_run_traced(mats, sink)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run`](Self::run) that reports malformed strings as a typed
    /// error instead of panicking.
    pub fn try_run(&self, mats: &[Matrix<MinPlus>]) -> Result<Design1Result, SdpError> {
        self.try_run_traced(mats, &mut NullSink)
    }

    /// [`run_traced`](Self::run_traced) with typed errors.
    pub fn try_run_traced<S: TraceSink>(
        &self,
        mats: &[Matrix<MinPlus>],
        sink: &mut S,
    ) -> Result<Design1Result, SdpError> {
        self.run_core(mats, &mut NoFaults, sink, None)
    }

    /// [`try_run_traced`](Self::try_run_traced) with a [`FaultInjector`]
    /// corrupting PE output words as they cross the inter-PE latches.
    /// Faults perturb *values* only (the pipeline never wedges), so the
    /// run completes and returns a possibly wrong [`Design1Result`] —
    /// detection and recovery live in [`crate::resilient`].
    pub fn run_fault_traced<S: TraceSink, F: FaultInjector>(
        &self,
        mats: &[Matrix<MinPlus>],
        injector: &mut F,
        sink: &mut S,
    ) -> Result<Design1Result, SdpError> {
        self.run_core(mats, injector, sink, None)
    }

    /// Spare-column remapping: runs the string on a physical array of
    /// `m + 1` PEs with the known-faulty column `failed_pe` fused out
    /// (bypassed to a one-cycle wire) and its work shifted one column
    /// toward the spare — the 1985 VLSI repair strategy for a stuck PE
    /// found by test.  The injector still targets *physical* columns, so
    /// a plan faulting `failed_pe` is routed around and cannot corrupt
    /// the run.
    ///
    /// Emits a `PeRemapped { failed, spare }` event and returns the
    /// result alongside [`RecoveryStats`] whose `extra_cycles` is the
    /// measured makespan cost of the longer pipeline (baseline/actual
    /// rounds hold the fault-free and remapped cycle counts).
    pub fn run_with_spare_traced<S: TraceSink, F: FaultInjector>(
        &self,
        mats: &[Matrix<MinPlus>],
        failed_pe: usize,
        injector: &mut F,
        sink: &mut S,
    ) -> Result<(Design1Result, RecoveryStats), SdpError> {
        if failed_pe > self.m {
            return Err(SdpError::BadParameter {
                name: "failed_pe",
                got: failed_pe as u64,
                min: 0,
            });
        }
        let baseline = self.run_core(mats, &mut NoFaults, &mut NullSink, None)?;
        if S::ENABLED {
            sink.record(Event::PeRemapped {
                failed: failed_pe as u32,
                spare: self.m as u32,
            });
        }
        let res = self.run_core(mats, injector, sink, Some(failed_pe))?;
        let stats = RecoveryStats {
            baseline_rounds: baseline.cycles,
            actual_rounds: res.cycles,
            extra_cycles: res.cycles.saturating_sub(baseline.cycles),
            ..RecoveryStats::default()
        };
        Ok((res, stats))
    }

    /// Streams a batch of same-shaped matrix strings back-to-back through
    /// one array: instance `t+1`'s first vector enters the head on the
    /// cycle after instance `t`'s last item, so the pipeline-fill latency
    /// is paid once for the whole batch instead of once per instance and
    /// measured PU rises toward the Eq. 9 asymptote.  Instances whose
    /// results end in the stationary registers are drained by an identity
    /// *flush* pass before the next instance begins.  An empty batch or an
    /// instance whose shape sequence differs from instance 0's is a typed
    /// error.
    pub fn run_batch(
        &self,
        instances: &[&[Matrix<MinPlus>]],
    ) -> Result<Design1BatchResult, SdpError> {
        self.run_batch_traced(instances, &mut NullSink)
    }

    /// [`run_batch`](Self::run_batch) with an event sink.  A batch of one
    /// emits exactly the event stream of [`run_traced`](Self::run_traced).
    pub fn run_batch_traced<S: TraceSink>(
        &self,
        instances: &[&[Matrix<MinPlus>]],
        sink: &mut S,
    ) -> Result<Design1BatchResult, SdpError> {
        self.run_batch_core(instances, &mut NoFaults, sink, None)
    }

    /// Single-instance wrapper over the batch core: validates the string
    /// shape and runs the pipelined simulation.  `spare_for = Some(f)`
    /// builds `m + 1` physical columns with physical column `f` bypassed
    /// (logical PEs shift past it).
    fn run_core<S: TraceSink, F: FaultInjector>(
        &self,
        mats: &[Matrix<MinPlus>],
        injector: &mut F,
        sink: &mut S,
        spare_for: Option<usize>,
    ) -> Result<Design1Result, SdpError> {
        let instances = [mats];
        let Design1BatchResult {
            mut values,
            cycles,
            paper_iterations,
            stats,
        } = self.run_batch_core(&instances, injector, sink, spare_for)?;
        Ok(Design1Result {
            values: values.pop().expect("one instance"),
            cycles,
            paper_iterations,
            stats,
        })
    }

    /// Shape checks shared by single and batched runs.  Returns
    /// `(has_row, has_col)` for a valid string.
    fn validate(m: usize, mats: &[Matrix<MinPlus>]) -> Result<(bool, bool), SdpError> {
        if mats.is_empty() {
            return Err(SdpError::EmptyMatrixString);
        }
        let has_row = mats[0].rows() == 1 && m > 1;
        let has_col = mats[mats.len() - 1].cols() == 1 && m > 1;
        if mats.len() < has_row as usize + has_col as usize {
            return Err(SdpError::StringTooShort {
                got: mats.len(),
                need: has_row as usize + has_col as usize,
            });
        }
        let mid_range = (has_row as usize)..(mats.len() - has_col as usize);
        for (off, mat) in mats[mid_range.clone()].iter().enumerate() {
            if (mat.rows(), mat.cols()) != (m, m) {
                return Err(SdpError::NotSquare {
                    index: mid_range.start + off,
                    m,
                });
            }
        }
        if has_row && mats[0].cols() != m {
            return Err(SdpError::WrongStageWidth {
                stage: 0,
                m,
                got: mats[0].cols(),
            });
        }
        if has_col && mats[mats.len() - 1].rows() != m {
            return Err(SdpError::WrongStageWidth {
                stage: mats.len() - 1,
                m,
                got: mats[mats.len() - 1].rows(),
            });
        }
        Ok((has_row, has_col))
    }

    /// The shared single/batched driver: builds one concatenated phase
    /// schedule covering every instance, drives the array through it, and
    /// extracts each instance's results from the tail stream (or, for the
    /// final instance, the registers).
    fn run_batch_core<S: TraceSink, F: FaultInjector>(
        &self,
        instances: &[&[Matrix<MinPlus>]],
        injector: &mut F,
        sink: &mut S,
        spare_for: Option<usize>,
    ) -> Result<Design1BatchResult, SdpError> {
        let m = self.m;
        if instances.is_empty() {
            return Err(SdpError::EmptyBatch);
        }
        let first = instances[0];
        let (has_row, has_col) = Self::validate(m, first)?;
        for (index, mats) in instances.iter().enumerate().skip(1) {
            let same = mats.len() == first.len()
                && mats
                    .iter()
                    .zip(first.iter())
                    .all(|(a, b)| a.rows() == b.rows() && a.cols() == b.cols());
            if !same {
                return Err(SdpError::BatchShapeMismatch { index });
            }
        }
        let bn = instances.len();
        let p_count = first.len() - has_row as usize - has_col as usize;
        let paper_iterations = (bn * first.len() * m) as u64;

        // Initial vector: the degenerate last column, or the all-one
        // (zero-cost) vector for multi-sink strings.
        let v0 = |mats: &[Matrix<MinPlus>]| -> Vec<MinPlus> {
            if has_col {
                (0..m).map(|i| mats[mats.len() - 1].get(i, 0)).collect()
            } else {
                vec![MinPlus::one(); m]
            }
        };

        // Degenerate string: only the m×1 column — nothing to pipeline;
        // each instance's column is its per-source answer.
        if p_count == 0 && !has_row {
            return Ok(Design1BatchResult {
                values: instances
                    .iter()
                    .map(|mats| v0(mats).iter().map(|v| v.0).collect())
                    .collect(),
                cycles: 0,
                paper_iterations,
                stats: sdp_systolic::Stats::new(m),
            });
        }

        // Build the concatenated schedule: per instance, phases consume
        // interior matrices right-to-left, alternating — plus the
        // injection plan (one Source per global item) and the extraction
        // map, in one pass so tail feedback stays intra-instance.
        enum LastKind {
            Moving,
            RowMoving,
            Stationary,
            RowHead,
        }
        let mut phases: Vec<PhaseSpec> = Vec::new();
        let mut plan: Vec<Source> = Vec::new();
        let mut extracts: Vec<Extract> = Vec::with_capacity(bn);
        for (t, mats) in instances.iter().enumerate() {
            let mid_src = &mats[(has_row as usize)..(mats.len() - has_col as usize)];
            let inst_first = phases.len();
            let mut prev_base = 0usize;
            for (pos, ti) in (0..p_count).rev().enumerate() {
                let base = plan.len();
                if pos % 2 == 0 {
                    if phases.len() == inst_first {
                        plan.extend(v0(mats).into_iter().map(Source::Value));
                    } else {
                        // previous phase was Moving: its tail outputs are
                        // the vector to stream in.
                        plan.extend((0..m).map(|j| Source::Tail(prev_base + j)));
                    }
                    phases.push(PhaseSpec::Stationary(mid_src[ti].clone()));
                } else {
                    plan.extend((0..m).map(|_| Source::Value(MinPlus::zero())));
                    phases.push(PhaseSpec::Moving(mid_src[ti].clone()));
                }
                prev_base = base;
            }
            if has_row {
                let row = mats[0].row(0).to_vec();
                let base = plan.len();
                if p_count % 2 == 1 {
                    // last interior phase was Stationary: results sit in
                    // R, the row executes as a moving pass.
                    plan.push(Source::Value(MinPlus::zero()));
                    phases.push(PhaseSpec::FinalRowMoving(row));
                } else {
                    if p_count == 0 {
                        plan.extend(v0(mats).into_iter().map(Source::Value));
                    } else {
                        plan.extend((0..m).map(|j| Source::Tail(prev_base + j)));
                    }
                    phases.push(PhaseSpec::FinalRowHead(row));
                }
                prev_base = base;
            }
            // Extraction — plus an identity flush pass when the results
            // sit in R and another instance follows (whose MOVE pulses
            // would overwrite the registers).
            let last_kind = match phases.last().expect("at least one phase") {
                PhaseSpec::Moving(_) => LastKind::Moving,
                PhaseSpec::FinalRowMoving(_) => LastKind::RowMoving,
                PhaseSpec::Stationary(_) => LastKind::Stationary,
                PhaseSpec::FinalRowHead(_) => LastKind::RowHead,
                PhaseSpec::Flush(_) => unreachable!("flush is never a real last phase"),
            };
            match last_kind {
                LastKind::Moving => extracts.push(Extract::MovingTail(prev_base)),
                LastKind::RowMoving => extracts.push(Extract::RowMovingTail(prev_base)),
                LastKind::Stationary => {
                    if t + 1 == bn {
                        extracts.push(Extract::Registers);
                    } else {
                        let base = plan.len();
                        plan.extend((0..m).map(|_| Source::Value(MinPlus::zero())));
                        phases.push(PhaseSpec::Flush(m));
                        extracts.push(Extract::FlushTail { base, count: m });
                    }
                }
                LastKind::RowHead => {
                    if t + 1 == bn {
                        extracts.push(Extract::Register0);
                    } else {
                        let base = plan.len();
                        plan.push(Source::Value(MinPlus::zero()));
                        phases.push(PhaseSpec::Flush(1));
                        extracts.push(Extract::FlushTail { base, count: 1 });
                    }
                }
            }
        }
        let feed = Arc::new(Feed { m, phases });

        // Drive the array cycle by cycle.  With a spare, the physical
        // array has m + 1 columns; logical PE `l` sits at physical
        // column `l` before the fused-out column and `l + 1` after it.
        let physical = |l: usize| match spare_for {
            Some(f) if l >= f => l + 1,
            _ => l,
        };
        let pes: Vec<Design1Pe> = match spare_for {
            None => (0..m)
                .map(|i| Design1Pe::new(i, Arc::clone(&feed)))
                .collect(),
            Some(f) => (0..=m)
                .map(|p| {
                    // Logical index for physical column p (the bypassed
                    // column's PE is never stepped; index is unused).
                    let logical = if p < f { p } else { p.saturating_sub(1) };
                    Design1Pe::new(logical.min(m - 1), Arc::clone(&feed))
                })
                .collect(),
        };
        let mut array = LinearArray::new(pes);
        if let Some(f) = spare_for {
            array.set_bypass(f, true);
        }
        let columns = array.len() as u64;
        let total_items = plan.len();
        let mut tail_out: Vec<Option<MinPlus>> = vec![None; total_items];
        let mut injected = 0usize;
        let mut drained = 0usize;
        let budget = (total_items + 2) as u64 * (columns + 2) + 16;
        while drained < total_items {
            let head = if injected < total_items {
                let ready = match plan[injected] {
                    Source::Value(v) => Some(v),
                    Source::Tail(q) => tail_out[q],
                };
                if ready.is_some() {
                    injected += 1;
                }
                ready
            } else {
                None
            };
            if let Some(out) = array.cycle_fault_traced(head, |_| (), |_| (), injector, sink) {
                tail_out[drained] = Some(out);
                drained += 1;
            }
            assert!(
                array.stats().cycles() < budget,
                "design1 simulation did not converge (deadlock)"
            );
        }

        // Extract each instance's results (register reads go through the
        // logical → physical column map).
        let values: Vec<Vec<Cost>> = extracts
            .iter()
            .map(|e| match *e {
                Extract::MovingTail(base) => {
                    (0..m).map(|j| tail_out[base + j].unwrap().0).collect()
                }
                Extract::RowMovingTail(item) => vec![tail_out[item].unwrap().0],
                Extract::FlushTail { base, count } => {
                    (0..count).map(|j| tail_out[base + j].unwrap().0).collect()
                }
                Extract::Registers => (0..m).map(|l| array.pes()[physical(l)].r()).collect(),
                Extract::Register0 => vec![array.pes()[physical(0)].r()],
            })
            .collect();
        Ok(Design1BatchResult {
            values,
            cycles: array.stats().cycles(),
            paper_iterations,
            stats: array.stats().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_multistage::{generate, solve, MultistageGraph};

    fn reference(mats: &[Matrix<MinPlus>]) -> Matrix<MinPlus> {
        Matrix::string_product(mats)
    }

    #[test]
    fn fig_1a_example() {
        let g = MultistageGraph::fig_1a();
        let arr = Design1Array::new(3);
        let res = arr.run(g.matrix_string());
        let want = reference(g.matrix_string());
        assert_eq!(res.values, vec![want.get(0, 0).0]);
        assert_eq!(res.optimum(), Cost::from(9));
        // N = 4 matrices, m = 3: charged 12 iterations.
        assert_eq!(res.paper_iterations, 12);
    }

    #[test]
    fn uniform_multi_sink_string() {
        let g = MultistageGraph::fig_1b();
        let arr = Design1Array::new(3);
        let res = arr.run(g.matrix_string());
        let want = reference(g.matrix_string());
        // result vector = stage-1 costs to best sink: row minima
        for (i, &v) in res.values.iter().enumerate() {
            let row_min = (0..3).map(|j| want.get(i, j).0).fold(Cost::INF, Cost::min);
            assert_eq!(v, row_min, "row {i}");
        }
    }

    #[test]
    fn random_single_source_sink_matches_dp() {
        for seed in 0..20 {
            let stages = 3 + (seed as usize % 6);
            let m = 1 + (seed as usize % 5);
            let g = generate::random_single_source_sink(seed, stages.max(3), m, 0, 30);
            let arr = Design1Array::new(m);
            let res = arr.run(g.matrix_string());
            let dp = solve::forward_dp(&g);
            assert_eq!(res.optimum(), dp.cost, "seed {seed} stages {stages} m {m}");
        }
    }

    #[test]
    fn random_uniform_matches_matrix_product() {
        for seed in 0..20 {
            let stages = 2 + (seed as usize % 7);
            let m = 1 + (seed as usize % 4);
            let g = generate::random_uniform(seed, stages, m, 0, 25);
            let arr = Design1Array::new(m);
            let res = arr.run(g.matrix_string());
            let want = reference(g.matrix_string());
            for (i, &v) in res.values.iter().enumerate() {
                let row_min = (0..m).map(|j| want.get(i, j).0).fold(Cost::INF, Cost::min);
                assert_eq!(v, row_min, "seed {seed} row {i}");
            }
        }
    }

    #[test]
    fn single_matrix_pair_row_col() {
        // [1×m]·[m×1]: pure FinalRowHead path.
        let row = Matrix::from_rows(1, 3, [1, 5, 2].into_iter().map(MinPlus::from).collect());
        let col = Matrix::from_rows(3, 1, [4, 0, 9].into_iter().map(MinPlus::from).collect());
        let arr = Design1Array::new(3);
        let res = arr.run(&[row, col]);
        assert_eq!(res.optimum(), Cost::from(5)); // min(1+4, 5+0, 2+9)
    }

    #[test]
    fn m_equals_one_degenerates_gracefully() {
        let g = generate::random_uniform(3, 5, 1, 0, 9);
        let arr = Design1Array::new(1);
        let res = arr.run(g.matrix_string());
        assert_eq!(res.optimum(), solve::forward_dp(&g).cost);
    }

    #[test]
    fn makespan_close_to_paper_iterations() {
        // The makespan exceeds the charged N·m iterations only by the
        // pipeline fill latency (< m + phases).
        for (stages, m) in [(6usize, 4usize), (10, 3), (4, 8)] {
            let g = generate::random_single_source_sink(1, stages, m, 0, 9);
            let res = Design1Array::new(m).run(g.matrix_string());
            let n_mats = (stages - 1) as u64;
            assert!(res.cycles >= res.paper_iterations - (m as u64));
            assert!(
                res.cycles <= n_mats * m as u64 + (m as u64) + n_mats + 4,
                "stages {stages} m {m}: cycles {} vs N*m {}",
                res.cycles,
                res.paper_iterations
            );
        }
    }

    #[test]
    fn pu_approaches_one_for_long_strings() {
        let m = 4usize;
        let g = generate::random_single_source_sink(2, 40, m, 0, 9);
        let res = Design1Array::new(m).run(g.matrix_string());
        let n_mats = (g.num_stages() - 1) as u64;
        let serial = solve::SerialCounts::matrix_string(n_mats, m as u64);
        let pu = res.paper_pu(serial, m as u64);
        let eq9 = solve::SerialCounts::eq9_pu(n_mats, m as u64);
        assert!((pu - eq9).abs() < 1e-9, "pu {pu} vs eq9 {eq9}");
        assert!(pu > 0.9);
    }

    #[test]
    fn busy_fraction_is_high_in_steady_state() {
        let m = 3usize;
        let g = generate::random_single_source_sink(7, 30, m, 0, 9);
        let res = Design1Array::new(m).run(g.matrix_string());
        assert!(res.stats.utilization().overall > 0.8);
    }

    #[test]
    #[should_panic(expected = "m x m")]
    fn wrong_interior_shape_rejected() {
        let arr = Design1Array::new(3);
        let bad = Matrix::<MinPlus>::zeros(2, 2);
        arr.run(&[bad]);
    }

    #[test]
    fn single_column_matrix_string() {
        // A lone m×1 column (2-stage multi-source/single-sink graph) is a
        // valid shape: the answer is the column itself.
        let col = Matrix::from_rows(3, 1, [5, 2, 7].into_iter().map(MinPlus::from).collect());
        let res = Design1Array::new(3).run(&[col]);
        assert_eq!(
            res.values,
            vec![Cost::from(5), Cost::from(2), Cost::from(7)]
        );
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn single_1x1_matrix_with_wide_array_rejected_clearly() {
        // A 1×1 matrix read as both row and column for m = 3 is a shape
        // error and must fail with a message, not a slice-range panic.
        let one = Matrix::from_rows(1, 1, vec![MinPlus::from(4)]);
        let _ = Design1Array::new(3).run(&[one]);
    }

    #[test]
    fn try_run_reports_shape_errors() {
        let arr = Design1Array::new(3);
        assert!(matches!(arr.try_run(&[]), Err(SdpError::EmptyMatrixString)));
        let bad = Matrix::<MinPlus>::zeros(2, 2);
        assert!(matches!(
            arr.try_run(&[bad]),
            Err(SdpError::NotSquare { index: 0, m: 3 })
        ));
        let one = Matrix::from_rows(1, 1, vec![MinPlus::from(4)]);
        assert!(matches!(
            arr.try_run(&[one]),
            Err(SdpError::StringTooShort { got: 1, need: 2 })
        ));
        assert!(matches!(
            Design1Array::try_new(0),
            Err(SdpError::BadParameter { name: "m", .. })
        ));
    }

    #[test]
    fn fault_free_injector_reproduces_plain_run() {
        use sdp_fault::NoFaults;
        let g = generate::random_single_source_sink(5, 6, 4, 0, 30);
        let arr = Design1Array::new(4);
        let plain = arr.run(g.matrix_string());
        let faulted = arr
            .run_fault_traced(g.matrix_string(), &mut NoFaults, &mut NullSink)
            .unwrap();
        assert_eq!(plain.values, faulted.values);
        assert_eq!(plain.cycles, faulted.cycles);
        assert_eq!(plain.stats, faulted.stats);
    }

    #[test]
    fn stuck_pe_corrupts_then_spare_recovers() {
        use sdp_fault::{Fault, FaultPlan, PlanInjector};
        use sdp_trace::CountingSink;
        let g = generate::random_single_source_sink(11, 6, 4, 5, 30);
        let arr = Design1Array::new(4);
        let clean = arr.run(g.matrix_string());
        let plan = FaultPlan::new().with(Fault::StuckAt {
            pe: 2,
            cycle: 0,
            value: 0,
        });
        // The stuck column silently corrupts the DP value...
        let mut inj = PlanInjector::new(plan.clone());
        let faulty = arr
            .run_fault_traced(g.matrix_string(), &mut inj, &mut NullSink)
            .unwrap();
        assert_ne!(faulty.optimum(), clean.optimum());
        // ...spare-column remapping restores the exact answer, at a
        // measured makespan cost.
        let mut inj = PlanInjector::new(plan);
        let mut sink = CountingSink::default();
        let (fixed, rstats) = arr
            .run_with_spare_traced(g.matrix_string(), 2, &mut inj, &mut sink)
            .unwrap();
        assert_eq!(fixed.optimum(), clean.optimum());
        assert_eq!(fixed.values, clean.values);
        assert!(
            rstats.extra_cycles > 0,
            "spare column adds pipeline latency"
        );
        assert_eq!(rstats.extra_cycles, fixed.cycles - clean.cycles);
        assert_eq!(sink.pes_remapped, 1);
        assert_eq!(sink.faults_injected, 0, "bypass shields the stuck column");
    }

    #[test]
    fn batch_matches_sequential_runs() {
        // Shapes covering every extraction path: FinalRowMoving (even
        // stage count), FinalRowHead (odd), uniform strings ending
        // Stationary and Moving (flush drains R between instances), and
        // m = 1 strings of bare 1×1 matrices.  Tail-extracted shapes
        // (`no_slower = true`) must not lose cycles to batching;
        // register-extracted shapes pay an explicit flush pass to drain
        // R between instances (single runs read R for free), so only
        // value equality is asserted there.
        // (stage count, no_slower gate, instance strings per case)
        type BatchCase = (usize, bool, Vec<Vec<Matrix<MinPlus>>>);
        let cases: Vec<BatchCase> = vec![
            (
                4,
                true,
                (0..5)
                    .map(|s| {
                        generate::random_single_source_sink(s, 6, 4, 0, 30)
                            .matrix_string()
                            .to_vec()
                    })
                    .collect(),
            ),
            (
                3,
                true,
                (0..4)
                    .map(|s| {
                        generate::random_single_source_sink(s + 50, 7, 3, 0, 30)
                            .matrix_string()
                            .to_vec()
                    })
                    .collect(),
            ),
            (
                3,
                false,
                (0..4)
                    .map(|s| {
                        generate::random_uniform(s, 4, 3, 0, 25)
                            .matrix_string()
                            .to_vec()
                    })
                    .collect(),
            ),
            (
                3,
                true,
                (0..4)
                    .map(|s| {
                        generate::random_uniform(s + 9, 5, 3, 0, 25)
                            .matrix_string()
                            .to_vec()
                    })
                    .collect(),
            ),
            (
                1,
                true,
                (0..3)
                    .map(|s| {
                        generate::random_uniform(s, 5, 1, 0, 9)
                            .matrix_string()
                            .to_vec()
                    })
                    .collect(),
            ),
        ];
        for (case, (m, no_slower, strings)) in cases.into_iter().enumerate() {
            let arr = Design1Array::new(m);
            let refs: Vec<&[Matrix<MinPlus>]> = strings.iter().map(|s| s.as_slice()).collect();
            let batch = arr.run_batch(&refs).unwrap();
            let mut sequential_cycles = 0u64;
            for (t, s) in strings.iter().enumerate() {
                let single = arr.run(s);
                assert_eq!(batch.values[t], single.values, "case {case} instance {t}");
                sequential_cycles += single.cycles;
            }
            if no_slower {
                assert!(
                    batch.cycles <= sequential_cycles,
                    "case {case}: batch {} vs sequential {}",
                    batch.cycles,
                    sequential_cycles
                );
            }
        }
    }

    #[test]
    fn batch_of_one_emits_single_run_event_stream() {
        use sdp_trace::RecordingSink;
        let g = generate::random_single_source_sink(21, 6, 4, 0, 30);
        let arr = Design1Array::new(4);
        let mut single_sink = RecordingSink::default();
        let single = arr.run_traced(g.matrix_string(), &mut single_sink);
        let mut batch_sink = RecordingSink::default();
        let batch = arr
            .run_batch_traced(&[g.matrix_string()], &mut batch_sink)
            .unwrap();
        assert_eq!(batch.values, vec![single.values.clone()]);
        assert_eq!(batch.cycles, single.cycles);
        assert_eq!(batch_sink.events, single_sink.events);
    }

    #[test]
    fn batch_pu_exceeds_single_pu() {
        // B = 16 single-source/sink instances: the pipeline-fill latency
        // is paid once instead of 16 times, so measured PU rises.
        let (stages, m, b) = (6usize, 4usize, 16usize);
        let strings: Vec<Vec<Matrix<MinPlus>>> = (0..b as u64)
            .map(|s| {
                generate::random_single_source_sink(s, stages, m, 0, 30)
                    .matrix_string()
                    .to_vec()
            })
            .collect();
        let refs: Vec<&[Matrix<MinPlus>]> = strings.iter().map(|s| s.as_slice()).collect();
        let arr = Design1Array::new(m);
        let n_mats = (stages - 1) as u64;
        let serial = solve::SerialCounts::matrix_string(n_mats, m as u64);
        let single = arr.run(&strings[0]);
        let single_pu = single.measured_pu(serial);
        let batch = arr.run_batch(&refs).unwrap();
        let batch_pu = batch.measured_pu(serial * b as u64);
        assert!(
            batch_pu > single_pu,
            "batch {batch_pu} should beat single {single_pu}"
        );
        assert!(
            batch.cycles < single.cycles * b as u64,
            "batch {} vs {}x single {}",
            batch.cycles,
            b,
            single.cycles
        );
    }

    #[test]
    fn batch_shape_errors_are_typed() {
        let arr = Design1Array::new(3);
        assert!(matches!(arr.run_batch(&[]), Err(SdpError::EmptyBatch)));
        let a = generate::random_single_source_sink(1, 6, 3, 0, 9);
        let b = generate::random_single_source_sink(2, 7, 3, 0, 9);
        assert!(matches!(
            arr.run_batch(&[a.matrix_string(), b.matrix_string()]),
            Err(SdpError::BatchShapeMismatch { index: 1 })
        ));
        let u = generate::random_uniform(3, 4, 3, 0, 9);
        assert!(matches!(
            arr.run_batch(&[a.matrix_string(), u.matrix_string()]),
            Err(SdpError::BatchShapeMismatch { index: 1 })
        ));
    }
}
